#!/bin/sh
# Regenerate the committed BENCH_<scenario>.json files at the repo
# root: release build, full (non-smoke) scenarios, fixed seeds. Run on
# a quiet machine; absolute numbers are machine-specific, but the
# mode-vs-mode ratios are what the committed trajectory tracks.
#
#   ./bench.sh                # every scenario (incl. shard_scaling, stripe_scaling)
#   ./bench.sh bulk_throughput  # one scenario
#   ./bench.sh all --allow-regression  # accept a >20% p99 regression
#
# After regenerating, the p99 guard diffs each file against the
# version committed at git HEAD and fails if a mode's p99 regressed
# by more than 20% — pass --allow-regression to accept the new
# trajectory on purpose (slower machine, intentional tradeoff).
set -eu

cd "$(dirname "$0")"

scenario="${1:-all}"
allow=""
if [ "${2:-}" = "--allow-regression" ] || [ "${1:-}" = "--allow-regression" ]; then
    allow="--allow-regression"
    [ "$scenario" = "--allow-regression" ] && scenario="all"
fi

echo "== release build"
cargo build --release -p wacs-bench --bin proxy_bench

echo "== proxy_bench --scenario $scenario"
./target/release/proxy_bench --scenario "$scenario" --out .

echo "== validate (+ p99 guard vs git HEAD)"
# shellcheck disable=SC2086
./target/release/proxy_bench --check --against-git $allow BENCH_*.json

echo "bench.sh: done"
