#!/bin/sh
# Regenerate the committed BENCH_<scenario>.json files at the repo
# root: release build, full (non-smoke) scenarios, fixed seeds. Run on
# a quiet machine; absolute numbers are machine-specific, but the
# mode-vs-mode ratios are what the committed trajectory tracks.
#
#   ./bench.sh                # all four scenarios
#   ./bench.sh bulk_throughput  # one scenario
set -eu

cd "$(dirname "$0")"

scenario="${1:-all}"

echo "== release build"
cargo build --release -p wacs-bench --bin proxy_bench

echo "== proxy_bench --scenario $scenario"
./target/release/proxy_bench --scenario "$scenario" --out .

echo "== validate"
./target/release/proxy_bench --check BENCH_*.json

echo "bench.sh: done"
