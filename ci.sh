#!/bin/sh
# Workspace verification gate. Everything here must pass before a
# change lands; ROADMAP.md's Tier-1 line points at this script.
#
#   1. formatting            (cargo fmt --check)
#   2. zero-warning clippy   (workspace lints, all targets)
#   3. project lint rules    (xtask: panics, lock standard, ports)
#   4. the test suite
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== xtask lint"
cargo run -q -p xtask -- lint

echo "== xtask check (model checker, smoke tier)"
cargo run -q -p xtask -- check

echo "== cargo test"
cargo test --workspace -q

echo "== fault-seed recovery sweep"
cargo test -q --test fault_recovery

echo "== observability replay determinism"
cargo test -q --test obs_replay

echo "== per-hop decomposition golden tests"
cargo test -q --test table2_decomposition

echo "== liveness / admission / breaker tests"
cargo test -q -p nexus-proxy --test liveness

echo "== striped bulk plane (reassembly battery + sim stripes; chaos is in fault_recovery)"
cargo test -q -p rmf --test stripe_reassembly
cargo test -q -p nexus-proxy --test stripes

echo "== chaos drill determinism (same seed -> byte-identical snapshots)"
cargo build -q --release -p wacs-chaos --bin chaos_drill
./target/release/chaos_drill --seed 42 --out target/chaos-drill-a.json
./target/release/chaos_drill --seed 42 --out target/chaos-drill-b.json
cmp target/chaos-drill-a.json target/chaos-drill-b.json

echo "== bench smoke (all scenarios incl. shard_scaling, stripe_scaling + committed BENCH files validate)"
cargo build -q --release -p wacs-bench --bin proxy_bench
./target/release/proxy_bench --scenario all --smoke --out target/bench-smoke
./target/release/proxy_bench --check BENCH_*.json

echo "ci.sh: all gates passed"
