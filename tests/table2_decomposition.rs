//! Golden tests for the per-hop latency decomposition (the
//! observability layer's accounting must *add up*): every Table 2
//! cell's one-way latency splits into hop components that sum to the
//! end-to-end figure, and on the WAN pair the WAN leg is the dominant
//! transit component.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wacs::wacs_core::{decompose, Decomposition, Mode, Pair};

/// 1 sim-tick = 1 virtual nanosecond.
const TICK: u64 = 1;

fn assert_sums(d: &Decomposition) {
    let sum = d.component_sum();
    assert!(
        sum.abs_diff(d.total_ns) <= TICK,
        "{} {} size {}: components sum to {sum} ns but end-to-end is {} ns\n{:#?}",
        d.pair.name(),
        d.mode.name(),
        d.size,
        d.total_ns,
        d.components
    );
    for c in &d.components {
        assert!(
            c.nanos > 0,
            "{} {}: component {} is zero — an instrument is miswired",
            d.pair.name(),
            d.mode.name(),
            c.name
        );
    }
}

#[test]
fn components_sum_to_end_to_end_for_every_cell() {
    for pair in [Pair::RwcpSunCompas, Pair::RwcpSunEtlSun] {
        for mode in [Mode::Direct, Mode::Indirect] {
            for size in [1u64, 1024] {
                assert_sums(&decompose(pair, mode, size));
            }
        }
    }
}

#[test]
fn direct_cells_are_a_single_wire_leg() {
    for pair in [Pair::RwcpSunCompas, Pair::RwcpSunEtlSun] {
        let d = decompose(pair, Mode::Direct, 1);
        assert_eq!(d.components.len(), 1, "{}", pair.name());
        assert_eq!(d.components[0].name, "wire_transit");
        assert_eq!(d.components[0].nanos, d.total_ns);
    }
}

#[test]
fn indirect_lan_crosses_both_relays() {
    let d = decompose(Pair::RwcpSunCompas, Mode::Indirect, 1);
    let names: Vec<&str> = d.components.iter().map(|c| c.name).collect();
    assert_eq!(
        names,
        [
            "client_to_outer",
            "outer_relay_service",
            "outer_to_inner",
            "inner_relay_service",
            "inner_to_target"
        ]
    );
    assert_sums(&d);
    // The relay service gaps (not the wires) are what blow the LAN
    // latency from 0.41 ms to 25 ms in Table 2.
    let service: u64 = d
        .components
        .iter()
        .filter(|c| !c.is_transit)
        .map(|c| c.nanos)
        .sum();
    assert!(
        service > d.total_ns / 2,
        "relay service {service} ns should dominate the {} ns total",
        d.total_ns
    );
}

#[test]
fn wan_leg_dominates_indirect_wan_transit() {
    let d = decompose(Pair::RwcpSunEtlSun, Mode::Indirect, 1);
    let names: Vec<&str> = d.components.iter().map(|c| c.name).collect();
    assert_eq!(
        names,
        ["client_to_outer", "outer_relay_service", "wan_to_target"]
    );
    assert_sums(&d);
    let dominant = d.dominant_transit().expect("has transit components");
    assert_eq!(
        dominant.name, "wan_to_target",
        "WAN leg should be the largest transit component: {:#?}",
        d.components
    );
}

#[test]
fn report_json_is_deterministic_and_self_consistent() {
    let a = wacs::wacs_core::table2_report(1);
    let b = wacs::wacs_core::table2_report(1);
    assert_eq!(a, b, "same inputs must render byte-identical JSON");
    assert!(a.starts_with('{') && a.ends_with('}'));
    assert!(a.contains("\"report\":\"table2_decomposition\""));
    // One cell per pair × mode.
    assert_eq!(a.matches("\"total_ns\"").count(), 4);
}
