//! Workspace integration: the full real-socket stack end to end —
//! firewalled virtual network, Nexus Proxy, nexus channels, gridmpi
//! ranks spanning both sites, and the actual knapsack solver — the
//! whole paper running as threads.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::Arc;
use wacs::prelude::*;

struct TwoSites {
    net: VNet,
    _outer: OuterServer,
    _inner: InnerServer,
}

fn two_sites() -> TwoSites {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", None);
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    for i in 0..4 {
        net.add_host(format!("compas{i}"), rwcp);
    }
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    for i in 0..4 {
        net.add_host(format!("etl{i}"), etl);
    }
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )
    .unwrap();
    TwoSites {
        net,
        _outer: outer,
        _inner: inner,
    }
}

/// 2 proxied inside ranks + 2 direct outside ranks.
fn mixed_specs(w: &TwoSites, inside: usize, outside: usize) -> Vec<RankSpec> {
    let mut specs = Vec::new();
    specs.push(RankSpec::new(NexusContext::via_proxy(
        w.net.clone(),
        "rwcp-sun",
        ("rwcp-outer", OUTER_PORT),
    )));
    for i in 0..inside.saturating_sub(1) {
        specs.push(RankSpec::new(NexusContext::via_proxy(
            w.net.clone(),
            format!("compas{i}"),
            ("rwcp-outer", OUTER_PORT),
        )));
    }
    for i in 0..outside {
        specs.push(RankSpec::new(NexusContext::direct(
            w.net.clone(),
            format!("etl{i}"),
        )));
    }
    specs
}

#[test]
fn knapsack_over_real_sockets_across_the_firewall() {
    let w = two_sites();
    let inst = Arc::new(Instance::no_pruning(16));
    let expected_nodes = Instance::full_tree_nodes(16);
    let expected_best = inst.total_profit();
    let params = ParParams {
        interval: 128,
        steal_unit: 4,
        ..ParParams::default()
    };
    let groups: Arc<Vec<String>> = Arc::new(
        ["RWCP-Sun", "COMPaS", "COMPaS", "ETL", "ETL", "ETL"]
            .iter()
            .map(ToString::to_string)
            .collect(),
    );
    let inst2 = inst.clone();
    let results = gridmpi::run_world(mixed_specs(&w, 3, 3), move |comm| {
        knapsack::par_run(comm, &inst2, &params, &groups).unwrap()
    })
    .unwrap();
    let rr = results.into_iter().flatten().next().expect("master result");
    assert_eq!(rr.best, expected_best);
    assert_eq!(rr.total_traversed(), expected_nodes);
    // The relay actually carried traffic: the master is inside, the
    // ETL slaves outside, so steal/node shipments crossed the proxy.
    assert!(w._outer.stats().relayed_bytes > 0);
    assert!(w._inner.stats().relays_ok > 0);
}

#[test]
fn knapsack_with_pruning_matches_dp_across_sites() {
    let w = two_sites();
    let inst = Arc::new(Instance::uncorrelated(20, 64, 77).sorted_by_ratio());
    let truth = knapsack::dp::solve(&inst);
    let params = ParParams {
        interval: 64,
        steal_unit: 4,
        prune: true,
        sorted: true,
        ..ParParams::default()
    };
    let groups: Arc<Vec<String>> = Arc::new((0..4).map(|i| format!("g{}", i % 2)).collect());
    let inst2 = inst.clone();
    let results = gridmpi::run_world(mixed_specs(&w, 2, 2), move |comm| {
        knapsack::par_run(comm, &inst2, &params, &groups).unwrap()
    })
    .unwrap();
    let rr = results.into_iter().flatten().next().unwrap();
    assert_eq!(rr.best, truth);
}

#[test]
fn without_proxy_the_wide_area_cluster_cannot_form() {
    // Same layout, but the inside ranks do NOT use the proxy: outside
    // ranks can never attach to the master's endpoint.
    let w = two_sites();
    let master_ctx = NexusContext::direct(w.net.clone(), "rwcp-sun");
    let ep = master_ctx.endpoint().unwrap();
    let (host, port) = ep.advertised();
    assert_eq!(host, "rwcp-sun"); // advertises the unreachable address
    let (host, port) = (host.to_string(), port);
    let etl_ctx = NexusContext::direct(w.net.clone(), "etl0");
    let err = etl_ctx.attach((&host, port)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
}

#[test]
fn collectives_span_the_proxy() {
    let w = two_sites();
    let results = gridmpi::run_world(mixed_specs(&w, 2, 2), |comm| {
        comm.barrier().unwrap();
        let data = if comm.rank() == 0 {
            vec![7u8; 4096]
        } else {
            Vec::new()
        };
        let got = comm.bcast(0, data).unwrap();
        let sum = comm
            .allreduce_f64(vec![f64::from(comm.rank() + 1)], ReduceOp::Sum)
            .unwrap();
        (got.len(), sum[0])
    })
    .unwrap();
    for (len, sum) in results {
        assert_eq!(len, 4096);
        assert_eq!(sum, 1.0 + 2.0 + 3.0 + 4.0);
    }
    // The run above exercised every migrated OrderedMutex hot spot
    // (allocator entries, qserver jobs, gridmpi peer/stash/counter
    // locks, the outer server's rendezvous table); the global
    // lock-order graph must have stayed acyclic.
    for needle in ["rmf.", "gridmpi.", "nexus."] {
        if let Err(v) = wacs_sync::lock_order::check_clean(needle) {
            panic!("lock-order inversions under {needle}: {v:?}");
        }
    }
}

#[test]
fn proxy_death_breaks_channels_cleanly() {
    let w = two_sites();
    // Establish a proxied channel, then kill the outer server: sends
    // must fail with an error, not hang or panic.
    let server_ctx = NexusContext::via_proxy(w.net.clone(), "rwcp-sun", ("rwcp-outer", OUTER_PORT));
    let ep = server_ctx.endpoint().unwrap();
    let adv = (ep.advertised().0.to_string(), ep.advertised().1);
    let client_ctx = NexusContext::direct(w.net.clone(), "etl0");
    let sp = client_ctx.attach((&adv.0, adv.1)).unwrap();
    sp.send(b"before").unwrap();
    assert_eq!(ep.recv().unwrap(), b"before");

    w._outer.shutdown();
    // Give the relay pumps a moment to observe the shutdown; then the
    // existing relayed connection still works (pumps are independent
    // threads) but new attaches to the rendezvous must fail.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let second = NexusContext::direct(w.net.clone(), "etl1");
    // Either refused (listener gone) or an error during relay setup.
    let res = second.attach((&adv.0, adv.1));
    if let Ok(sp2) = res {
        // If the rendezvous listener thread hadn't exited yet the
        // attach may land; the send then dies with the pump.
        let _ = sp2.send(b"x");
    }
}
