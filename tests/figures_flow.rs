//! Workspace integration: the paper's protocol figures as asserted
//! event sequences.
//!
//! * Figure 3 — active connection through the outer server
//!   (`NXProxyConnect`): 3 steps.
//! * Figure 4 — passive connection through outer + inner
//!   (`NXProxyBind`/`NXProxyAccept`): 5 steps.
//!
//! The real-socket servers execute the protocol; the assertions walk
//! the observable side effects in order.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{Read, Write};
use wacs::prelude::*;

struct World {
    net: VNet,
    outer: OuterServer,
    inner: InnerServer,
}

fn world() -> World {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", None);
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )
    .unwrap();
    World { net, outer, inner }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let end = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !cond() {
        assert!(std::time::Instant::now() < end, "timed out waiting: {what}");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

#[test]
fn figure3_active_connection_steps() {
    let w = world();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

    // Remote PB listens openly at ETL.
    let pb = w.net.bind("etl-sun", 6100).unwrap();
    let t = std::thread::spawn(move || {
        // Step 3: PB accepts the connect request *from the outer
        // server* — PB never hears from PA directly.
        let (mut s, _) = pb.accept().unwrap();
        let mut b = [0u8; 2];
        s.read_exact(&mut b).unwrap();
        s.write_all(&b).unwrap();
    });

    let before = w.outer.stats();
    // Step 1: PA calls NXProxyConnect() instead of connect().
    let mut pa = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 6100)).unwrap();
    // Step 2 happened inside the outer server: it received the request
    // and dialed PB. The counters land just after the reply the client
    // saw, so poll rather than assert the instantaneous snapshot.
    wait_until("control accept counted", || {
        w.outer.stats().control_accepts - before.control_accepts == 1
    });
    wait_until("connect counted", || {
        w.outer.stats().connects_ok - before.connects_ok == 1
    });
    // Step 3 outcome: an end-to-end link through the outer server.
    pa.write_all(b"hi").unwrap();
    let mut b = [0u8; 2];
    pa.read_exact(&mut b).unwrap();
    assert_eq!(&b, b"hi");
    t.join().unwrap();
    // Byte accounting lands just *after* each relay write, so the
    // counter can trail the data by an instant — wait, don't assert.
    wait_until("relayed bytes counted", || {
        w.outer.stats().relayed_bytes >= 4
    });
    // The inner server was NOT involved in an active open.
    assert_eq!(w.inner.stats().relays_ok, 0);
}

#[test]
fn figure4_passive_connection_steps() {
    let w = world();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

    // Step 1: PA calls NXProxyBind() instead of bind(); it gets back a
    // port on which peers can indirectly reach it.
    let listener = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
    let (adv_host, adv_port) = listener.advertised.clone();
    // Step 2: the outer server bound that rendezvous port.
    assert_eq!(adv_host, "rwcp-outer");
    assert_eq!(w.outer.rendezvous_ports(), vec![adv_port]);
    assert_eq!(w.outer.stats().binds, 1);

    let t = std::thread::spawn(move || {
        // Step 5: PA calls NXProxyAccept() on the endpoint returned by
        // NXProxyBind; the link arrives via the inner server.
        let mut s = listener.accept().unwrap();
        let mut b = [0u8; 4];
        s.read_exact(&mut b).unwrap();
        s.write_all(b"ack!").unwrap();
    });

    // Step 3: PB connects to the outer server instead of PA.
    let mut pb = w.net.dial("etl-sun", &adv_host, adv_port).unwrap();
    pb.write_all(b"data").unwrap();
    let mut b = [0u8; 4];
    pb.read_exact(&mut b).unwrap();
    assert_eq!(&b, b"ack!");
    t.join().unwrap();

    // Step 4 happened inside: outer connected to inner (via nxport),
    // inner connected to PA.
    assert_eq!(w.outer.stats().relays_ok, 1);
    assert_eq!(w.inner.stats().relays_ok, 1);
    // Both daemons moved the payload.
    wait_until("outer relayed bytes counted", || {
        w.outer.stats().relayed_bytes >= 8
    });
    wait_until("inner relayed bytes counted", || {
        w.inner.stats().relayed_bytes >= 8
    });
}

#[test]
fn figure2_flow_is_covered_by_rmf_tests() {
    // The six-step RMF flow assertion lives with the rmf crate
    // (tests/rmf_flow.rs::full_six_step_flow_across_the_firewall);
    // this marker test documents the mapping for EXPERIMENTS.md.
}
