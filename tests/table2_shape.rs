//! Workspace integration: the paper's Table 2 *shape* claims, checked
//! against the calibrated simulator. We do not chase absolute numbers
//! (our substrate is a simulator); we check who wins, by roughly what
//! factor, and where the crossovers sit — the claims quoted below are
//! the paper's own sentences.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wacs::prelude::*;

fn oneway_ms(pair: PpPair, mode: PpMode, size: u64) -> f64 {
    pingpong(pair, mode, size).one_way.as_millis_f64()
}

fn bw(pair: PpPair, mode: PpMode, size: u64) -> f64 {
    pingpong(pair, mode, size).bandwidth
}

#[test]
fn lan_indirect_latency_is_tens_of_times_direct() {
    // "In indirect communications between RWCP-Sun and COMPaS, the
    // latency is 60 times larger" (0.41 ms → 25.0 ms).
    let direct = oneway_ms(PpPair::RwcpSunCompas, PpMode::Direct, 1);
    let indirect = oneway_ms(PpPair::RwcpSunCompas, PpMode::Indirect, 1);
    let factor = indirect / direct;
    assert!(
        (25.0..120.0).contains(&factor),
        "LAN latency factor {factor:.1} (direct {direct:.3} ms, indirect {indirect:.3} ms)"
    );
}

#[test]
fn wan_indirect_latency_is_several_times_direct() {
    // "the network latency when utilizing the Nexus Proxy is
    // approximately six times larger" (3.9 ms → 25.1 ms).
    let direct = oneway_ms(PpPair::RwcpSunEtlSun, PpMode::Direct, 1);
    let indirect = oneway_ms(PpPair::RwcpSunEtlSun, PpMode::Indirect, 1);
    let factor = indirect / direct;
    assert!(
        (3.0..12.0).contains(&factor),
        "WAN latency factor {factor:.1} (direct {direct:.3} ms, indirect {indirect:.3} ms)"
    );
}

#[test]
fn lan_indirect_bandwidth_drops_an_order_of_magnitude() {
    // "a drop in bandwidth for 4KB and 1MB message is order of
    // magnitude compared to direct communications."
    for size in [4096u64, 1 << 20] {
        let direct = bw(PpPair::RwcpSunCompas, PpMode::Direct, size);
        let indirect = bw(PpPair::RwcpSunCompas, PpMode::Indirect, size);
        let drop = direct / indirect;
        assert!(
            drop > 6.0,
            "size {size}: drop {drop:.1}x (direct {direct:.0}, indirect {indirect:.0})"
        );
    }
}

#[test]
fn lan_indirect_small_message_bandwidth_below_wan_indirect() {
    // "Since both of COMPaS and RWCP-Sun utilize the Nexus Proxy,
    // bandwidth for 4KB message is smaller than the bandwidth between
    // RWCP-Sun and ETL-Sun" — two relays beat one relay plus a slow
    // WAN, at small sizes.
    let lan = bw(PpPair::RwcpSunCompas, PpMode::Indirect, 4096);
    let wan = bw(PpPair::RwcpSunEtlSun, PpMode::Indirect, 4096);
    assert!(
        lan < wan,
        "LAN indirect 4KB {lan:.0} B/s should be below WAN indirect {wan:.0} B/s"
    );
}

#[test]
fn wan_bulk_bandwidth_converges_to_direct() {
    // "As message size increases however, the bandwidth when utilizing
    // the Nexus Proxy is close to the bandwidth of the direct
    // communication … the overhead of the Nexus Proxy can be
    // negligible when the message size is large."
    let sizes = [4096u64, 65536, 1 << 20];
    let mut gaps = Vec::new();
    for size in sizes {
        let direct = bw(PpPair::RwcpSunEtlSun, PpMode::Direct, size);
        let indirect = bw(PpPair::RwcpSunEtlSun, PpMode::Indirect, size);
        gaps.push((direct - indirect) / direct);
    }
    // Gap shrinks monotonically with size and ends small.
    assert!(gaps[0] > gaps[2], "gap should shrink with size: {gaps:?}");
    assert!(gaps[2] < 0.30, "bulk gap {:.2} too large", gaps[2]);
}

#[test]
fn direct_absolute_anchors() {
    // Direct rows of Table 2, within calibration tolerance.
    let lan_lat = oneway_ms(PpPair::RwcpSunCompas, PpMode::Direct, 1);
    assert!(
        (0.25..0.62).contains(&lan_lat),
        "LAN direct latency {lan_lat} ms (paper 0.41)"
    );
    let wan_lat = oneway_ms(PpPair::RwcpSunEtlSun, PpMode::Direct, 1);
    assert!(
        (2.7..5.1).contains(&wan_lat),
        "WAN direct latency {wan_lat} ms (paper 3.9)"
    );
    let lan_bulk = bw(PpPair::RwcpSunCompas, PpMode::Direct, 1 << 20);
    assert!(
        (4.0e6..9.0e6).contains(&lan_bulk),
        "LAN direct 1MB bandwidth {lan_bulk:.0} B/s (paper 6.32 MB/s)"
    );
    let lan_4k = bw(PpPair::RwcpSunCompas, PpMode::Direct, 4096);
    assert!(
        (2.0e6..6.0e6).contains(&lan_4k),
        "LAN direct 4KB bandwidth {lan_4k:.0} B/s (paper 3.29 MB/s)"
    );
}
