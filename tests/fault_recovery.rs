//! Workspace integration: the fault-injection + retry/backoff layer,
//! end to end on the simulated wide-area testbed.
//!
//! Under a fixed fault seed — the outer proxy crashed mid-run plus a
//! 1% WAN chunk-drop rate — the wide-area knapsack must still complete
//! with the correct optimum, must visibly exercise the recovery paths
//! (proxy retries, transport retransmits, exactly one crash/restart),
//! and must do all of it deterministically: the same seeds always
//! reproduce the same virtual-time trace.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wacs::netsim::prelude::SimDuration;
use wacs::prelude::*;

/// Build the paper's wide-area run at a test-sized item count, plus
/// the fault plan the acceptance scenario prescribes: outer proxy
/// crashed halfway through the fault-free schedule (restarted 250ms
/// later) and 1% WAN chunk loss.
fn scenario(items: usize, fault_seed: u64) -> (KnapsackRun, FaultConfig) {
    let cfg = KnapsackRun::paper_default(System::WideArea, items);
    let clean = run_knapsack(&cfg);
    let faults = FaultConfig {
        seed: fault_seed,
        wan_drop: 0.01,
        outer_crash_at: Some(SimDuration::from_secs_f64(clean.elapsed_secs / 2.0)),
        ..FaultConfig::default()
    };
    (cfg, faults)
}

#[test]
fn crashed_proxy_and_lossy_wan_still_reach_the_optimum() {
    let (cfg, faults) = scenario(18, 7);
    let fr = run_knapsack_with_faults(&cfg, &faults);
    assert_eq!(
        fr.result.best,
        Instance::no_pruning(cfg.items).total_profit(),
        "faults slowed the run down but must not corrupt the answer"
    );
    assert_eq!(
        (fr.actor_crashes, fr.actor_restarts),
        (1, 1),
        "the planned outer-proxy crash/restart must have happened"
    );
    assert!(
        fr.nx_retries >= 1,
        "recovery must go through the retry layer (observed {})",
        fr.nx_retries
    );
    assert!(
        fr.chunks_dropped > 0 && fr.retransmits > 0,
        "1% WAN loss must have bitten ({} dropped, {} retransmits)",
        fr.chunks_dropped,
        fr.retransmits
    );
}

#[test]
fn fault_recovery_is_deterministic() {
    let (cfg, faults) = scenario(16, 7);
    let a = run_knapsack_with_faults(&cfg, &faults);
    let b = run_knapsack_with_faults(&cfg, &faults);
    // A deterministic DES: identical seeds give bit-identical traces,
    // so the recovered runs agree on timing and every fault counter.
    assert_eq!(
        a.result.elapsed_secs.to_bits(),
        b.result.elapsed_secs.to_bits()
    );
    assert_eq!(a.nx_retries, b.nx_retries);
    assert_eq!(a.chunks_dropped, b.chunks_dropped);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.result.best, b.result.best);
}

/// Kill-one-stripe chaos (DESIGN.md §6e): a striped bulk transfer
/// over the 4-shard relay fleet loses the flow — or the whole shard —
/// carrying one stripe mid-transfer, and must still reassemble the
/// payload byte-identically with zero lost bytes, no typed reassembly
/// errors, at least one observed lane failover, and byte-identical
/// same-seed `wacs-obs` snapshots. Mirrors the PR 8 kill-one-shard
/// liveness test, one layer up the stack.
mod killstripe {
    use std::sync::Arc;
    use wacs::netsim::prelude::*;
    use wacs::nexus_proxy::sim::{
        stripe_cell, NxClient, RelayModel, SimOuterServer, SimProxyEnv, StripeCell,
        StripeSenderActor, StripeSinkActor,
    };
    use wacs::nexus_proxy::{StripePlan, StripeStats};
    use wacs::wacs_obs::Registry;

    const CTRL: u16 = 4097;
    const SHARDS: usize = 4;
    const STRIPES: u16 = 4;
    const LEN: u64 = 256 * 1024;
    const CHUNK: u32 = 16 * 1024;

    /// What dies mid-transfer under the stripe being attacked.
    #[derive(Clone, Copy)]
    enum Kill {
        /// The serving shard crashes and restarts 150 ms later: the
        /// stripe's flow (and bind) are torn, the shard comes back.
        Flow,
        /// The serving shard dies for good: the lane must fail over
        /// to a surviving shard.
        Shard,
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + 17) % 251) as u8).collect()
    }

    struct ChaosOut {
        json: String,
        result: Option<(i32, Vec<u8>)>,
        errors: usize,
        failovers: u64,
    }

    /// Run the striped transfer, crash the shard serving stripe 0 at
    /// 400 ms virtual (mid-transfer: each lane is 1-2 chunks in), and
    /// run on to quiescence.
    fn run_killstripe(seed: u64, kill: Kill) -> ChaosOut {
        let start_at = SimDuration::from_millis(300);
        let mut topo = Topology::new();
        let site = topo.add_site("bench", None);
        let sw = topo.add_switch("sw", site);
        let shard_hosts: Vec<NodeId> = (0..SHARDS)
            .map(|i| topo.add_host(format!("shard{i}"), site))
            .collect();
        let rx_host = topo.add_host("rx", site);
        let tx_host = topo.add_host("tx", site);
        for h in shard_hosts.iter().chain([&rx_host, &tx_host]) {
            topo.add_link(*h, sw, SimDuration::from_micros(100), 6.5e6);
        }
        let members: Vec<(NodeId, u16)> = shard_hosts.iter().map(|h| (*h, CTRL)).collect();

        let registry = Registry::new();
        let stats = StripeStats::in_registry(&registry);
        let mut sim = Simulator::new(topo, NetConfig::default(), seed);
        let shard_ids: Vec<ActorId> = shard_hosts
            .iter()
            .enumerate()
            .map(|(i, host)| {
                sim.spawn(
                    *host,
                    Box::new(
                        SimOuterServer::new(CTRL, None, RelayModel::default())
                            .with_fleet(members.clone(), i)
                            .with_obs(&registry),
                    ),
                )
            })
            .collect();
        let plan = StripePlan::new(LEN, STRIPES, CHUNK).unwrap();
        let data = Arc::new(payload(LEN as usize));
        let cell: StripeCell = stripe_cell(STRIPES);
        for stripe in 0..STRIPES {
            sim.spawn(
                rx_host,
                Box::new(
                    StripeSinkActor::new(
                        NxClient::new(SimProxyEnv::direct())
                            .with_fleet(members.clone())
                            .with_bind_lane(stripe)
                            .with_obs(&registry),
                        stripe,
                        cell.clone(),
                    )
                    .with_stats(stats.clone()),
                ),
            );
            sim.spawn(
                tx_host,
                Box::new(
                    StripeSenderActor::new(
                        NxClient::new(SimProxyEnv::direct()),
                        stripe,
                        cell.clone(),
                        data.clone(),
                        plan,
                        7,
                        start_at,
                    )
                    .with_stats(stats.clone()),
                ),
            );
        }

        // Run to mid-transfer, then discover which shard is carrying
        // stripe 0 and kill it.
        sim.run_until(SimTime(SimDuration::from_millis(400).nanos()));
        let serving = cell.lock().advertised[0]
            .expect("stripe 0 not bound by 400ms")
            .0;
        let victim = shard_hosts
            .iter()
            .position(|h| *h == serving)
            .expect("advertised host is not a shard");
        let plan_f = match kill {
            Kill::Flow => {
                let restart_members = members.clone();
                let restart_reg = registry.clone();
                FaultPlan::new(seed).crash_restart(
                    shard_ids[victim],
                    SimDuration::from_millis(1),
                    SimDuration::from_millis(150),
                    move || {
                        Box::new(
                            SimOuterServer::new(CTRL, None, RelayModel::default())
                                .with_fleet(restart_members.clone(), victim)
                                .with_obs(&restart_reg),
                        )
                    },
                )
            }
            Kill::Shard => {
                FaultPlan::new(seed).crash(shard_ids[victim], SimDuration::from_millis(1))
            }
        };
        sim.install_faults(plan_f);
        sim.run_until(SimTime(SimDuration::from_secs(120).nanos()));

        let c = cell.lock();
        ChaosOut {
            json: registry.snapshot().to_json(),
            result: c.receiver.result(),
            errors: c.errors.len(),
            failovers: c.failovers,
        }
    }

    #[test]
    fn killed_stripe_flow_recovers_exactly() {
        let out = run_killstripe(0x91, Kill::Flow);
        let (tag, got) = out
            .result
            .expect("transfer did not complete after flow kill");
        assert_eq!(tag, 0);
        assert_eq!(got, payload(LEN as usize), "lost or corrupted bytes");
        assert_eq!(out.errors, 0, "reassembly raised typed errors");
        assert!(out.failovers >= 1, "the kill must force a lane failover");
    }

    #[test]
    fn killed_stripe_shard_fails_over_exactly() {
        let out = run_killstripe(0x92, Kill::Shard);
        let (tag, got) = out
            .result
            .expect("transfer did not complete after shard kill");
        assert_eq!(tag, 0);
        assert_eq!(got, payload(LEN as usize), "lost or corrupted bytes");
        assert_eq!(out.errors, 0, "reassembly raised typed errors");
        assert!(out.failovers >= 1, "the kill must force a lane failover");
    }

    #[test]
    fn killstripe_snapshots_are_deterministic() {
        for kill in [Kill::Flow, Kill::Shard] {
            let a = run_killstripe(0x93, kill);
            let b = run_killstripe(0x93, kill);
            assert_eq!(a.json, b.json, "same seed must give identical snapshots");
            assert_eq!(a.result, b.result);
            assert_eq!(a.failovers, b.failovers);
        }
    }
}

#[test]
fn recovery_survives_a_seed_sweep() {
    let optimum = Instance::no_pruning(16).total_profit();
    for fault_seed in [1, 2, 3] {
        let (cfg, faults) = scenario(16, fault_seed);
        let fr = run_knapsack_with_faults(&cfg, &faults);
        assert_eq!(fr.result.best, optimum, "fault seed {fault_seed}");
        assert_eq!(
            (fr.actor_crashes, fr.actor_restarts),
            (1, 1),
            "fault seed {fault_seed}"
        );
    }
}
