//! Workspace integration: the fault-injection + retry/backoff layer,
//! end to end on the simulated wide-area testbed.
//!
//! Under a fixed fault seed — the outer proxy crashed mid-run plus a
//! 1% WAN chunk-drop rate — the wide-area knapsack must still complete
//! with the correct optimum, must visibly exercise the recovery paths
//! (proxy retries, transport retransmits, exactly one crash/restart),
//! and must do all of it deterministically: the same seeds always
//! reproduce the same virtual-time trace.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wacs::netsim::prelude::SimDuration;
use wacs::prelude::*;

/// Build the paper's wide-area run at a test-sized item count, plus
/// the fault plan the acceptance scenario prescribes: outer proxy
/// crashed halfway through the fault-free schedule (restarted 250ms
/// later) and 1% WAN chunk loss.
fn scenario(items: usize, fault_seed: u64) -> (KnapsackRun, FaultConfig) {
    let cfg = KnapsackRun::paper_default(System::WideArea, items);
    let clean = run_knapsack(&cfg);
    let faults = FaultConfig {
        seed: fault_seed,
        wan_drop: 0.01,
        outer_crash_at: Some(SimDuration::from_secs_f64(clean.elapsed_secs / 2.0)),
        ..FaultConfig::default()
    };
    (cfg, faults)
}

#[test]
fn crashed_proxy_and_lossy_wan_still_reach_the_optimum() {
    let (cfg, faults) = scenario(18, 7);
    let fr = run_knapsack_with_faults(&cfg, &faults);
    assert_eq!(
        fr.result.best,
        Instance::no_pruning(cfg.items).total_profit(),
        "faults slowed the run down but must not corrupt the answer"
    );
    assert_eq!(
        (fr.actor_crashes, fr.actor_restarts),
        (1, 1),
        "the planned outer-proxy crash/restart must have happened"
    );
    assert!(
        fr.nx_retries >= 1,
        "recovery must go through the retry layer (observed {})",
        fr.nx_retries
    );
    assert!(
        fr.chunks_dropped > 0 && fr.retransmits > 0,
        "1% WAN loss must have bitten ({} dropped, {} retransmits)",
        fr.chunks_dropped,
        fr.retransmits
    );
}

#[test]
fn fault_recovery_is_deterministic() {
    let (cfg, faults) = scenario(16, 7);
    let a = run_knapsack_with_faults(&cfg, &faults);
    let b = run_knapsack_with_faults(&cfg, &faults);
    // A deterministic DES: identical seeds give bit-identical traces,
    // so the recovered runs agree on timing and every fault counter.
    assert_eq!(
        a.result.elapsed_secs.to_bits(),
        b.result.elapsed_secs.to_bits()
    );
    assert_eq!(a.nx_retries, b.nx_retries);
    assert_eq!(a.chunks_dropped, b.chunks_dropped);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.result.best, b.result.best);
}

#[test]
fn recovery_survives_a_seed_sweep() {
    let optimum = Instance::no_pruning(16).total_profit();
    for fault_seed in [1, 2, 3] {
        let (cfg, faults) = scenario(16, fault_seed);
        let fr = run_knapsack_with_faults(&cfg, &faults);
        assert_eq!(fr.result.best, optimum, "fault seed {fault_seed}");
        assert_eq!(
            (fr.actor_crashes, fr.actor_restarts),
            (1, 1),
            "fault seed {fault_seed}"
        );
    }
}
