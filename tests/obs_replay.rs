//! Deterministic replay of the observability layer: because every
//! instrument on the simulated paths records *virtual* time, a run is
//! a pure function of its seeds — so two runs of the same scenario
//! must produce byte-identical registry snapshots, faults and all.
//! This is what makes the metrics trustworthy as regression anchors:
//! any diff in the snapshot JSON is a real behavior change, never
//! timing noise.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wacs::netsim::prelude::SimDuration;
use wacs::prelude::*;

/// The fault-recovery acceptance scenario: wide-area knapsack with the
/// outer proxy crashed mid-run (restarted 250 ms later) plus 1% WAN
/// chunk loss.
fn scenario(items: usize, fault_seed: u64) -> (KnapsackRun, FaultConfig) {
    let cfg = KnapsackRun::paper_default(System::WideArea, items);
    let clean = run_knapsack(&cfg);
    let faults = FaultConfig {
        seed: fault_seed,
        wan_drop: 0.01,
        outer_crash_at: Some(SimDuration::from_secs_f64(clean.elapsed_secs / 2.0)),
        ..FaultConfig::default()
    };
    (cfg, faults)
}

#[test]
fn same_seeds_give_byte_identical_snapshots() {
    let (cfg, faults) = scenario(16, 7);
    let a = run_knapsack_with_faults(&cfg, &faults);
    let b = run_knapsack_with_faults(&cfg, &faults);
    let ja = a.obs.to_json();
    let jb = b.obs.to_json();
    assert_eq!(ja, jb, "replay must reproduce the snapshot byte for byte");
}

#[test]
fn snapshot_covers_every_layer_of_the_stack() {
    let (cfg, faults) = scenario(16, 7);
    let fr = run_knapsack_with_faults(&cfg, &faults);
    let snap = &fr.obs;

    // Engine: per-hop transit and end-to-end delivery latencies.
    let delivery = snap
        .histograms
        .get("netsim.delivery_latency_ns")
        .expect("engine delivery histogram");
    assert!(delivery.count > 0);
    let hops = snap
        .histograms
        .get("netsim.hop_transit_ns")
        .expect("engine hop histogram");
    assert!(
        hops.count >= delivery.count,
        "multi-hop paths: more hops than deliveries"
    );

    // Engine fault counters must mirror the legacy Stats the run reports.
    assert_eq!(
        snap.counters.get("netsim.fault.chunks_dropped").copied(),
        Some(fr.chunks_dropped)
    );
    assert_eq!(
        snap.counters.get("netsim.fault.retransmits").copied(),
        Some(fr.retransmits)
    );
    assert_eq!(
        snap.counters.get("netsim.fault.actor_crashes").copied(),
        Some(fr.actor_crashes)
    );
    assert_eq!(
        snap.counters.get("netsim.fault.actor_restarts").copied(),
        Some(fr.actor_restarts)
    );

    // Proxy control plane: the master bound through the outer server,
    // and the crash forced at least one client retry.
    assert!(snap.counters.get("proxy.outer.binds").copied().unwrap_or(0) >= 1);
    assert!(
        snap.counters
            .get("proxy.client.retries")
            .copied()
            .unwrap_or(0)
            >= 1,
        "recovery must surface in the client retry counter"
    );
    assert!(snap.histograms.contains_key("proxy.outer.leg_in_ns"));
    assert!(snap.histograms.contains_key("proxy.outer.service_ns"));

    // Workload: slaves timed their steal round trips.
    let steals = snap
        .histograms
        .get("knapsack.steal_rtt_ns")
        .expect("steal RTT histogram");
    assert!(steals.count > 0);
    // A steal crosses the proxied WAN path: its RTT can't be below the
    // one-way relay service cost.
    assert!(steals.quantile(0.5).unwrap() > 1_000_000);
}

#[test]
fn different_fault_seeds_give_different_snapshots() {
    // The complement of replay determinism: the snapshot actually
    // depends on the fault draw (it isn't a constant).
    let (cfg, faults1) = scenario(16, 1);
    let faults2 = FaultConfig {
        seed: 2,
        ..faults1.clone()
    };
    let a = run_knapsack_with_faults(&cfg, &faults1);
    let b = run_knapsack_with_faults(&cfg, &faults2);
    assert_ne!(a.obs.to_json(), b.obs.to_json());
}
