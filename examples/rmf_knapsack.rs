//! The full Globus-style workflow: a knapsack instance file is staged
//! via GASS, an RMF job is submitted from outside the firewall, the Q
//! server forks solver processes inside, and results come back as
//! staged stdout — the paper's deployment model end to end.
//!
//! Run with: `cargo run --release --example rmf_knapsack`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::time::Duration;
use wacs::prelude::*;

fn main() -> std::io::Result<()> {
    // One firewalled site with a compute cluster; a user outside.
    let net = VNet::new();
    let outside = net.add_site("internet", None);
    let rwcp = net.add_site("rwcp", None);
    net.add_host("user", outside);
    net.add_host("gk-host", outside);
    let alloc_ref = net.add_host("alloc-host", rwcp);
    let fe_ref = net.add_host("compas-fe", rwcp);
    net.reload_policy(
        rwcp,
        rmf_site_policy(
            "rwcp",
            &[
                (alloc_ref, rmf::ALLOCATOR_PORT),
                (fe_ref, rmf::QSERVER_PORT),
            ],
        ),
    );

    let trace = FlowTrace::new();
    let gass = GassStore::new();
    let registry = ExecRegistry::new();

    // The "binary" installed on the cluster: reads its staged data
    // file, solves with branch-and-bound, prints the result. Process 0
    // also cross-checks against dynamic programming.
    registry.register("knapsack-solve", |ctx: rmf::ExecCtx| {
        let Some(file) = ctx.files.get("instance.dat") else {
            ctx.println("missing instance.dat");
            return 2;
        };
        let Ok(text) = String::from_utf8(file.clone()) else {
            ctx.println("instance.dat is not UTF-8");
            return 2;
        };
        let inst = match knapsack::fileformat::read_instance(&text) {
            Ok(i) => i.sorted_by_ratio(),
            Err(e) => {
                ctx.println(format!("bad instance: {e}"));
                return 2;
            }
        };
        let (best, counters) =
            knapsack::seq_solve(&inst, knapsack::SolveMode::Prune { sorted: true });
        ctx.println(format!(
            "proc {}/{}: instance '{}' optimum = {best} ({} nodes, {} pruned)",
            ctx.proc_index, ctx.proc_count, inst.name, counters.traversed, counters.pruned
        ));
        if ctx.proc_index == 0 {
            let dp = knapsack::dp::solve(&inst);
            if dp != best {
                ctx.println(format!("DP DISAGREES: {dp}"));
                return 1;
            }
            ctx.println("DP cross-check: agreed");
        }
        0
    });

    let alloc = ResourceAllocator::start(
        net.clone(),
        "alloc-host",
        SelectPolicy::LeastLoaded,
        trace.clone(),
    )?;
    alloc.state.register(ResourceInfo {
        name: "COMPaS".into(),
        qserver_host: "compas-fe".into(),
        cpus: 8,
    });
    let _qs = QServer::start(
        net.clone(),
        "compas-fe",
        "COMPaS",
        registry,
        gass.clone(),
        "alloc-host",
        trace.clone(),
    )?;
    let gk = Gatekeeper::start(
        net.clone(),
        "gk-host",
        vec!["/O=Grid/CN=Researcher".into()],
        "alloc-host",
        gass.clone(),
        trace.clone(),
    )?;

    // The user stages the problem file (the paper's 50-item instances
    // were exactly such data files) and submits RSL referencing it.
    let inst = knapsack::Instance::uncorrelated(30, 200, 4242);
    gass.put(
        "gk-host",
        "inputs/knap30.dat",
        knapsack::fileformat::write_instance(&inst).into_bytes(),
    );
    let gk_addr = gk.addr();
    let job = submit_job(
        &net,
        "user",
        (&gk_addr.0, gk_addr.1),
        "/O=Grid/CN=Researcher",
        "&(executable=knapsack-solve)(count=4)(stage_in=instance.dat<gass://gk-host/inputs/knap30.dat)",
    )?;
    println!("submitted {job} from outside the firewall");
    let (state, exit, stdout_urls) = wait_job(
        &net,
        "user",
        (&gk_addr.0, gk_addr.1),
        job,
        Duration::from_secs(60),
    )?;
    println!("{job}: {state:?} (exit {exit})\n--- staged stdout ---");
    for url in &stdout_urls {
        print!("{}", String::from_utf8_lossy(&gass.get_url(url)?));
    }
    println!("--- execution flow (Fig. 2) ---\n{}", trace.render());
    Ok(())
}
