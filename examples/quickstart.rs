//! Quickstart: the whole story in one file.
//!
//! 1. A deny-based firewall blocks an inbound connection.
//! 2. The Nexus Proxy (outer + inner servers) makes the same endpoint
//!    reachable through a single opened port.
//! 3. RMF submits a job from outside the firewall onto an inside
//!    resource.
//!
//! Run with: `cargo run --example quickstart`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{Read, Write};
use std::time::Duration;
use wacs::prelude::*;

fn main() -> std::io::Result<()> {
    // ---- The world: one firewalled site, one open site -------------
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", None); // policy set below
    let dmz = net.add_site("dmz", None);
    let internet = net.add_site("internet", None);

    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    let alloc_ref = net.add_host("rwcp-alloc", rwcp);
    let qsrv_ref = net.add_host("compas-fe", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("user", internet);

    // Deny-based inbound, allow-based outbound — with exactly the
    // holes the paper's architecture needs: nxport for the proxy, plus
    // the fixed RMF control ports.
    let mut policy = rmf_site_policy(
        "rwcp",
        &[
            (alloc_ref, rmf::ALLOCATOR_PORT),
            (qsrv_ref, rmf::QSERVER_PORT),
        ],
    );
    policy = policy.push(
        firewall::Rule::allow(firewall::Direction::Inbound)
            .proto(firewall::Proto::Tcp)
            .dst(
                firewall::HostSet::One(inner_ref),
                firewall::PortSet::One(NXPORT),
            )
            .label("nxport"),
    );
    net.reload_policy(rwcp, policy);

    // ---- 1. The firewall problem -----------------------------------
    let listener = net.bind("rwcp-sun", 7777)?;
    match net.dial("user", "rwcp-sun", 7777) {
        Err(e) => println!("[1] direct inbound connect: BLOCKED ({e})"),
        Ok(_) => unreachable!("the firewall should have dropped this"),
    }
    drop(listener);

    // ---- 2. The Nexus Proxy ----------------------------------------
    let _inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner"))?;
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )?;
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

    // The inside server binds via NXProxyBind: it advertises a
    // rendezvous address on the outer server.
    let nx_listener = nx_proxy_bind(&net, &env, "rwcp-sun")?;
    let (adv_host, adv_port) = nx_listener.advertised.clone();
    println!("[2] inside endpoint advertised as {adv_host}:{adv_port}");

    let srv = std::thread::spawn(move || -> std::io::Result<()> {
        let mut s = nx_listener.accept()?; // NXProxyAccept
        let mut buf = [0u8; 5];
        s.read_exact(&mut buf)?;
        s.write_all(b"pong!")?;
        Ok(())
    });
    let mut s = net.dial("user", &adv_host, adv_port)?;
    s.write_all(b"ping!")?;
    let mut buf = [0u8; 5];
    s.read_exact(&mut buf)?;
    println!(
        "[2] relayed round trip: sent \"ping!\", got \"{}\" ({} bytes moved by the outer server)",
        String::from_utf8_lossy(&buf),
        outer.stats().relayed_bytes
    );
    srv.join().unwrap()?;

    // ---- 3. RMF: a job from outside, run inside --------------------
    let trace = FlowTrace::new();
    let gass = GassStore::new();
    let registry = ExecRegistry::new();
    registry.register("hello", |ctx: rmf::ExecCtx| {
        ctx.println(format!(
            "hello from process {} on {}",
            ctx.proc_index, ctx.host
        ));
        0
    });
    let alloc = ResourceAllocator::start(
        net.clone(),
        "rwcp-alloc",
        SelectPolicy::LeastLoaded,
        trace.clone(),
    )?;
    alloc.state.register(ResourceInfo {
        name: "COMPaS".into(),
        qserver_host: "compas-fe".into(),
        cpus: 8,
    });
    let _qs = QServer::start(
        net.clone(),
        "compas-fe",
        "COMPaS",
        registry,
        gass.clone(),
        "rwcp-alloc",
        trace.clone(),
    )?;
    let gk = Gatekeeper::start(
        net.clone(),
        "rwcp-outer",
        vec!["/O=Grid/CN=You".into()],
        "rwcp-alloc",
        gass.clone(),
        trace.clone(),
    )?;

    let gk_addr = gk.addr();
    let job = submit_job(
        &net,
        "user",
        (&gk_addr.0, gk_addr.1),
        "/O=Grid/CN=You",
        "&(executable=hello)(count=4)",
    )?;
    let (state, _, stdout_urls) = wait_job(
        &net,
        "user",
        (&gk_addr.0, gk_addr.1),
        job,
        Duration::from_secs(30),
    )?;
    println!("[3] {job} finished: {state:?}");
    for url in &stdout_urls {
        print!("{}", String::from_utf8_lossy(&gass.get_url(url)?));
    }
    println!("\nRMF execution flow (paper Fig. 2):\n{}", trace.render());
    Ok(())
}
