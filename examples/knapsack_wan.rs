//! The paper's headline experiment in miniature: the 0-1 knapsack on
//! all four Table 3 systems over the simulated testbed, with and
//! without the Nexus Proxy on the wide-area cluster.
//!
//! Run with: `cargo run --release --example knapsack_wan -- [items]`
//! (default 22 items ≈ 8M-node search space).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wacs::prelude::*;

fn main() {
    let items: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(22);
    println!(
        "0-1 knapsack, no-pruning instance, n = {items} (2^{} nodes)\n",
        items + 1
    );

    let seq = sequential_baseline(items);
    println!(
        "sequential on RWCP-Sun: {:>6.1} virtual s ({} nodes)",
        seq.elapsed_secs,
        seq.total_traversed()
    );

    println!(
        "\n{:<22} {:>5} {:>12} {:>9}",
        "System", "procs", "time (vs)", "speedup"
    );
    for system in System::ALL {
        let rr = run_knapsack(&KnapsackRun::paper_default(system, items));
        println!(
            "{:<22} {:>5} {:>12.1} {:>9.2}",
            system.name(),
            rr.ranks.len(),
            rr.elapsed_secs,
            seq.elapsed_secs / rr.elapsed_secs
        );
    }

    // The proxy-overhead comparison (paper: ~3.5%).
    let mut with = KnapsackRun::paper_default(System::WideArea, items);
    with.use_proxy = true;
    let mut without = with.clone();
    without.use_proxy = false;
    let t_with = run_knapsack(&with).elapsed_secs;
    let t_without = run_knapsack(&without).elapsed_secs;
    println!(
        "\nWide-area with proxy:    {t_with:>8.1} vs\nWide-area without proxy: {t_without:>8.1} vs\nproxy overhead: {:.1}%",
        100.0 * (t_with - t_without) / t_without
    );

    // Steal statistics (Tables 5/6 in miniature).
    let rr = run_knapsack(&KnapsackRun::paper_default(System::WideArea, items));
    println!("\nWide-area run detail (master + per-cluster max/min/avg):");
    let m = rr.master().unwrap();
    println!(
        "  master on {}: {} steals served, {} nodes",
        m.host, m.steals, m.traversed
    );
    for group in rr.groups() {
        let s = rr.group_summary(&group, |r| r.steals).unwrap();
        let t = rr.group_summary(&group, |r| r.traversed).unwrap();
        println!(
            "  {group:<10} steals max/min/avg = {}/{}/{:.1}   nodes max/min/avg = {}/{}/{:.0}",
            s.max, s.min, s.avg, t.max, t.min, t.avg
        );
    }
}
