//! MPICH-G-style MPI spanning a firewall: four ranks inside a
//! deny-based site and four outside run collectives together, with the
//! inside ranks transparently routed through the Nexus Proxy — and the
//! real 0-1 knapsack solver on top.
//!
//! Run with: `cargo run --release --example mpi_across_firewall`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::Arc;
use wacs::prelude::*;

fn main() -> std::io::Result<()> {
    // Firewalled site + open site, with the proxy pair deployed.
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", None);
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    for i in 0..4 {
        net.add_host(format!("compas{i}"), rwcp);
    }
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    for i in 0..4 {
        net.add_host(format!("etl{i}"), etl);
    }
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));

    let _inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner"))?;
    let _outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )?;

    // Ranks 0-3 inside (proxied), 4-7 outside (direct).
    let mut specs = Vec::new();
    for i in 0..4 {
        specs.push(RankSpec::new(NexusContext::via_proxy(
            net.clone(),
            format!("compas{i}"),
            ("rwcp-outer", OUTER_PORT),
        )));
    }
    for i in 0..4 {
        specs.push(RankSpec::new(NexusContext::direct(
            net.clone(),
            format!("etl{i}"),
        )));
    }

    let inst = Arc::new(Instance::no_pruning(20));
    let params = ParParams {
        interval: 512,
        steal_unit: 8,
        ..ParParams::default()
    };
    let groups: Arc<Vec<String>> = Arc::new(
        (0..8)
            .map(|i| if i < 4 { "COMPaS" } else { "ETL" }.to_string())
            .collect(),
    );

    let results = run_world(specs, move |comm| {
        // Warm up with a collective across the firewall.
        comm.barrier().unwrap();
        let greeting = if comm.rank() == 0 {
            format!("hello from rank 0 on {}", comm.host()).into_bytes()
        } else {
            Vec::new()
        };
        let got = comm.bcast(0, greeting).unwrap();
        if comm.rank() == comm.size() - 1 {
            println!(
                "rank {} on {} received: {}",
                comm.rank(),
                comm.host(),
                String::from_utf8_lossy(&got)
            );
        }
        // The real parallel solver, masters and slaves split across
        // the firewall.
        knapsack::par_run(comm, &inst, &params, &groups).unwrap()
    })?;

    let rr = results.into_iter().flatten().next().expect("master result");
    println!(
        "\nknapsack n=20 solved: best = {}, {} nodes traversed in {:.2} wall s",
        rr.best,
        rr.total_traversed(),
        rr.elapsed_secs
    );
    for r in &rr.ranks {
        println!(
            "  rank {:>2} [{:<7}] nodes {:>8} steals {:>4} backs {:>3}",
            r.rank, r.group, r.traversed, r.steals, r.back_sends
        );
    }
    Ok(())
}
