//! `wacs-core` — the reproduction's experimental core: the paper's
//! testbed as data ([`testbed`], Fig. 5 + Table 3), the calibration
//! constants tying the simulator to the paper's measurements
//! ([`calibration`]), and the harness functions that regenerate every
//! table ([`experiments`]).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod calibration;
pub mod decompose;
pub mod experiments;
pub mod testbed;

pub use decompose::{decompose, decompose_with_model, table2_report, Component, Decomposition};
pub use experiments::{
    pingpong, pingpong_with_model, run_knapsack, run_knapsack_with_faults, run_knapsack_with_mode,
    sequential_baseline, FaultConfig, FaultRun, KnapsackRun, Mode, Pair, PingPongResult,
};
pub use testbed::{FirewallMode, PaperTestbed, RankPlace, System};
