//! Per-hop latency decomposition of the Table 2 data paths.
//!
//! A single one-way probe message is pushed through the exact path a
//! Table 2 cell measures, and its end-to-end latency is split into the
//! legs and relay service gaps it actually traversed:
//!
//! * **direct** — one component: the wire transit itself.
//! * **indirect LAN** (RWCP-Sun ↔ COMPaS, both proxied) — five:
//!   client→outer leg, outer relay service, outer→inner leg, inner
//!   relay service, inner→target leg.
//! * **indirect WAN** (RWCP-Sun ↔ ETL-Sun, client proxied) — three:
//!   client→outer leg, outer relay service, WAN leg to the target.
//!
//! Every component is the difference of two virtual-time event stamps,
//! and consecutive components share their boundary stamp, so the
//! components *telescope*: they sum to the end-to-end latency exactly
//! (0 sim-ticks of error), which `tests/table2_decomposition.rs` pins.
//!
//! The leg/service figures come from the `wacs-obs` histograms the
//! relay cores record ([`nexus_proxy::sim::RelayCore::set_obs`]); the
//! final leg and the total are measured at the target from the
//! delivery's engine stamp and the origin stamp carried in the probe
//! payload. The probe is sent with a raw `ctx.send` (no segmentation),
//! so exactly one message crosses each instrument.

use crate::calibration as cal;
use crate::experiments::{Mode, Pair};
use crate::testbed::{FirewallMode, PaperTestbed, NXPORT, OUTER_CTRL_PORT};
use netsim::engine::{NetConfig, Simulator};
use netsim::prelude::*;
use nexus_proxy::sim::{
    NxClient, NxEvent, NxHandled, RelayModel, SimInnerServer, SimOuterServer, SimProxyEnv,
};
use std::sync::Arc;
use wacs_obs::Registry;
use wacs_sync::Mutex;

/// One additive piece of an end-to-end latency.
#[derive(Debug, Clone)]
pub struct Component {
    pub name: &'static str,
    pub nanos: u64,
    /// Wire/queue transit (true) vs. relay service time (false) — the
    /// split the "WAN dominates" claim is about.
    pub is_transit: bool,
}

/// The decomposition of one Table 2 cell's one-way latency.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub pair: Pair,
    pub mode: Mode,
    pub size: u64,
    /// End-to-end one-way latency of the probe (origin stamp → target
    /// delivery), in virtual nanos.
    pub total_ns: u64,
    /// In path order; sums to `total_ns` exactly.
    pub components: Vec<Component>,
}

impl Decomposition {
    /// Sum of the components (== `total_ns` by construction; asserted
    /// by the golden test, reported in the JSON for auditability).
    pub fn component_sum(&self) -> u64 {
        self.components.iter().map(|c| c.nanos).sum()
    }

    /// The largest transit (non-service) component, if any.
    pub fn dominant_transit(&self) -> Option<&Component> {
        self.components
            .iter()
            .filter(|c| c.is_transit)
            .max_by_key(|c| c.nanos)
    }

    /// Deterministic JSON object (see EXPERIMENTS.md for the schema).
    pub fn to_json(&self) -> String {
        let mut w = wacs_obs::json::JsonWriter::object();
        w.field_str("pair", self.pair.name());
        w.field_str("mode", self.mode.name());
        w.field_u64("size", self.size);
        w.field_u64("total_ns", self.total_ns);
        w.field_u64("sum_ns", self.component_sum());
        let mut arr = wacs_obs::json::JsonWriter::array();
        for c in &self.components {
            let mut obj = wacs_obs::json::JsonWriter::object();
            obj.field_str("name", c.name);
            obj.field_u64("ns", c.nanos);
            obj.field_raw("transit", if c.is_transit { "true" } else { "false" });
            arr.raw(&obj.finish());
        }
        w.field_raw("components", &arr.finish());
        w.finish()
    }
}

/// Origin stamp carried inside the probe payload: the engine re-stamps
/// `sent_at` at every relay hop, so end-to-end time needs the original.
struct ProbeStamp(SimTime);

#[derive(Default)]
struct ProbeState {
    server_adv: Option<(NodeId, u16)>,
    total_ns: Option<u64>,
    last_leg_ns: Option<u64>,
}

type ProbeShared = Arc<Mutex<ProbeState>>;

const POLL: u64 = 1;

/// Target of the probe: binds (via the proxy when firewalled), then
/// measures the one message that arrives.
struct ProbeServer {
    nx: NxClient,
    shared: ProbeShared,
}

impl ProbeServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.shared.lock().server_adv = Some(advertised);
            }
            NxHandled::Data(d) => {
                let now = ctx.now();
                let mut st = self.shared.lock();
                st.last_leg_ns = Some(now.since(d.sent_at).nanos());
                if let Some(stamp) = d.peek::<ProbeStamp>() {
                    st.total_ns = Some(now.since(stamp.0).nanos());
                }
                drop(st);
                ctx.stop_simulation();
            }
            _ => {}
        }
    }
}

impl Actor for ProbeServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().server_adv = Some(adv);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Source of the probe: waits for the target's advertised address,
/// connects, and fires exactly one stamped message.
struct ProbeClient {
    nx: NxClient,
    shared: ProbeShared,
    size: u64,
}

impl ProbeClient {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        if let NxHandled::Event(NxEvent::Connected { flow, .. }) = h {
            // Raw send: one message through every instrument, no
            // segmentation framing.
            let stamp = ProbeStamp(ctx.now());
            let _ = ctx.send(flow, self.size, stamp);
        }
    }
}

impl Actor for ProbeClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == POLL {
            let adv = self.shared.lock().server_adv;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 0),
                None => ctx.set_timer(SimDuration::from_millis(1), POLL),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Sum of a single-sample histogram in `snap` (0 when absent/empty —
/// the component then simply reports zero, and the telescoping check
/// in the golden test catches any miswiring).
fn hist_sum(snap: &wacs_obs::RegistrySnapshot, name: &str) -> u64 {
    snap.histograms.get(name).map_or(0, |h| h.sum)
}

/// Decompose one Table 2 cell with the calibrated relay model.
pub fn decompose(pair: Pair, mode: Mode, size: u64) -> Decomposition {
    decompose_with_model(pair, mode, size, cal::relay_model())
}

/// [`decompose`] with an explicit relay cost model (for the
/// `ablation_relay` sweep).
pub fn decompose_with_model(pair: Pair, mode: Mode, size: u64, model: RelayModel) -> Decomposition {
    let fw_mode = match mode {
        Mode::Direct => FirewallMode::TemporarilyOpen,
        Mode::Indirect => FirewallMode::DenyInWithNxport,
    };
    let tb = PaperTestbed::build(fw_mode);
    let (client_host, server_host) = match pair {
        Pair::RwcpSunCompas => (tb.rwcp_sun, tb.compas[0]),
        Pair::RwcpSunEtlSun => (tb.rwcp_sun, tb.etl_sun),
    };
    let registry = Registry::new();
    let mut sim = Simulator::new(tb.topo.clone(), NetConfig::default(), 1);
    sim.install_obs(registry.clone());

    let env_for = |host: NodeId| -> SimProxyEnv {
        if mode == Mode::Indirect && tb.topo.site_of(host) == tb.rwcp_site {
            SimProxyEnv::via((tb.rwcp_outer, OUTER_CTRL_PORT))
        } else {
            SimProxyEnv::direct()
        }
    };

    if mode == Mode::Indirect {
        sim.spawn(
            tb.rwcp_outer,
            Box::new(
                SimOuterServer::new(OUTER_CTRL_PORT, Some((tb.rwcp_inner, NXPORT)), model)
                    .with_obs(&registry),
            ),
        );
        sim.spawn(
            tb.rwcp_inner,
            Box::new(SimInnerServer::new(NXPORT, model).with_obs(&registry)),
        );
    }

    let shared: ProbeShared = Arc::default();
    sim.spawn(
        server_host,
        Box::new(ProbeServer {
            nx: NxClient::new(env_for(server_host)).with_obs(&registry),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        client_host,
        Box::new(ProbeClient {
            nx: NxClient::new(env_for(client_host)).with_obs(&registry),
            shared: shared.clone(),
            size,
        }),
    );
    sim.run();

    let st = shared.lock();
    // The probe is one message over the same wiring every Table 2 test
    // exercises; not arriving means the harness itself is broken.
    #[allow(clippy::expect_used)]
    let total_ns = st.total_ns.expect("probe did not arrive"); // lint:allow(unwrap-panic)
    #[allow(clippy::expect_used)]
    let last_leg_ns = st.last_leg_ns.expect("probe did not arrive"); // lint:allow(unwrap-panic)
    drop(st);
    let snap = registry.snapshot();

    let components = match (mode, pair) {
        (Mode::Direct, _) => vec![Component {
            name: "wire_transit",
            nanos: last_leg_ns,
            is_transit: true,
        }],
        // Both endpoints proxied: the probe crosses the outer relay
        // (rendezvous side) and the inner relay.
        (Mode::Indirect, Pair::RwcpSunCompas) => vec![
            Component {
                name: "client_to_outer",
                nanos: hist_sum(&snap, "proxy.outer.leg_in_ns"),
                is_transit: true,
            },
            Component {
                name: "outer_relay_service",
                nanos: hist_sum(&snap, "proxy.outer.service_ns"),
                is_transit: false,
            },
            Component {
                name: "outer_to_inner",
                nanos: hist_sum(&snap, "proxy.inner.leg_in_ns"),
                is_transit: true,
            },
            Component {
                name: "inner_relay_service",
                nanos: hist_sum(&snap, "proxy.inner.service_ns"),
                is_transit: false,
            },
            Component {
                name: "inner_to_target",
                nanos: last_leg_ns,
                is_transit: true,
            },
        ],
        // Client proxied, ETL target open: one relay, then the WAN leg.
        (Mode::Indirect, Pair::RwcpSunEtlSun) => vec![
            Component {
                name: "client_to_outer",
                nanos: hist_sum(&snap, "proxy.outer.leg_in_ns"),
                is_transit: true,
            },
            Component {
                name: "outer_relay_service",
                nanos: hist_sum(&snap, "proxy.outer.service_ns"),
                is_transit: false,
            },
            Component {
                name: "wan_to_target",
                nanos: last_leg_ns,
                is_transit: true,
            },
        ],
    };

    Decomposition {
        pair,
        mode,
        size,
        total_ns,
        components,
    }
}

/// Decompose every Table 2 cell (both pairs × both modes) at `size`
/// bytes and render one deterministic JSON report.
pub fn table2_report(size: u64) -> String {
    let mut arr = wacs_obs::json::JsonWriter::array();
    for pair in [Pair::RwcpSunCompas, Pair::RwcpSunEtlSun] {
        for mode in [Mode::Direct, Mode::Indirect] {
            arr.raw(&decompose(pair, mode, size).to_json());
        }
    }
    let mut w = wacs_obs::json::JsonWriter::object();
    w.field_str("report", "table2_decomposition");
    w.field_u64("size", size);
    w.field_raw("cells", &arr.finish());
    w.finish()
}
