//! The paper's experimental environment (Figure 5) as data, plus the
//! four Table 3 systems.
//!
//! ```text
//!   RWCP site (deny-in firewall)          DMZ             ETL site (open)
//!   ┌──────────────────────────┐   ┌──────────────┐   ┌──────────────────┐
//!   │ rwcp-sun (E450, 4 CPU)   │   │  rwcp-outer  │   │ etl-sun (E450,6) │
//!   │ compas0..7 (PPro SMP)    ├───┤  (Ultra 80)  ├───┤ etl-o2k (O2K,16) │
//!   │ rwcp-inner (E450, 2 CPU) │gw │              │IMnet 1.5Mbps        │
//!   └──────────────────────────┘   └──────────────┘   └──────────────────┘
//! ```

use crate::calibration as cal;
use firewall::Policy;
use netsim::prelude::*;

/// Number of COMPaS nodes (8 quad-processor Pentium Pro SMPs).
pub const COMPAS_NODES: usize = 8;

/// The nxport hole used by the proxy pair.
pub const NXPORT: u16 = firewall::NXPORT;

/// Control port of the outer server.
pub const OUTER_CTRL_PORT: u16 = firewall::OUTER_PORT;

/// The built testbed: topology plus the node ids experiments need.
#[derive(Debug, Clone)]
pub struct PaperTestbed {
    pub topo: Topology,
    pub rwcp_site: SiteId,
    pub dmz_site: SiteId,
    pub etl_site: SiteId,
    pub rwcp_sun: NodeId,
    pub compas: Vec<NodeId>,
    pub rwcp_inner: NodeId,
    pub rwcp_outer: NodeId,
    pub etl_sun: NodeId,
    pub etl_o2k: NodeId,
}

/// Firewall condition for a build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirewallMode {
    /// The production configuration: deny-in with only the nxport hole.
    DenyInWithNxport,
    /// "We have temporarily changed the configuration of the firewall
    /// to enable direct communication" — the measurement baseline.
    TemporarilyOpen,
    /// The Globus 1.1 alternative the paper critiques: open an inbound
    /// listener port range on every inside host
    /// (`TCP_MIN_PORT`/`TCP_MAX_PORT`). Fast, but the exposure is the
    /// whole range.
    PortRangeOpen { lo: u16, hi: u16 },
}

impl PaperTestbed {
    /// Build the Figure 5 environment.
    pub fn build(mode: FirewallMode) -> PaperTestbed {
        let mut topo = Topology::new();
        let rwcp_site = topo.add_site("RWCP", None); // policy patched below
        let dmz_site = topo.add_site("RWCP-DMZ", None);
        let etl_site = topo.add_site("ETL", None);

        let rwcp_sun = topo.add_host_with_cpu("rwcp-sun", rwcp_site, cal::cpu::SUN_E450, 4);
        let compas: Vec<NodeId> = (0..COMPAS_NODES)
            .map(|i| {
                topo.add_host_with_cpu(format!("compas{i}"), rwcp_site, cal::cpu::PENTIUM_PRO, 4)
            })
            .collect();
        let rwcp_inner = topo.add_host_with_cpu("rwcp-inner", rwcp_site, cal::cpu::SUN_E450, 2);
        let rwcp_sw = topo.add_switch("rwcp-sw", rwcp_site);
        let rwcp_gw = topo.add_switch("rwcp-gw", dmz_site);
        let rwcp_outer = topo.add_host_with_cpu("rwcp-outer", dmz_site, cal::cpu::SUN_E450, 2);
        let etl_sw = topo.add_switch("etl-sw", etl_site);
        let etl_sun = topo.add_host_with_cpu("etl-sun", etl_site, cal::cpu::SUN_E450, 6);
        let etl_o2k = topo.add_host_with_cpu("etl-o2k", etl_site, cal::cpu::O2K_R10K, 16);

        let us = SimDuration::from_micros;
        let lan_lat = us(cal::LAN_HOP_LATENCY_US);
        topo.add_link(rwcp_sun, rwcp_sw, lan_lat, cal::LAN_BANDWIDTH);
        for &c in &compas {
            topo.add_link(c, rwcp_sw, lan_lat, cal::LAN_BANDWIDTH);
        }
        topo.add_link(rwcp_inner, rwcp_sw, lan_lat, cal::LAN_BANDWIDTH);
        topo.add_link(rwcp_sw, rwcp_gw, lan_lat, cal::LAN_BANDWIDTH);
        topo.add_link(rwcp_outer, rwcp_gw, lan_lat, cal::LAN_BANDWIDTH);
        topo.add_link(
            rwcp_gw,
            etl_sw,
            SimDuration::from_millis(cal::WAN_LATENCY_MS) + us(cal::WAN_LATENCY_EXTRA_US),
            cal::WAN_BANDWIDTH,
        );
        topo.add_link(etl_sw, etl_sun, lan_lat, cal::LAN_BANDWIDTH);
        topo.add_link(etl_sw, etl_o2k, lan_lat, cal::LAN_BANDWIDTH);

        topo.sites[rwcp_site.0 as usize].policy = match mode {
            FirewallMode::DenyInWithNxport => {
                Some(Policy::typical_with_nxport("RWCP", rwcp_inner.0, NXPORT))
            }
            FirewallMode::TemporarilyOpen => None,
            FirewallMode::PortRangeOpen { lo, hi } => {
                Some(Policy::typical_with_port_range("RWCP", lo, hi))
            }
        };

        PaperTestbed {
            topo,
            rwcp_site,
            dmz_site,
            etl_site,
            rwcp_sun,
            compas,
            rwcp_inner,
            rwcp_outer,
            etl_sun,
            etl_o2k,
        }
    }

    /// ASCII rendering of the environment (regenerates Figure 5 as a
    /// validated description: names, CPUs, links, policies).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Experimental environment (paper Fig. 5)\n");
        for (i, site) in self.topo.sites.iter().enumerate() {
            let fw = match &site.policy {
                Some(p) => format!(
                    "firewall: {} (inbound holes: {})",
                    p.name,
                    p.inbound_exposure()
                ),
                None => "no firewall".to_string(),
            };
            out.push_str(&format!("site {} — {fw}\n", site.name));
            for n in &self.topo.nodes {
                if n.site.0 as usize == i {
                    match n.kind {
                        netsim::topology::NodeKind::Host => out.push_str(&format!(
                            "  host {:<12} {:>2} cpu × {:>7.0} nodes/s\n",
                            n.name, n.cpus, n.cpu_rate
                        )),
                        netsim::topology::NodeKind::Switch => {
                            out.push_str(&format!("  switch {}\n", n.name))
                        }
                    }
                }
            }
        }
        out.push_str("links:\n");
        for l in &self.topo.links {
            out.push_str(&format!(
                "  {:<24} {:>9} lat, {:>10.0} B/s\n",
                l.name, l.latency, l.bandwidth
            ));
        }
        out
    }
}

/// One rank placement: which host, and which Table 3 cluster label it
/// reports under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPlace {
    pub host: NodeId,
    pub group: String,
}

/// The four systems of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// "8 processors, 1 processor on each node" of COMPaS.
    Compas,
    /// "8 processors on ETL-O2K."
    EtlO2k,
    /// "RWCP-Sun + COMPaS: total 12 processors, 4 on RWCP-Sun and 8 on
    /// COMPaS."
    LocalArea,
    /// "RWCP-Sun + COMPaS + ETL-O2K: total 20 processors."
    WideArea,
}

impl System {
    pub const ALL: [System; 4] = [
        System::Compas,
        System::EtlO2k,
        System::LocalArea,
        System::WideArea,
    ];

    pub fn name(self) -> &'static str {
        match self {
            System::Compas => "COMPaS",
            System::EtlO2k => "ETL-O2K",
            System::LocalArea => "Local-area Cluster",
            System::WideArea => "Wide-area Cluster",
        }
    }

    /// Whether this system spans both sites (and therefore exercises
    /// the WAN and, under deny-in, the Nexus Proxy).
    pub fn is_wide_area(self) -> bool {
        matches!(self, System::WideArea)
    }

    /// Rank placements (rank 0 = master first). Mirrors Table 3.
    pub fn ranks(self, tb: &PaperTestbed) -> Vec<RankPlace> {
        let mut v = Vec::new();
        let mut push = |host: NodeId, group: &str, n: usize| {
            for _ in 0..n {
                v.push(RankPlace {
                    host,
                    group: group.to_string(),
                });
            }
        };
        match self {
            System::Compas => {
                for &c in &tb.compas {
                    push(c, "COMPaS", 1);
                }
            }
            System::EtlO2k => push(tb.etl_o2k, "ETL-O2K", 8),
            System::LocalArea => {
                push(tb.rwcp_sun, "RWCP-Sun", 4);
                for &c in &tb.compas {
                    push(c, "COMPaS", 1);
                }
            }
            System::WideArea => {
                push(tb.rwcp_sun, "RWCP-Sun", 4);
                for &c in &tb.compas {
                    push(c, "COMPaS", 1);
                }
                push(tb.etl_o2k, "ETL-O2K", 8);
            }
        }
        v
    }

    pub fn processors(self, tb: &PaperTestbed) -> usize {
        self.ranks(tb).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_figure5_inventory() {
        let tb = PaperTestbed::build(FirewallMode::DenyInWithNxport);
        assert_eq!(tb.compas.len(), 8);
        assert_eq!(tb.topo.node(tb.rwcp_sun).cpus, 4);
        assert_eq!(tb.topo.node(tb.etl_sun).cpus, 6);
        assert_eq!(tb.topo.node(tb.etl_o2k).cpus, 16);
        assert_eq!(tb.topo.node(tb.rwcp_inner).cpus, 2);
        // RWCP firewalled, ETL open.
        assert!(tb.topo.site(tb.rwcp_site).policy.is_some());
        assert!(tb.topo.site(tb.etl_site).policy.is_none());
    }

    #[test]
    fn temporarily_open_removes_the_firewall() {
        let tb = PaperTestbed::build(FirewallMode::TemporarilyOpen);
        assert!(tb.topo.site(tb.rwcp_site).policy.is_none());
    }

    #[test]
    fn routes_cross_expected_sites() {
        let tb = PaperTestbed::build(FirewallMode::DenyInWithNxport);
        // rwcp-sun → etl-sun crosses RWCP → DMZ → ETL.
        let path = tb.topo.route(tb.rwcp_sun, tb.etl_sun).unwrap();
        let crossings = tb.topo.site_crossings(tb.rwcp_sun, &path);
        assert_eq!(
            crossings,
            vec![(tb.rwcp_site, tb.dmz_site), (tb.dmz_site, tb.etl_site)]
        );
        // rwcp-sun → compas0 stays inside RWCP.
        let path = tb.topo.route(tb.rwcp_sun, tb.compas[0]).unwrap();
        assert!(tb.topo.site_crossings(tb.rwcp_sun, &path).is_empty());
    }

    #[test]
    fn wan_is_the_bottleneck_to_etl() {
        let tb = PaperTestbed::build(FirewallMode::TemporarilyOpen);
        let path = tb.topo.route(tb.rwcp_sun, tb.etl_sun).unwrap();
        assert_eq!(
            tb.topo.path_bandwidth(&path),
            crate::calibration::WAN_BANDWIDTH
        );
    }

    #[test]
    fn table3_processor_counts() {
        let tb = PaperTestbed::build(FirewallMode::DenyInWithNxport);
        assert_eq!(System::Compas.processors(&tb), 8);
        assert_eq!(System::EtlO2k.processors(&tb), 8);
        assert_eq!(System::LocalArea.processors(&tb), 12);
        assert_eq!(System::WideArea.processors(&tb), 20);
        // Master of the multi-cluster systems is on RWCP-Sun.
        assert_eq!(System::WideArea.ranks(&tb)[0].host, tb.rwcp_sun);
        assert_eq!(System::LocalArea.ranks(&tb)[0].group, "RWCP-Sun");
    }

    #[test]
    fn render_mentions_everything() {
        let tb = PaperTestbed::build(FirewallMode::DenyInWithNxport);
        let r = tb.render();
        for name in ["rwcp-sun", "compas7", "rwcp-outer", "etl-o2k", "IMnet"] {
            // IMnet is implicit: check the WAN link by its node names.
            if name == "IMnet" {
                assert!(r.contains("rwcp-gw<->etl-sw"), "{r}");
            } else {
                assert!(r.contains(name), "missing {name} in:\n{r}");
            }
        }
    }
}
