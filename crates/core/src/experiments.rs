//! The experiment harness: everything needed to regenerate the paper's
//! tables, as library functions (the `wacs-bench` binaries only format
//! the output).
//!
//! * [`pingpong`] — Table 2: latency/bandwidth, direct vs. indirect;
//! * [`run_knapsack`] / [`sequential_baseline`] — Tables 4-6.

use crate::calibration as cal;
use crate::testbed::{FirewallMode, PaperTestbed, System, NXPORT, OUTER_CTRL_PORT};
use knapsack::instance::Instance;
use knapsack::sim::{MasterActor, Shared, SlaveActor};
use knapsack::{ParParams, RunResult};
use netsim::engine::{NetConfig, Simulator};
use netsim::prelude::*;
use nexus_proxy::sim::{NxClient, NxEvent, NxHandled, SimInnerServer, SimOuterServer, SimProxyEnv};
use std::sync::Arc;
use wacs_sync::Mutex;

/// Which Table 2 pair to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pair {
    /// RWCP-Sun ↔ COMPaS (the 100Base-T LAN pair).
    RwcpSunCompas,
    /// RWCP-Sun ↔ ETL-Sun (the 1.5 Mbps IMnet WAN pair).
    RwcpSunEtlSun,
}

impl Pair {
    pub fn name(self) -> &'static str {
        match self {
            Pair::RwcpSunCompas => "RWCP-Sun <-> COMPaS",
            Pair::RwcpSunEtlSun => "RWCP-Sun <-> ETL-Sun",
        }
    }
}

/// Communication mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Firewall temporarily opened; plain sockets.
    Direct,
    /// Deny-in firewall; traffic relayed by the Nexus Proxy.
    Indirect,
}

impl Mode {
    pub fn name(self) -> &'static str {
        match self {
            Mode::Direct => "direct",
            Mode::Indirect => "indirect",
        }
    }
}

/// One Table 2 measurement.
///
/// `one_way` is half the ping-pong round trip (the latency metric);
/// `bandwidth` is `size / forward one-way time`, matching the era's
/// one-directional stream measurements (the Nexus reply channel back
/// into a firewalled site crosses *two* relays, the forward channel
/// often one — Table 2's WAN row only makes sense with the forward
/// metric).
#[derive(Debug, Clone, Copy)]
pub struct PingPongResult {
    pub one_way: SimDuration,
    /// Forward one-way time (ping direction).
    pub forward: SimDuration,
    /// Payload bytes per second at this message size (forward).
    pub bandwidth: f64,
}

/// Nexus-style dual-channel ping-pong: the client sends pings on a
/// channel it opened to the server; pongs return on a *separate*
/// channel the server opened back to the client (startpoint/endpoint
/// channels are one-way, so this is how MPICH-G round trips actually
/// flow — and why the proxied WAN latency in Table 2 reflects 1.5
/// relay traversals per direction on average).
struct PingState {
    server_adv: Option<(NodeId, u16)>,
    client_adv: Option<(NodeId, u16)>,
    one_way: Option<SimDuration>,
    /// Server-side one-way samples of the ping (C1) direction — the
    /// era's bandwidth methodology measures the forward stream, not
    /// the round trip.
    c1_samples: Vec<SimDuration>,
}

type PingShared = Arc<Mutex<PingState>>;

/// Ping payload: the original send instant, carried end-to-end (the
/// engine's `sent_at` is re-stamped by each relay hop, so the origin
/// time must ride in the payload).
struct PingStamp(SimTime);

struct PpServer {
    nx: NxClient,
    shared: PingShared,
    size: u64,
    /// Channel back to the client (C2), once connected.
    pong_flow: Option<FlowId>,
    /// Pings that arrived before C2 connected.
    early: u32,
}

const POLL: u64 = 1;

impl PpServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.shared.lock().server_adv = Some(advertised);
                ctx.set_timer(SimDuration::from_millis(1), POLL);
            }
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                self.pong_flow = Some(flow);
                for _ in 0..self.early {
                    let size = self.size;
                    let _ = self.nx.send_data(ctx, flow, size, ());
                }
                self.early = 0;
            }
            NxHandled::Data(d) => {
                if let Some(stamp) = d.peek::<PingStamp>() {
                    self.shared.lock().c1_samples.push(ctx.now().since(stamp.0));
                }
                match self.pong_flow {
                    Some(flow) => {
                        let size = self.size;
                        let _ = self.nx.send_data(ctx, flow, size, ());
                    }
                    None => self.early += 1,
                }
            }
            _ => {}
        }
    }
}

impl Actor for PpServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().server_adv = Some(adv);
            ctx.set_timer(SimDuration::from_millis(1), POLL);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == POLL && self.pong_flow.is_none() {
            let adv = self.shared.lock().client_adv;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 1),
                None => ctx.set_timer(SimDuration::from_millis(1), POLL),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

struct PpClient {
    nx: NxClient,
    shared: PingShared,
    size: u64,
    warmup: u32,
    reps: u32,
    ping_flow: Option<FlowId>,
    pong_ready: bool,
    round: u32,
    t0: Option<SimTime>,
}

impl PpClient {
    fn maybe_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(flow) = self.ping_flow {
            if self.pong_ready && self.round == 0 {
                self.round = 1;
                let size = self.size;
                let stamp = PingStamp(ctx.now());
                let _ = self.nx.send_data(ctx, flow, size, stamp);
            }
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                // Proxied mode: the pong endpoint's rendezvous address
                // arrives asynchronously.
                self.shared.lock().client_adv = Some(advertised);
            }
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                self.ping_flow = Some(flow);
                self.maybe_start(ctx);
            }
            NxHandled::Event(NxEvent::Accepted { .. }) => {
                // The server's pong channel reached us.
                self.pong_ready = true;
                self.maybe_start(ctx);
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                ctx.stop_simulation();
            }
            NxHandled::Data(_) => {
                // One pong = one completed round.
                if self.round == self.warmup {
                    self.t0 = Some(ctx.now());
                }
                if self.round == self.warmup + self.reps {
                    // t0 was stored when `round` passed `warmup` above; a
                    // missing stamp is a harness bug worth an abort.
                    #[allow(clippy::expect_used)]
                    let elapsed = ctx.now().since(self.t0.expect("t0 set at warmup end")); // lint:allow(unwrap-panic)
                    let one_way = SimDuration(elapsed.nanos() / u64::from(2 * self.reps));
                    self.shared.lock().one_way = Some(one_way);
                    ctx.stop_simulation();
                    return;
                }
                self.round += 1;
                // Pings go out on C1; pongs come back on the separate C2
                // connection, so d.flow must NOT be used here. C1 exists
                // before any pong can arrive (maybe_start gates on it).
                #[allow(clippy::expect_used)]
                let flow = self.ping_flow.expect("pong before ping channel"); // lint:allow(unwrap-panic)
                let size = self.size;
                let stamp = PingStamp(ctx.now());
                let _ = self.nx.send_data(ctx, flow, size, stamp);
            }
            _ => {}
        }
    }
}

impl Actor for PpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Bind the pong endpoint first so the server can reach back.
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().client_adv = Some(adv);
        }
        ctx.set_timer(SimDuration::from_millis(1), POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == POLL && self.ping_flow.is_none() {
            let adv = self.shared.lock().server_adv;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 2),
                None => ctx.set_timer(SimDuration::from_millis(1), POLL),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Measure one Table 2 cell: one-way time and bandwidth for messages
/// of `size` bytes between `pair` under `mode`, with the calibrated
/// relay model.
pub fn pingpong(pair: Pair, mode: Mode, size: u64) -> PingPongResult {
    pingpong_with_model(pair, mode, size, cal::relay_model())
}

/// [`pingpong`] with an explicit relay cost model (the `ablation_relay`
/// sensitivity study).
pub fn pingpong_with_model(
    pair: Pair,
    mode: Mode,
    size: u64,
    model: nexus_proxy::sim::RelayModel,
) -> PingPongResult {
    let fw_mode = match mode {
        Mode::Direct => FirewallMode::TemporarilyOpen,
        Mode::Indirect => FirewallMode::DenyInWithNxport,
    };
    let tb = PaperTestbed::build(fw_mode);
    let (client_host, server_host) = match pair {
        Pair::RwcpSunCompas => (tb.rwcp_sun, tb.compas[0]),
        Pair::RwcpSunEtlSun => (tb.rwcp_sun, tb.etl_sun),
    };
    let registry = wacs_obs::Registry::new();
    let mut sim = Simulator::new(tb.topo.clone(), NetConfig::default(), 1);
    sim.install_obs(registry.clone());

    // Per-host proxy policy: RWCP hosts are proxied under Indirect;
    // ETL hosts never are (no firewall there).
    let env_for = |host: NodeId| -> SimProxyEnv {
        if mode == Mode::Indirect && tb.topo.site_of(host) == tb.rwcp_site {
            SimProxyEnv::via((tb.rwcp_outer, OUTER_CTRL_PORT))
        } else {
            SimProxyEnv::direct()
        }
    };

    if mode == Mode::Indirect {
        sim.spawn(
            tb.rwcp_outer,
            Box::new(
                SimOuterServer::new(OUTER_CTRL_PORT, Some((tb.rwcp_inner, NXPORT)), model)
                    .with_obs(&registry),
            ),
        );
        sim.spawn(
            tb.rwcp_inner,
            Box::new(SimInnerServer::new(NXPORT, model).with_obs(&registry)),
        );
    }

    let shared: PingShared = Arc::new(Mutex::new(PingState {
        server_adv: None,
        client_adv: None,
        one_way: None,
        c1_samples: Vec::new(),
    }));
    sim.spawn(
        server_host,
        Box::new(PpServer {
            nx: NxClient::new(env_for(server_host)).with_obs(&registry),
            shared: shared.clone(),
            size,
            pong_flow: None,
            early: 0,
        }),
    );
    sim.spawn(
        client_host,
        Box::new(PpClient {
            nx: NxClient::new(env_for(client_host)).with_obs(&registry),
            shared: shared.clone(),
            size,
            warmup: 2,
            reps: 8,
            ping_flow: None,
            pong_ready: false,
            round: 0,
            t0: None,
        }),
    );
    sim.run();
    let st = shared.lock();
    // The sim ran to completion above; a missing sample means the proxy
    // wiring for this scenario is broken, which should fail loudly.
    #[allow(clippy::expect_used)]
    let one_way = st
        .one_way
        .expect("ping-pong did not complete — check proxy wiring"); // lint:allow(unwrap-panic)
                                                                    // Average the measured (post-warmup) forward samples.
    let measured = &st.c1_samples[2.min(st.c1_samples.len())..];
    let forward = if measured.is_empty() {
        one_way
    } else {
        SimDuration(measured.iter().map(|d| d.nanos()).sum::<u64>() / measured.len() as u64)
    };
    PingPongResult {
        one_way,
        forward,
        bandwidth: size as f64 / forward.as_secs_f64(),
    }
}

/// Configuration of a Table 4 knapsack run.
#[derive(Debug, Clone)]
pub struct KnapsackRun {
    pub system: System,
    /// Use the Nexus Proxy (deny-in firewall). The paper's Table 3:
    /// local- and wide-area systems use "mpich Globus device which
    /// utilize the Nexus Proxy"; single-cluster systems use native
    /// MPIs (direct).
    pub use_proxy: bool,
    pub items: usize,
    pub params: ParParams,
    pub seed: u64,
}

impl KnapsackRun {
    /// The paper's configuration for a system.
    pub fn paper_default(system: System, items: usize) -> KnapsackRun {
        KnapsackRun {
            system,
            use_proxy: matches!(system, System::LocalArea | System::WideArea),
            items,
            params: cal::best_params(),
            seed: 2000,
        }
    }
}

/// Execute a knapsack run on the simulated testbed; returns the
/// gathered [`RunResult`] (virtual-time `elapsed_secs`).
pub fn run_knapsack(cfg: &KnapsackRun) -> RunResult {
    let fw_mode = if cfg.use_proxy {
        FirewallMode::DenyInWithNxport
    } else {
        FirewallMode::TemporarilyOpen
    };
    run_knapsack_with_mode(cfg, fw_mode)
}

/// [`run_knapsack`] under an explicit firewall mode — used by the
/// port-range ablation, where the firewall stays up but opens a
/// listener range instead of deploying the proxy.
pub fn run_knapsack_with_mode(cfg: &KnapsackRun, fw_mode: FirewallMode) -> RunResult {
    let tb = PaperTestbed::build(fw_mode);
    let ranks = cfg.system.ranks(&tb);
    let inst = Arc::new(Instance::no_pruning(cfg.items));
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(tb.topo.clone(), NetConfig::default(), cfg.seed);

    if cfg.use_proxy {
        sim.spawn(
            tb.rwcp_outer,
            Box::new(SimOuterServer::new(
                OUTER_CTRL_PORT,
                Some((tb.rwcp_inner, NXPORT)),
                cal::relay_model(),
            )),
        );
        sim.spawn(
            tb.rwcp_inner,
            Box::new(SimInnerServer::new(NXPORT, cal::relay_model())),
        );
    }

    let env_for = |host: NodeId| -> SimProxyEnv {
        if cfg.use_proxy && tb.topo.site_of(host) == tb.rwcp_site {
            SimProxyEnv::via((tb.rwcp_outer, OUTER_CTRL_PORT))
        } else {
            SimProxyEnv::direct()
        }
    };

    let master = &ranks[0];
    sim.spawn(
        master.host,
        Box::new(MasterActor::new(
            inst.clone(),
            cfg.params,
            env_for(master.host),
            shared.clone(),
            master.group.clone(),
            ranks.len() - 1,
        )),
    );
    for (i, place) in ranks.iter().enumerate().skip(1) {
        sim.spawn(
            place.host,
            Box::new(SlaveActor::new(
                inst.clone(),
                cfg.params,
                env_for(place.host),
                shared.clone(),
                i as u32,
                place.group.clone(),
            )),
        );
    }
    sim.run();
    let result = shared.lock().result.clone();
    // A finished sim always publishes a result; anything else is a bug
    // in the master/slave protocol and deserves the abort.
    #[allow(clippy::expect_used)]
    result.expect("knapsack simulation did not finish") // lint:allow(unwrap-panic)
}

/// Fault-injection configuration for a knapsack run: the scenarios the
/// fault ablation sweeps (WAN chunk loss, outer-proxy crash/restart).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the fault RNG (independent of the run's traffic seed, so
    /// the same workload can be replayed under different fault draws).
    pub seed: u64,
    /// Per-chunk drop probability on inter-site (WAN) links.
    pub wan_drop: f64,
    /// Crash the outer proxy server at this virtual offset (only
    /// meaningful for proxied runs).
    pub outer_crash_at: Option<SimDuration>,
    /// Revive the outer proxy this long after the crash.
    pub outer_restart_after: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 7,
            wan_drop: 0.0,
            outer_crash_at: None,
            outer_restart_after: SimDuration::from_millis(250),
        }
    }
}

/// Outcome of a knapsack run under fault injection: the workload result
/// plus the recovery-path counters the ablation reports.
#[derive(Debug, Clone)]
pub struct FaultRun {
    pub result: RunResult,
    /// Proxy-layer retries observed by the ranks (dial retries,
    /// endpoint re-binds after an outer restart).
    pub nx_retries: u64,
    /// Chunks lost to fault injection.
    pub chunks_dropped: u64,
    /// End-to-end retransmissions those losses triggered.
    pub retransmits: u64,
    pub actor_crashes: u64,
    pub actor_restarts: u64,
    /// Full metrics snapshot of the run: engine (`netsim.*`), proxy
    /// control plane (`proxy.*`) and workload (`knapsack.*`)
    /// instruments. Virtual-time only, so the same `(cfg, faults)`
    /// pair produces a byte-identical `to_json()`.
    pub obs: wacs_obs::RegistrySnapshot,
}

/// [`run_knapsack`] under a [`FaultConfig`]: same testbed and actors,
/// with the fault plan installed before the run. Deterministic — the
/// same `(cfg, faults)` pair always produces the same virtual-time
/// trace, retry counts included.
///
/// # Panics
/// Panics if the workload fails to complete within the one-hour
/// virtual-time horizon (an unsurvivable fault plan).
pub fn run_knapsack_with_faults(cfg: &KnapsackRun, faults: &FaultConfig) -> FaultRun {
    let fw_mode = if cfg.use_proxy {
        FirewallMode::DenyInWithNxport
    } else {
        FirewallMode::TemporarilyOpen
    };
    let tb = PaperTestbed::build(fw_mode);
    let ranks = cfg.system.ranks(&tb);
    let inst = Arc::new(Instance::no_pruning(cfg.items));
    let shared: Shared = Arc::default();
    let registry = shared.lock().obs.clone();
    let mut sim = Simulator::new(tb.topo.clone(), NetConfig::default(), cfg.seed);
    sim.install_obs(registry.clone());

    let mut outer_id = None;
    if cfg.use_proxy {
        outer_id = Some(
            sim.spawn(
                tb.rwcp_outer,
                Box::new(
                    SimOuterServer::new(
                        OUTER_CTRL_PORT,
                        Some((tb.rwcp_inner, NXPORT)),
                        cal::relay_model(),
                    )
                    .with_obs(&registry),
                ),
            ),
        );
        sim.spawn(
            tb.rwcp_inner,
            Box::new(SimInnerServer::new(NXPORT, cal::relay_model()).with_obs(&registry)),
        );
    }

    let env_for = |host: NodeId| -> SimProxyEnv {
        if cfg.use_proxy && tb.topo.site_of(host) == tb.rwcp_site {
            SimProxyEnv::via((tb.rwcp_outer, OUTER_CTRL_PORT))
        } else {
            SimProxyEnv::direct()
        }
    };

    let master = &ranks[0];
    sim.spawn(
        master.host,
        Box::new(MasterActor::new(
            inst.clone(),
            cfg.params,
            env_for(master.host),
            shared.clone(),
            master.group.clone(),
            ranks.len() - 1,
        )),
    );
    for (i, place) in ranks.iter().enumerate().skip(1) {
        sim.spawn(
            place.host,
            Box::new(SlaveActor::new(
                inst.clone(),
                cfg.params,
                env_for(place.host),
                shared.clone(),
                i as u32,
                place.group.clone(),
            )),
        );
    }

    let mut plan = FaultPlan::new(faults.seed);
    if faults.wan_drop > 0.0 {
        plan = plan.drop_messages(faults.wan_drop, true);
    }
    if let (Some(at), Some(outer)) = (faults.outer_crash_at, outer_id) {
        let inner = (tb.rwcp_inner, NXPORT);
        let restart_reg = registry.clone();
        plan = plan.crash_restart(outer, at, faults.outer_restart_after, move || {
            Box::new(
                SimOuterServer::new(OUTER_CTRL_PORT, Some(inner), cal::relay_model())
                    .with_obs(&restart_reg),
            )
        });
    }
    sim.install_faults(plan);

    // Virtual-time safety cap: with the retry layer in place a run
    // survives transient faults, but an unsurvivable plan (e.g. a
    // crash with no restart) would otherwise retry forever.
    sim.run_until(SimTime(SimDuration::from_secs(3600).nanos()));
    let stats = sim.stats();
    let (chunks_dropped, retransmits, actor_crashes, actor_restarts) = (
        stats.chunks_dropped,
        stats.retransmits,
        stats.actor_crashes,
        stats.actor_restarts,
    );
    let st = shared.lock();
    let result = st.result.clone();
    // With a survivable fault plan the retry layer always completes the
    // workload; running out the horizon means the plan was not.
    #[allow(clippy::expect_used)]
    let result = result.expect("knapsack run did not survive the fault plan"); // lint:allow(unwrap-panic)
    FaultRun {
        result,
        nx_retries: st.nx_retries,
        chunks_dropped,
        retransmits,
        actor_crashes,
        actor_restarts,
        obs: registry.snapshot(),
    }
}

/// Sequential baseline: "we ran the sequential version of the 0-1
/// knapsack problem on RWCP-Sun, and its execution time was used to
/// calculate the speedup." One master, zero slaves, on rwcp-sun.
pub fn sequential_baseline(items: usize) -> RunResult {
    let tb = PaperTestbed::build(FirewallMode::TemporarilyOpen);
    let inst = Arc::new(Instance::no_pruning(items));
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(tb.topo.clone(), NetConfig::default(), 0);
    sim.spawn(
        tb.rwcp_sun,
        Box::new(MasterActor::new(
            inst,
            cal::best_params(),
            SimProxyEnv::direct(),
            shared.clone(),
            "RWCP-Sun",
            0,
        )),
    );
    sim.run();
    let result = shared.lock().result.clone();
    #[allow(clippy::expect_used)]
    result.expect("sequential run did not finish") // lint:allow(unwrap-panic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_lan_latency_matches_table2_anchor() {
        let r = pingpong(Pair::RwcpSunCompas, Mode::Direct, 1);
        let ms = r.one_way.as_millis_f64();
        // Paper: 0.41 ms. Accept ±40%.
        assert!((0.25..0.6).contains(&ms), "direct LAN latency {ms} ms");
    }

    #[test]
    fn direct_wan_latency_matches_table2_anchor() {
        let r = pingpong(Pair::RwcpSunEtlSun, Mode::Direct, 1);
        let ms = r.one_way.as_millis_f64();
        // Paper: 3.9 ms. Accept ±30%.
        assert!((2.7..5.1).contains(&ms), "direct WAN latency {ms} ms");
    }

    #[test]
    fn indirect_latencies_match_table2_anchor() {
        let lan = pingpong(Pair::RwcpSunCompas, Mode::Indirect, 1)
            .one_way
            .as_millis_f64();
        let wan = pingpong(Pair::RwcpSunEtlSun, Mode::Indirect, 1)
            .one_way
            .as_millis_f64();
        // Paper: 25.0 and 25.1 ms. Accept a generous band; the *shape*
        // claims (x60 LAN, x6 WAN) are asserted in the workspace test.
        assert!((15.0..40.0).contains(&lan), "indirect LAN latency {lan} ms");
        assert!((15.0..40.0).contains(&wan), "indirect WAN latency {wan} ms");
    }

    #[test]
    fn wan_bulk_bandwidth_is_proxy_insensitive() {
        let direct = pingpong(Pair::RwcpSunEtlSun, Mode::Direct, 1 << 20).bandwidth;
        let indirect = pingpong(Pair::RwcpSunEtlSun, Mode::Indirect, 1 << 20).bandwidth;
        let drop = (direct - indirect) / direct;
        // "the overhead of the Nexus Proxy can be negligible when the
        // message size is large" — under 30% here.
        assert!(
            drop < 0.30,
            "bulk WAN drop {drop:.2} (direct {direct:.0}, indirect {indirect:.0})"
        );
    }

    #[test]
    fn quick_knapsack_runs_on_all_systems() {
        let seq = sequential_baseline(cal::QUICK_ITEMS);
        assert_eq!(
            seq.total_traversed(),
            Instance::full_tree_nodes(cal::QUICK_ITEMS)
        );
        for system in System::ALL {
            let rr = run_knapsack(&KnapsackRun::paper_default(system, cal::QUICK_ITEMS));
            assert_eq!(
                rr.total_traversed(),
                Instance::full_tree_nodes(cal::QUICK_ITEMS),
                "{}",
                system.name()
            );
            assert_eq!(
                rr.best,
                Instance::no_pruning(cal::QUICK_ITEMS).total_profit()
            );
            let speedup = seq.elapsed_secs / rr.elapsed_secs;
            assert!(
                speedup > 1.5,
                "{} speedup {speedup:.2} (seq {:.1}s, par {:.1}s)",
                system.name(),
                seq.elapsed_secs,
                rr.elapsed_secs
            );
        }
    }

    #[test]
    fn wide_area_proxy_overhead_is_small() {
        let with = run_knapsack(&KnapsackRun {
            use_proxy: true,
            ..KnapsackRun::paper_default(System::WideArea, cal::QUICK_ITEMS)
        });
        let without = run_knapsack(&KnapsackRun {
            use_proxy: false,
            ..KnapsackRun::paper_default(System::WideArea, cal::QUICK_ITEMS)
        });
        let overhead = (with.elapsed_secs - without.elapsed_secs) / without.elapsed_secs;
        // Paper: ≈3.5%. At the scaled-down test size communication is
        // relatively heavier; accept < 35% here (at the full
        // TABLE4_ITEMS size the harness lands near 5%).
        assert!(
            overhead < 0.35,
            "proxy overhead {overhead:.3} (with {:.2}s, without {:.2}s)",
            with.elapsed_secs,
            without.elapsed_secs
        );
    }
}
