//! `wacs-sync` — the workspace synchronization layer.
//!
//! The wide-area cluster is a lattice of cooperating daemons (Nexus
//! Proxy relays, RMF gatekeeper/allocator/Q servers, MPICH-G ranks),
//! each a bundle of threads sharing state behind locks. This crate is
//! the *only* sanctioned source of locking primitives in the
//! workspace (`xtask lint` enforces that) and provides three layers:
//!
//! * [`Mutex`]/[`RwLock`] — poison-transparent wrappers over
//!   `std::sync` with the ergonomic non-`Result` API the codebase
//!   standardised on. A panicking thread never wedges a daemon behind
//!   a poisoned lock: the data is assumed consistent because every
//!   critical section in this workspace is panic-free by lint policy.
//! * [`OrderedMutex`]/[`OrderedRwLock`] — instrumented locks that
//!   record per-thread acquisition stacks into a global lock-order
//!   graph and report ABBA inversions (cycles) the moment the second
//!   edge of a cycle appears, instead of the once-in-a-blue-moon
//!   wedge an inversion produces in production. See [`ordered`].
//! * [`channel`] — a bounded MPSC channel with timeout receive and
//!   queue introspection, replacing the previous external dependency.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod channel;
pub mod mutex;
pub mod ordered;

pub use channel::{bounded, Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};
pub use mutex::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use ordered::{
    lock_order, OrderedMutex, OrderedMutexGuard, OrderedRwLock, OrderedRwLockReadGuard,
    OrderedRwLockWriteGuard, Violation,
};
