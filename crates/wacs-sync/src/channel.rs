//! Bounded multi-producer single-consumer channel.
//!
//! Replaces the external channel dependency with exactly the surface
//! the workspace uses: blocking `send` with backpressure at `cap`
//! (struggling consumers throttle socket readers, as a real TCP
//! buffer would), `recv`/`try_recv`/`recv_timeout`, cheap `len`, and
//! disconnect detection on both ends.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when the receiver is gone; the
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error for [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcomes of [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now; senders still exist.
    Empty,
    /// Nothing queued and every sender has been dropped.
    Disconnected,
}

/// Outcomes of [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with nothing queued.
    Timeout,
    /// Nothing queued and every sender has been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded channel with capacity `cap` (≥ 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The producing half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Send, blocking while the queue is full. Errors (returning the
    /// message) once the receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.cap {
                st.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.senders -= 1;
        if st.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender(..)")
    }
}

/// The consuming half.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocking receive; errors once empty with no senders left.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match st.queue.pop_front() {
            Some(v) => {
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.receiver_alive = false;
        st.queue.clear();
        self.shared.not_full.notify_all();
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_both_ways() {
        let (tx, rx) = bounded::<u32>(2);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            tx.send(4).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert_eq!(rx.recv().unwrap(), 4);
        t.join().unwrap();
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn many_producers() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for p in 0..8 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 800);
    }
}
