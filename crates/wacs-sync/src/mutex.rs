//! Poison-transparent `Mutex`/`RwLock`.
//!
//! `std::sync` locks poison on panic, forcing every call site through
//! a `Result` that is almost always `unwrap()`ed — exactly the
//! pattern the workspace lint policy bans. These wrappers recover the
//! inner guard on poison instead: a panicking thread releases the
//! lock and the next acquirer proceeds. That matches the semantics
//! the codebase was written against (parking_lot-style) without an
//! external dependency.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking. Poison from a panicked holder is discarded.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire without blocking; `None` if the lock is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A readers-writer lock whose acquisitions never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std lock would now be poisoned; ours recovers the value.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
            assert!(l.try_write().is_none());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
