//! Lock-order (ABBA) deadlock detection.
//!
//! Classic wedge: thread 1 holds lock A and wants B while thread 2
//! holds B and wants A. It only bites when the two critical sections
//! overlap in time, which makes it nearly untestable directly. The
//! fix, borrowed from the kernel's lockdep: record the *order* in
//! which locks nest, independent of timing. Every time a thread
//! acquires lock B while holding lock A, the edge `A → B` is added to
//! a global directed graph; a cycle in that graph is a potential
//! deadlock even if no run ever wedged. Two non-overlapping critical
//! sections `lock(A); lock(B)` and `lock(B); lock(A)` are enough to
//! report the inversion.
//!
//! [`OrderedMutex`]/[`OrderedRwLock`] are drop-in instrumented locks;
//! each instance is a graph node labeled `name#id`. Edges are recorded
//! at *acquisition intent* (before blocking), so an inversion that is
//! actively deadlocking still gets reported by the second thread
//! before it blocks forever. Violations accumulate in a global list
//! that tests drain with [`lock_order::violations`] /
//! [`lock_order::check_clean`].
//!
//! Read acquisitions of an `OrderedRwLock` are treated like exclusive
//! ones: read-read cycles cannot wedge on their own, but any cycle
//! containing one writer can, so the conservative (lockdep-style)
//! approximation keeps the report sound at the cost of demanding a
//! single nesting order even for readers.

use crate::mutex::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A reported lock-order inversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Label of the lock held when the inverted acquisition happened.
    pub held: String,
    /// Label of the lock whose acquisition closed the cycle.
    pub acquiring: String,
    /// The cycle, as lock labels: `acquiring → … → held → acquiring`.
    pub cycle: Vec<String>,
    /// Name of the offending thread, when it has one.
    pub thread: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order inversion on thread '{}': acquiring {} while holding {} closes cycle {}",
            self.thread,
            self.acquiring,
            self.held,
            self.cycle.join(" -> ")
        )
    }
}

struct Registry {
    /// Directed nesting edges: `held id → acquired id`.
    edges: Mutex<HashMap<usize, HashSet<usize>>>,
    /// Node labels (`name#id`).
    labels: Mutex<HashMap<usize, String>>,
    /// Reported inversions, deduplicated by closing edge.
    violations: Mutex<Vec<Violation>>,
    reported: Mutex<HashSet<(usize, usize)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        edges: Mutex::new(HashMap::new()),
        labels: Mutex::new(HashMap::new()),
        violations: Mutex::new(Vec::new()),
        reported: Mutex::new(HashSet::new()),
    })
}

fn next_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Stack of ordered-lock ids this thread currently holds.
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Is there a path `from →* to` in the edge graph?  Returns the path
/// (node ids, starting at `from`, ending at `to`) when one exists.
fn find_path(edges: &HashMap<usize, HashSet<usize>>, from: usize, to: usize) -> Option<Vec<usize>> {
    let mut stack = vec![vec![from]];
    let mut seen = HashSet::new();
    seen.insert(from);
    while let Some(path) = stack.pop() {
        let last = *path.last()?;
        if last == to {
            return Some(path);
        }
        if let Some(nexts) = edges.get(&last) {
            for &n in nexts {
                if seen.insert(n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push(p);
                }
            }
        }
    }
    None
}

/// Record "this thread, holding everything on its stack, is about to
/// acquire `id`". Called before blocking on the real lock.
fn note_acquire_intent(id: usize) {
    let reg = registry();
    HELD.with(|held| {
        let held = held.borrow();
        for &h in held.iter() {
            if h == id {
                // Re-entrant acquisition of a non-reentrant lock:
                // guaranteed self-deadlock. Report as a 1-cycle.
                report(reg, h, id, vec![id, id]);
                continue;
            }
            let inserted = reg.edges.lock().entry(h).or_default().insert(id);
            if inserted {
                // New edge h → id. A pre-existing path id →* h now
                // closes a cycle id → … → h → id.
                let path = find_path(&reg.edges.lock(), id, h);
                if let Some(mut p) = path {
                    p.push(id);
                    report(reg, h, id, p);
                }
            }
        }
    });
}

fn report(reg: &Registry, held: usize, acquiring: usize, cycle_ids: Vec<usize>) {
    if !reg.reported.lock().insert((held, acquiring)) {
        return;
    }
    let labels = reg.labels.lock();
    let label = |id: usize| {
        labels
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("lock#{id}"))
    };
    let v = Violation {
        held: label(held),
        acquiring: label(acquiring),
        cycle: cycle_ids.into_iter().map(label).collect(),
        thread: std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string(),
    };
    reg.violations.lock().push(v);
}

fn note_acquired(id: usize) {
    HELD.with(|held| held.borrow_mut().push(id));
}

fn note_released(id: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == id) {
            held.remove(pos);
        }
    });
}

fn register_label(id: usize, name: &str) {
    registry().labels.lock().insert(id, format!("{name}#{id}"));
}

/// Inspection and test-support entry points for the global graph.
pub mod lock_order {
    use super::*;

    /// Snapshot of every inversion reported so far.
    pub fn violations() -> Vec<Violation> {
        registry().violations.lock().clone()
    }

    /// Violations whose cycle mentions a label containing `needle` —
    /// lets concurrent tests assert on their own locks only.
    pub fn violations_mentioning(needle: &str) -> Vec<Violation> {
        violations()
            .into_iter()
            .filter(|v| v.cycle.iter().any(|l| l.contains(needle)))
            .collect()
    }

    /// Number of nesting edges observed (diagnostics).
    pub fn edge_count() -> usize {
        registry().edges.lock().values().map(HashSet::len).sum()
    }

    /// Error (listing the inversions) if any lock whose label contains
    /// `needle` participates in a cycle. `needle = ""` checks all.
    pub fn check_clean(needle: &str) -> Result<(), Vec<Violation>> {
        let v = violations_mentioning(needle);
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }
}

/// A [`Mutex`] participating in global lock-order checking.
pub struct OrderedMutex<T: ?Sized> {
    id: usize,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// `name` labels this lock in violation reports; use a stable
    /// dotted path like `"rmf.allocator.entries"`.
    pub fn new(name: &str, value: T) -> OrderedMutex<T> {
        let id = next_id();
        register_label(id, name);
        OrderedMutex {
            id,
            inner: Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        note_acquire_intent(self.id);
        let guard = self.inner.lock();
        note_acquired(self.id);
        OrderedMutexGuard {
            id: self.id,
            inner: Some(guard),
        }
    }

    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        note_acquire_intent(self.id);
        let guard = self.inner.try_lock()?;
        note_acquired(self.id);
        Some(OrderedMutexGuard {
            id: self.id,
            inner: Some(guard),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("id", &self.id)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for [`OrderedMutex`].
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    id: usize,
    inner: Option<crate::mutex::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().unwrap_or_else(|| unreachable!())
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_deref_mut() {
            Some(v) => v,
            None => unreachable!(),
        }
    }
}

impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release before updating the held stack
        note_released(self.id);
    }
}

/// An [`RwLock`] participating in global lock-order checking.
pub struct OrderedRwLock<T: ?Sized> {
    id: usize,
    inner: crate::mutex::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    pub fn new(name: &str, value: T) -> OrderedRwLock<T> {
        let id = next_id();
        register_label(id, name);
        OrderedRwLock {
            id,
            inner: crate::mutex::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        note_acquire_intent(self.id);
        let guard = self.inner.read();
        note_acquired(self.id);
        OrderedRwLockReadGuard {
            id: self.id,
            inner: Some(guard),
        }
    }

    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        note_acquire_intent(self.id);
        let guard = self.inner.write();
        note_acquired(self.id);
        OrderedRwLockWriteGuard {
            id: self.id,
            inner: Some(guard),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// Shared-access RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    id: usize,
    inner: Option<crate::mutex::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().unwrap_or_else(|| unreachable!())
    }
}

impl<T: ?Sized> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        note_released(self.id);
    }
}

/// Exclusive-access RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    id: usize,
    inner: Option<crate::mutex::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().unwrap_or_else(|| unreachable!())
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_deref_mut() {
            Some(v) => v,
            None => unreachable!(),
        }
    }
}

impl<T: ?Sized> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        note_released(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// The acceptance-criteria case: an intentional ABBA inversion
    /// across two threads is reported as a cycle — without any actual
    /// deadlock, because the two nestings never overlap in time.
    #[test]
    fn abba_inversion_is_reported() {
        let a = Arc::new(OrderedMutex::new("abba-test.A", 0u32));
        let b = Arc::new(OrderedMutex::new("abba-test.B", 0u32));

        let (a1, b1) = (a.clone(), b.clone());
        thread::Builder::new()
            .name("abba-t1".into())
            .spawn(move || {
                let _ga = a1.lock();
                let _gb = b1.lock(); // order: A → B
            })
            .unwrap()
            .join()
            .unwrap();

        let (a2, b2) = (a.clone(), b.clone());
        thread::Builder::new()
            .name("abba-t2".into())
            .spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock(); // order: B → A — closes the cycle
            })
            .unwrap()
            .join()
            .unwrap();

        let v = lock_order::violations_mentioning("abba-test");
        assert_eq!(v.len(), 1, "expected exactly one inversion: {v:?}");
        assert!(v[0].cycle.len() >= 3);
        assert!(v[0].cycle.first() == v[0].cycle.last());
        assert!(lock_order::check_clean("abba-test").is_err());
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = Arc::new(OrderedMutex::new("clean-test.A", ()));
        let b = Arc::new(OrderedMutex::new("clean-test.B", ()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (a, b) = (a.clone(), b.clone());
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    let _ga = a.lock();
                    let _gb = b.lock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap_or(());
        }
        assert!(lock_order::check_clean("clean-test").is_ok());
        assert!(lock_order::edge_count() >= 1);
    }

    #[test]
    fn three_lock_cycle_detected() {
        let a = Arc::new(OrderedMutex::new("tri-test.A", ()));
        let b = Arc::new(OrderedMutex::new("tri-test.B", ()));
        let c = Arc::new(OrderedMutex::new("tri-test.C", ()));
        let nest = |x: Arc<OrderedMutex<()>>, y: Arc<OrderedMutex<()>>| {
            thread::spawn(move || {
                let _gx = x.lock();
                let _gy = y.lock();
            })
            .join()
            .unwrap_or(())
        };
        nest(a.clone(), b.clone()); // A → B
        nest(b.clone(), c.clone()); // B → C
        nest(c.clone(), a.clone()); // C → A: cycle through three locks
        let v = lock_order::violations_mentioning("tri-test");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].cycle.len(), 4); // A → B → C → A
    }

    #[test]
    fn reentrant_acquisition_flagged_via_try_lock() {
        let m = Arc::new(OrderedMutex::new("reent-test.M", ()));
        let _g = m.lock();
        // try_lock records the intent (and the self-cycle) but must
        // not block; it fails because the lock is held.
        assert!(m.try_lock().is_none());
        let v = lock_order::violations_mentioning("reent-test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cycle.len(), 2);
    }

    #[test]
    fn rwlock_inversion_detected_through_reads() {
        let a = Arc::new(OrderedRwLock::new("rw-test.A", ()));
        let b = Arc::new(OrderedMutex::new("rw-test.B", ()));
        let (a1, b1) = (a.clone(), b.clone());
        thread::spawn(move || {
            let _ga = a1.read();
            let _gb = b1.lock();
        })
        .join()
        .unwrap_or(());
        let (a2, b2) = (a.clone(), b.clone());
        thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.write();
        })
        .join()
        .unwrap_or(());
        assert_eq!(lock_order::violations_mentioning("rw-test").len(), 1);
    }

    #[test]
    fn guard_release_unwinds_held_stack() {
        let a = OrderedMutex::new("stack-test.A", 1);
        let b = OrderedMutex::new("stack-test.B", 2);
        {
            let _ga = a.lock();
        }
        {
            // A was released above, so this is NOT a nested
            // acquisition: no edge A → B may appear from this thread.
            let _gb = b.lock();
            let _ga = a.lock(); // edge B → A
        }
        {
            let _ga = a.lock();
            drop(_ga);
            let _gb = b.lock(); // still no A → B edge: A already out
        }
        assert!(lock_order::check_clean("stack-test").is_ok());
    }
}
