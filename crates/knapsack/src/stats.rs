//! Per-rank run statistics and the cluster-level summaries of the
//! paper's Tables 5 (steal counts) and 6 (traversed nodes).

/// Statistics one rank reports at the end of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStats {
    pub rank: u32,
    /// Logical host the rank ran on (keys the per-cluster grouping).
    pub host: String,
    /// Cluster/system label, e.g. "RWCP-Sun", "COMPaS", "ETL-O2K".
    pub group: String,
    /// Nodes popped from the stack (Table 6).
    pub traversed: u64,
    /// Steal requests issued (slaves) or served (master) — Table 5.
    pub steals: u64,
    /// Surplus node shipments sent back to the master.
    pub back_sends: u64,
    /// Best value this rank had seen when it finished.
    pub local_best: u64,
}

/// Result of a parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    pub best: u64,
    /// Wall (real runs) or virtual (simulated runs) seconds.
    pub elapsed_secs: f64,
    pub ranks: Vec<RankStats>,
}

/// Max/min/average triple for one group of ranks — one cell block of
/// Tables 5/6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSummary {
    pub max: u64,
    pub min: u64,
    pub avg: f64,
    pub count: usize,
}

impl RunResult {
    pub fn total_traversed(&self) -> u64 {
        self.ranks.iter().map(|r| r.traversed).sum()
    }

    pub fn master(&self) -> Option<&RankStats> {
        self.ranks.iter().find(|r| r.rank == 0)
    }

    /// Summarize a metric over the *slave* ranks of one group.
    pub fn group_summary(
        &self,
        group: &str,
        metric: impl Fn(&RankStats) -> u64,
    ) -> Option<GroupSummary> {
        let vals: Vec<u64> = self
            .ranks
            .iter()
            .filter(|r| r.rank != 0 && r.group == group)
            .map(metric)
            .collect();
        if vals.is_empty() {
            return None;
        }
        let max = vals.iter().copied().max().unwrap_or_default();
        let min = vals.iter().copied().min().unwrap_or_default();
        let avg = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
        Some(GroupSummary {
            max,
            min,
            avg,
            count: vals.len(),
        })
    }

    /// Distinct slave groups in rank order.
    pub fn groups(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.ranks {
            if r.rank != 0 && !out.contains(&r.group) {
                out.push(r.group.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rank: u32, group: &str, traversed: u64, steals: u64) -> RankStats {
        RankStats {
            rank,
            host: format!("h{rank}"),
            group: group.into(),
            traversed,
            steals,
            back_sends: 0,
            local_best: 0,
        }
    }

    #[test]
    fn group_summaries() {
        let rr = RunResult {
            best: 10,
            elapsed_secs: 1.0,
            ranks: vec![
                rs(0, "RWCP-Sun", 100, 50), // master: excluded from groups
                rs(1, "RWCP-Sun", 10, 5),
                rs(2, "COMPaS", 30, 9),
                rs(3, "COMPaS", 20, 3),
            ],
        };
        assert_eq!(rr.total_traversed(), 160);
        assert_eq!(rr.master().unwrap().steals, 50);
        let g = rr.group_summary("COMPaS", |r| r.traversed).unwrap();
        assert_eq!((g.max, g.min, g.count), (30, 20, 2));
        assert!((g.avg - 25.0).abs() < 1e-9);
        let s = rr.group_summary("COMPaS", |r| r.steals).unwrap();
        assert_eq!((s.max, s.min), (9, 3));
        assert!(rr.group_summary("ETL-O2K", |r| r.traversed).is_none());
        assert_eq!(
            rr.groups(),
            vec!["RWCP-Sun".to_string(), "COMPaS".to_string()]
        );
    }
}
