//! Parallel 0-1 knapsack: the paper's master-slave self-scheduling
//! algorithm over `gridmpi` (§4.3).
//!
//! * The master repeats the branch operation `interval` times, then
//!   services steal requests, sending `steal_unit` nodes from the top
//!   of its stack to the requesting slave.
//! * A slave branches until its stack empties, then sends a steal
//!   request; it sends back `back_unit` nodes when its stack grows
//!   past a threshold.
//!
//! "The algorithm is considered to be suitable for distributed
//! heterogeneous metacomputing environments since it performs dynamic
//! load balancing with low overhead."

use crate::instance::Instance;
use crate::node::{branch_once, BranchCounters, Node};
use crate::stats::{RankStats, RunResult};
use gridmpi::datatype::{pack_u64s, unpack_u64s};
use gridmpi::Comm;
use std::io;
use std::time::Instant;

pub const TAG_STEAL: i32 = 10;
pub const TAG_NODES: i32 = 11;
pub const TAG_BACK: i32 = 12;
pub const TAG_DONE: i32 = 13;
pub const TAG_STATS: i32 = 14;

/// Scheduling parameters (the paper's `interval`, `stealunit`,
/// `backunit`; they "varied … and took the best combination").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParParams {
    pub interval: u32,
    pub steal_unit: u32,
    pub back_unit: u32,
    /// Estimated *work* (in tree nodes) on a slave's stack beyond
    /// which it returns surplus nodes — the paper's "a slave sends
    /// back backunit nodes when the slave has too many nodes on the
    /// stack", measured in subtree-size estimate rather than raw
    /// stack length (raw length is bounded by the tree depth and
    /// cannot detect a hoarded near-root subtree; see DESIGN.md).
    /// `0` = automatic: 64 × `interval`.
    pub back_threshold_nodes: u64,
    pub prune: bool,
    /// Items are ratio-sorted (enables the tight greedy bound).
    pub sorted: bool,
}

impl Default for ParParams {
    fn default() -> Self {
        ParParams {
            interval: 1024,
            steal_unit: 4,
            back_unit: 16,
            back_threshold_nodes: 0,
            prune: false,
            sorted: false,
        }
    }
}

/// Resolve the automatic back-pressure threshold (estimated nodes).
pub fn effective_back_threshold(params: &ParParams) -> u64 {
    if params.back_threshold_nodes == 0 {
        64 * u64::from(params.interval)
    } else {
        params.back_threshold_nodes
    }
}

/// Estimated nodes remaining under one stack entry (full-subtree
/// upper bound: `2^(n - index)`; exact for the no-pruning instance,
/// an overestimate under pruning — conservative for back-pressure).
pub fn node_work_estimate(node: &Node, n: usize) -> u64 {
    let depth_left = n.saturating_sub(node.index as usize).min(62);
    1u64 << depth_left
}

/// Estimated work on a whole stack (saturating).
pub fn stack_work_estimate(stack: &[Node], n: usize) -> u64 {
    stack.iter().fold(0u64, |acc, nd| {
        acc.saturating_add(node_work_estimate(nd, n))
    })
}

/// Pick how many *bottom* (shallowest) nodes to return so the
/// remaining estimate drops to ~half the threshold, capped at
/// `back_unit` and never emptying the stack.
pub fn back_send_count(stack: &[Node], n: usize, threshold: u64, back_unit: u32) -> usize {
    let mut est = stack_work_estimate(stack, n);
    if est <= threshold {
        return 0;
    }
    let target = threshold / 2;
    let mut take = 0usize;
    let max_take = (back_unit as usize).min(stack.len().saturating_sub(1));
    while take < max_take && est > target {
        est = est.saturating_sub(node_work_estimate(&stack[take], n));
        take += 1;
    }
    take
}

fn encode_nodes(best: u64, nodes: &[Node]) -> Vec<u8> {
    let mut words = Vec::with_capacity(1 + nodes.len() * 3);
    words.push(best);
    for n in nodes {
        words.push(u64::from(n.index));
        words.push(n.value);
        words.push(n.capacity);
    }
    pack_u64s(&words)
}

fn decode_nodes(bytes: &[u8]) -> io::Result<(u64, Vec<Node>)> {
    let words = unpack_u64s(bytes)?;
    if words.is_empty() || (words.len() - 1) % 3 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed node shipment",
        ));
    }
    let best = words[0];
    let nodes = words[1..]
        .chunks_exact(3)
        .map(|c| Node {
            index: c[0] as u32,
            value: c[1],
            capacity: c[2],
        })
        .collect();
    Ok((best, nodes))
}

/// Run the parallel solver on this rank. Rank 0 is the master and
/// returns `Some(RunResult)`; slaves return `None`.
///
/// `group_of[r]` labels rank `r`'s cluster for the Table 5/6
/// summaries.
pub fn run(
    comm: &Comm,
    inst: &Instance,
    params: &ParParams,
    group_of: &[String],
) -> io::Result<Option<RunResult>> {
    assert_eq!(
        group_of.len(),
        comm.size() as usize,
        "one group label per rank"
    );
    if comm.rank() == 0 {
        master(comm, inst, params, group_of).map(Some)
    } else {
        slave(comm, inst, params)?;
        Ok(None)
    }
}

fn master(
    comm: &Comm,
    inst: &Instance,
    params: &ParParams,
    group_of: &[String],
) -> io::Result<RunResult> {
    let t0 = Instant::now();
    let nslaves = comm.size() as usize - 1;
    let mut stack = vec![Node::root(inst)];
    let mut best = 0u64;
    let mut counters = BranchCounters::default();
    let mut steals_served = 0u64;
    let mut pending: Vec<u32> = Vec::new();

    loop {
        // Branch `interval` times (or until the stack drains).
        let mut ops = 0;
        while ops < params.interval
            && branch_once(
                inst,
                &mut stack,
                &mut best,
                params.prune,
                params.sorted,
                &mut counters,
            )
        {
            ops += 1;
        }

        // Service arrived messages.
        while let Some((src, tag, payload)) = comm.try_recv(None, None)? {
            master_handle(src, tag, &payload, &mut best, &mut stack, &mut pending)?;
        }
        // Serve steal requests while nodes remain.
        while !pending.is_empty() && !stack.is_empty() {
            let slave = pending.remove(0);
            let take = (params.steal_unit as usize).min(stack.len());
            let at = stack.len() - take;
            let shipped: Vec<Node> = stack.split_off(at);
            comm.send(slave, TAG_NODES, &encode_nodes(best, &shipped))?;
            steals_served += 1;
        }

        if stack.is_empty() && ops == 0 {
            if pending.len() == nslaves {
                break; // everyone idle, nothing left anywhere
            }
            // Block until somebody reports (a steal request or surplus
            // nodes coming back).
            let (src, tag, payload) = comm.recv(None, None)?;
            master_handle(src, tag, &payload, &mut best, &mut stack, &mut pending)?;
        }
    }

    // Tell everyone to stop and collect their statistics.
    for r in 1..comm.size() {
        comm.send(r, TAG_DONE, &[])?;
    }
    let mut ranks = vec![RankStats {
        rank: 0,
        host: comm.host().to_string(),
        group: group_of[0].clone(),
        traversed: counters.traversed,
        steals: steals_served,
        back_sends: 0,
        local_best: best,
    }];
    for _ in 0..nslaves {
        let (src, _, payload) = comm.recv(None, Some(TAG_STATS))?;
        let words = unpack_u64s(&payload)?;
        if words.len() != 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed stats report",
            ));
        }
        best = best.max(words[3]);
        ranks.push(RankStats {
            rank: src,
            host: String::new(), // filled below from group map
            group: group_of[src as usize].clone(),
            traversed: words[0],
            steals: words[1],
            back_sends: words[2],
            local_best: words[3],
        });
    }
    ranks.sort_by_key(|r| r.rank);
    Ok(RunResult {
        best,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        ranks,
    })
}

fn master_handle(
    src: u32,
    tag: i32,
    payload: &[u8],
    best: &mut u64,
    stack: &mut Vec<Node>,
    pending: &mut Vec<u32>,
) -> io::Result<()> {
    match tag {
        TAG_STEAL => {
            let words = unpack_u64s(payload)?;
            if let Some(&b) = words.first() {
                *best = (*best).max(b);
            }
            pending.push(src);
        }
        TAG_BACK => {
            let (b, nodes) = decode_nodes(payload)?;
            *best = (*best).max(b);
            stack.extend(nodes);
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("master got unexpected tag {other}"),
            ))
        }
    }
    Ok(())
}

fn slave(comm: &Comm, inst: &Instance, params: &ParParams) -> io::Result<()> {
    let threshold = effective_back_threshold(params);
    let mut stack: Vec<Node> = Vec::new();
    let mut best = 0u64;
    let mut counters = BranchCounters::default();
    let mut steal_requests = 0u64;
    let mut back_sends = 0u64;

    comm.send(0, TAG_STEAL, &pack_u64s(&[best]))?;
    steal_requests += 1;

    loop {
        let (_, tag, payload) = comm.recv(Some(0), None)?;
        match tag {
            TAG_NODES => {
                let (b, nodes) = decode_nodes(&payload)?;
                best = best.max(b);
                stack.extend(nodes);
                // Work until dry.
                loop {
                    let mut ops = 0;
                    while ops < params.interval
                        && branch_once(
                            inst,
                            &mut stack,
                            &mut best,
                            params.prune,
                            params.sorted,
                            &mut counters,
                        )
                    {
                        ops += 1;
                    }
                    // Return the *bottom* (shallowest, largest-subtree)
                    // nodes when holding too much estimated work: this
                    // is what breaks up a hoarded near-root subtree.
                    let take = back_send_count(&stack, inst.n(), threshold, params.back_unit);
                    if take > 0 {
                        let surplus: Vec<Node> = stack.drain(..take).collect();
                        comm.send(0, TAG_BACK, &encode_nodes(best, &surplus))?;
                        back_sends += 1;
                    }
                    if stack.is_empty() {
                        break;
                    }
                }
                comm.send(0, TAG_STEAL, &pack_u64s(&[best]))?;
                steal_requests += 1;
            }
            TAG_DONE => {
                comm.send(
                    0,
                    TAG_STATS,
                    &pack_u64s(&[counters.traversed, steal_requests, back_sends, best]),
                )?;
                return Ok(());
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("slave got unexpected tag {other}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{self, SolveMode};
    use firewall::vnet::VNet;
    use gridmpi::{run_world, RankSpec};
    use nexus::NexusContext;
    use std::sync::Arc;

    fn flat_net(nhosts: usize) -> VNet {
        let net = VNet::new();
        let site = net.add_site("lab", None);
        for i in 0..nhosts {
            net.add_host(format!("h{i}"), site);
        }
        net
    }

    fn run_flat(nranks: usize, inst: Instance, params: ParParams) -> RunResult {
        let net = flat_net(nranks);
        let specs = (0..nranks)
            .map(|i| RankSpec::new(NexusContext::direct(net.clone(), format!("h{i}"))))
            .collect();
        let inst = Arc::new(inst);
        let groups: Arc<Vec<String>> =
            Arc::new((0..nranks).map(|i| format!("g{}", i % 2)).collect());
        let results = run_world(specs, move |comm| {
            run(comm, &inst, &params, &groups).unwrap()
        })
        .unwrap();
        results.into_iter().flatten().next().expect("master result")
    }

    #[test]
    fn work_estimate_and_back_send_count() {
        let n = 20;
        let deep = Node {
            index: 18,
            value: 0,
            capacity: 5,
        };
        let shallow = Node {
            index: 1,
            value: 0,
            capacity: 5,
        };
        assert_eq!(node_work_estimate(&deep, n), 4);
        assert_eq!(node_work_estimate(&shallow, n), 1 << 19);
        // A stack of deep nodes never triggers.
        let quiet = vec![deep; 10];
        assert_eq!(back_send_count(&quiet, n, 1000, 16), 0);
        // One hoarded shallow node triggers, is offered back (bottom
        // first), and the stack is never fully drained.
        let hoard = vec![shallow, deep, deep];
        let k = back_send_count(&hoard, n, 1000, 16);
        assert!(k >= 1, "hoard should trigger");
        assert!(k < hoard.len(), "never empty the stack");
        // back_unit caps the shipment.
        let many = vec![shallow; 8];
        assert!(back_send_count(&many, n, 1000, 3) <= 3);
        // Estimates saturate rather than overflow for huge depths.
        let huge = Node {
            index: 0,
            value: 0,
            capacity: 0,
        };
        assert!(stack_work_estimate(&[huge; 4], 80) >= 1 << 62);
    }

    #[test]
    fn node_shipment_roundtrip() {
        let nodes = vec![
            Node {
                index: 1,
                value: 2,
                capacity: 3,
            },
            Node {
                index: 4,
                value: 5,
                capacity: 6,
            },
        ];
        let (best, back) = decode_nodes(&encode_nodes(77, &nodes)).unwrap();
        assert_eq!(best, 77);
        assert_eq!(back, nodes);
        assert!(decode_nodes(&[0u8; 16]).is_err()); // 2 words: malformed
    }

    #[test]
    fn parallel_exhaustive_covers_entire_tree() {
        let n = 14;
        let inst = Instance::no_pruning(n);
        let rr = run_flat(
            4,
            inst.clone(),
            ParParams {
                interval: 64,
                steal_unit: 3,
                ..ParParams::default()
            },
        );
        assert_eq!(rr.best, inst.total_profit());
        // Every node traversed exactly once across all ranks.
        assert_eq!(rr.total_traversed(), Instance::full_tree_nodes(n));
        // Slaves actually participated.
        for r in &rr.ranks[1..] {
            assert!(r.steals >= 1, "{r:?}");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_pruned_instance() {
        let inst = Instance::uncorrelated(18, 60, 11).sorted_by_ratio();
        let (truth, _) = seq::solve(&inst, SolveMode::Prune { sorted: true });
        let rr = run_flat(
            3,
            inst,
            ParParams {
                interval: 128,
                steal_unit: 2,
                prune: true,
                sorted: true,
                ..ParParams::default()
            },
        );
        assert_eq!(rr.best, truth);
    }

    #[test]
    fn single_rank_degenerates_to_sequential() {
        let inst = Instance::no_pruning(10);
        let rr = run_flat(1, inst.clone(), ParParams::default());
        assert_eq!(rr.best, inst.total_profit());
        assert_eq!(rr.total_traversed(), Instance::full_tree_nodes(10));
    }

    #[test]
    fn back_pressure_path_exercised() {
        // Ship enough nodes per steal that a slave's stack exceeds the
        // (tiny) threshold, forcing the surplus-return path.
        let inst = Instance::no_pruning(16);
        let rr = run_flat(
            3,
            inst.clone(),
            ParParams {
                interval: 8,
                steal_unit: 6,
                back_unit: 2,
                back_threshold_nodes: 64,
                ..ParParams::default()
            },
        );
        assert_eq!(rr.best, inst.total_profit());
        assert_eq!(rr.total_traversed(), Instance::full_tree_nodes(16));
        let total_backs: u64 = rr.ranks.iter().map(|r| r.back_sends).sum();
        assert!(total_backs > 0, "expected surplus returns, got none");
    }

    #[test]
    fn many_ranks_small_tree_terminates() {
        // More slaves than work: most starve; termination must hold.
        let inst = Instance::no_pruning(4);
        let rr = run_flat(
            8,
            inst.clone(),
            ParParams {
                interval: 1,
                steal_unit: 1,
                ..ParParams::default()
            },
        );
        assert_eq!(rr.best, inst.total_profit());
        assert_eq!(rr.total_traversed(), Instance::full_tree_nodes(4));
    }
}
