//! Dynamic-programming ground truth: O(n·C) table, exact for the
//! capacities our tests use. Used only to validate the branch-and-bound
//! solvers (the paper's reference [10] catalogues both families).

use crate::instance::Instance;

/// Optimal value by DP over capacities `0..=C`.
///
/// Panics (via `assert!`) if the capacity is absurdly large for a
/// table (tests keep C·n under ~10^8).
pub fn solve(inst: &Instance) -> u64 {
    assert!(
        inst.capacity < 200_000_000,
        "DP capacity too large; use B&B"
    );
    let c = inst.capacity as usize;
    assert!(
        c.saturating_mul(inst.n().max(1)) < 200_000_000,
        "DP table too large; use B&B"
    );
    let mut table = vec![0u64; c + 1];
    for item in &inst.items {
        let w = item.weight as usize;
        if w > c {
            continue;
        }
        // Iterate downward so each item is used at most once.
        for cap in (w..=c).rev() {
            let candidate = table[cap - w] + item.profit;
            if candidate > table[cap] {
                table[cap] = candidate;
            }
        }
    }
    table[c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Item;

    fn inst(items: Vec<(u64, u64)>, capacity: u64) -> Instance {
        Instance {
            items: items
                .into_iter()
                .map(|(weight, profit)| Item { weight, profit })
                .collect(),
            capacity,
            name: "t".into(),
        }
    }

    #[test]
    fn textbook_example() {
        // Classic: items (w,p): (2,3) (3,4) (4,5) (5,6), C=5 → best 7.
        let i = inst(vec![(2, 3), (3, 4), (4, 5), (5, 6)], 5);
        assert_eq!(solve(&i), 7);
    }

    #[test]
    fn each_item_used_once() {
        // One item of weight 1: capacity 10 must not count it 10 times.
        let i = inst(vec![(1, 5)], 10);
        assert_eq!(solve(&i), 5);
    }

    #[test]
    fn zero_capacity() {
        let i = inst(vec![(1, 100)], 0);
        assert_eq!(solve(&i), 0);
    }

    #[test]
    fn item_heavier_than_capacity_skipped() {
        let i = inst(vec![(100, 999), (2, 3)], 10);
        assert_eq!(solve(&i), 3);
    }

    #[test]
    fn all_fit() {
        let i = inst(vec![(1, 2), (2, 3), (3, 4)], 6);
        assert_eq!(solve(&i), 9);
    }
}
