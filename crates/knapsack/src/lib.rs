//! `knapsack` — the paper's workload: 0-1 knapsack by branch-and-bound
//! with master-slave self-scheduling (§4.3-4.4).
//!
//! Layers:
//!
//! * [`instance`] — problem generators, including the paper's
//!   normalized no-pruning instance;
//! * [`node`] / [`seq`] — the branch operation and the sequential
//!   solver (the speedup baseline);
//! * [`dp`] — dynamic-programming ground truth for validation;
//! * [`par`] — the parallel algorithm over `gridmpi` (real threads and
//!   sockets, through the Nexus Proxy where configured);
//! * [`sim`] — the same algorithm as `netsim` actors in virtual time,
//!   which regenerates Tables 4-6;
//! * [`stats`] — per-rank statistics and the Tables 5/6 summaries;
//! * [`fileformat`] — the instance data file the master reads (staged
//!   via GASS in the RMF deployment).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod dp;
pub mod fileformat;
pub mod instance;
pub mod node;
pub mod par;
pub mod seq;
pub mod sim;
pub mod stats;

pub use instance::{Instance, Item};
pub use node::{branch_once, BranchCounters, Node};
pub use par::{run as par_run, ParParams};
pub use seq::{solve as seq_solve, SolveMode};
pub use stats::{GroupSummary, RankStats, RunResult};
