//! 0-1 knapsack instances.
//!
//! Generators cover the classes of Martello & Toth (the paper's
//! reference [10]) plus the paper's own *normalized* instance: "we used
//! such data as no branches were pruned, meaning the entire search
//! space is traced by processes" (§4.4) — which makes total work
//! deterministic and lets the experiment isolate scheduling behaviour.

use netsim::SimRng;

/// One item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    pub weight: u64,
    pub profit: u64,
}

/// A 0-1 knapsack instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    pub items: Vec<Item>,
    pub capacity: u64,
    pub name: String,
}

impl Instance {
    pub fn n(&self) -> usize {
        self.items.len()
    }

    pub fn total_weight(&self) -> u64 {
        self.items.iter().map(|i| i.weight).sum()
    }

    pub fn total_profit(&self) -> u64 {
        self.items.iter().map(|i| i.profit).sum()
    }

    /// The paper's normalized instance: every item fits (capacity =
    /// total weight), so with pruning disabled the full binary tree of
    /// `2^(n+1) - 1` nodes is traversed and the optimum is the total
    /// profit. The paper ran n = 50; scaled-down n keeps simulated
    /// runs tractable (documented in DESIGN.md §2.5).
    pub fn no_pruning(n: usize) -> Instance {
        let items = (0..n)
            .map(|i| Item {
                weight: 1,
                profit: 1 + (i as u64 % 7),
            })
            .collect::<Vec<_>>();
        let capacity = items.iter().map(|i| i.weight).sum();
        Instance {
            items,
            capacity,
            name: format!("no-pruning-{n}"),
        }
    }

    /// Expected traversed nodes for [`Instance::no_pruning`] with
    /// pruning disabled: the full binary tree.
    pub fn full_tree_nodes(n: usize) -> u64 {
        (1u64 << (n + 1)) - 1
    }

    /// Uncorrelated instance: weights and profits independent uniform
    /// in `[1, r]`, capacity = half the total weight.
    pub fn uncorrelated(n: usize, r: u64, seed: u64) -> Instance {
        let mut rng = SimRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| Item {
                weight: rng.range_inclusive(1, r),
                profit: rng.range_inclusive(1, r),
            })
            .collect::<Vec<_>>();
        let capacity = items.iter().map(|i| i.weight).sum::<u64>() / 2;
        Instance {
            items,
            capacity,
            name: format!("uncorrelated-{n}-{r}-{seed}"),
        }
    }

    /// Weakly correlated: profit within ±`r/10` of weight.
    pub fn weakly_correlated(n: usize, r: u64, seed: u64) -> Instance {
        let mut rng = SimRng::seed_from_u64(seed);
        let spread = (r / 10).max(1);
        let items = (0..n)
            .map(|_| {
                let weight = rng.range_inclusive(1, r);
                let lo = weight.saturating_sub(spread).max(1);
                let hi = weight + spread;
                Item {
                    weight,
                    profit: rng.range_inclusive(lo, hi),
                }
            })
            .collect::<Vec<_>>();
        let capacity = items.iter().map(|i| i.weight).sum::<u64>() / 2;
        Instance {
            items,
            capacity,
            name: format!("weak-corr-{n}-{r}-{seed}"),
        }
    }

    /// Strongly correlated: profit = weight + `r/10` (hard for B&B).
    pub fn strongly_correlated(n: usize, r: u64, seed: u64) -> Instance {
        let mut rng = SimRng::seed_from_u64(seed);
        let bump = (r / 10).max(1);
        let items = (0..n)
            .map(|_| {
                let weight = rng.range_inclusive(1, r);
                Item {
                    weight,
                    profit: weight + bump,
                }
            })
            .collect::<Vec<_>>();
        let capacity = items.iter().map(|i| i.weight).sum::<u64>() / 2;
        Instance {
            items,
            capacity,
            name: format!("strong-corr-{n}-{r}-{seed}"),
        }
    }

    /// Sort items by profit/weight ratio descending — a precondition
    /// for the greedy upper bound to be valid AND tight.
    pub fn sorted_by_ratio(mut self) -> Instance {
        self.items.sort_by(|a, b| {
            (b.profit as u128 * a.weight as u128).cmp(&(a.profit as u128 * b.weight as u128))
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pruning_everything_fits() {
        let inst = Instance::no_pruning(10);
        assert_eq!(inst.n(), 10);
        assert_eq!(inst.capacity, inst.total_weight());
        assert_eq!(Instance::full_tree_nodes(10), 2047);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = Instance::uncorrelated(20, 100, 7);
        let b = Instance::uncorrelated(20, 100, 7);
        let c = Instance::uncorrelated(20, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn capacity_is_binding_for_random_instances() {
        for inst in [
            Instance::uncorrelated(30, 50, 1),
            Instance::weakly_correlated(30, 50, 1),
            Instance::strongly_correlated(30, 50, 1),
        ] {
            assert!(inst.capacity < inst.total_weight());
            assert!(inst.capacity > 0);
            assert!(inst.items.iter().all(|i| i.weight >= 1 && i.profit >= 1));
        }
    }

    #[test]
    fn ratio_sort_is_descending() {
        let inst = Instance::uncorrelated(50, 100, 3).sorted_by_ratio();
        for w in inst.items.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(
                a.profit as u128 * b.weight as u128 >= b.profit as u128 * a.weight as u128,
                "{a:?} vs {b:?}"
            );
        }
    }
}
