//! Search-tree nodes and the branch operation.
//!
//! The paper (§4.3): "Each node of a search tree is represented by a
//! set of *index*, *value*, and *capacity*. Here, index is the index of
//! the first item which is not fixed yet, value is the sum of the
//! profits of items which are already fixed to 1 … The search tree is
//! represented by a stack onto which nodes are pushed."

use crate::instance::Instance;

/// A search-tree node. `capacity` is the *remaining* capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    pub index: u32,
    pub value: u64,
    pub capacity: u64,
}

impl Node {
    pub fn root(inst: &Instance) -> Node {
        Node {
            index: 0,
            value: 0,
            capacity: inst.capacity,
        }
    }

    /// Wire size of one node in the parallel protocol (3×u64 fields,
    /// big-endian — index widened for alignment).
    pub const WIRE_BYTES: u64 = 24;

    /// Greedy fractional upper bound on the best completion of this
    /// node. Requires items sorted by profit/weight ratio descending
    /// to be admissible *and* tight; on unsorted items it falls back
    /// to the (weaker, still admissible) remaining-profit sum.
    pub fn upper_bound(&self, inst: &Instance, sorted: bool) -> u64 {
        let mut bound = self.value;
        if !sorted {
            for it in &inst.items[self.index as usize..] {
                bound += it.profit;
            }
            return bound;
        }
        let mut cap = self.capacity;
        for it in &inst.items[self.index as usize..] {
            if it.weight <= cap {
                cap -= it.weight;
                bound += it.profit;
            } else {
                // Fractional fill of the critical item.
                bound += it.profit * cap / it.weight;
                break;
            }
        }
        bound
    }
}

/// Statistics of a branch run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BranchCounters {
    /// Nodes popped (the paper's "traversed nodes").
    pub traversed: u64,
    /// Nodes discarded by the bound test.
    pub pruned: u64,
    /// Complete assignments evaluated.
    pub leaves: u64,
}

/// The branch operation (§4.3): pop a node, check it, push its
/// children. `best` is updated in place. Returns `false` if the stack
/// was empty.
///
/// With `prune == false` the bound test is skipped — the paper's
/// normalized configuration where the entire space is traced.
#[inline]
pub fn branch_once(
    inst: &Instance,
    stack: &mut Vec<Node>,
    best: &mut u64,
    prune: bool,
    sorted: bool,
    counters: &mut BranchCounters,
) -> bool {
    let Some(node) = stack.pop() else {
        return false;
    };
    counters.traversed += 1;

    let n = inst.n() as u32;
    if node.index == n {
        counters.leaves += 1;
        if node.value > *best {
            *best = node.value;
        }
        return true;
    }
    if prune {
        if node.value > *best {
            // A partial assignment is itself a feasible solution
            // (remaining items set to 0).
            *best = node.value;
        }
        if node.upper_bound(inst, sorted) <= *best {
            counters.pruned += 1;
            return true;
        }
    }
    let item = inst.items[node.index as usize];
    // Exclude-child first so the include-child is explored first
    // (LIFO), which finds good solutions early.
    stack.push(Node {
        index: node.index + 1,
        value: node.value,
        capacity: node.capacity,
    });
    if item.weight <= node.capacity {
        stack.push(Node {
            index: node.index + 1,
            value: node.value + item.profit,
            capacity: node.capacity - item.weight,
        });
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_node() {
        let inst = Instance::no_pruning(5);
        let r = Node::root(&inst);
        assert_eq!(r.index, 0);
        assert_eq!(r.value, 0);
        assert_eq!(r.capacity, inst.capacity);
    }

    #[test]
    fn branch_generates_children() {
        let inst = Instance::no_pruning(3);
        let mut stack = vec![Node::root(&inst)];
        let mut best = 0;
        let mut c = BranchCounters::default();
        assert!(branch_once(
            &inst, &mut stack, &mut best, false, false, &mut c
        ));
        // Everything fits: two children.
        assert_eq!(stack.len(), 2);
        assert_eq!(c.traversed, 1);
        // Include-child on top.
        assert_eq!(stack.last().unwrap().value, inst.items[0].profit);
    }

    #[test]
    fn infeasible_include_is_not_pushed() {
        let inst = Instance {
            items: vec![crate::instance::Item {
                weight: 10,
                profit: 5,
            }],
            capacity: 3,
            name: "tight".into(),
        };
        let mut stack = vec![Node::root(&inst)];
        let mut best = 0;
        let mut c = BranchCounters::default();
        branch_once(&inst, &mut stack, &mut best, false, false, &mut c);
        assert_eq!(stack.len(), 1); // only the exclude child
    }

    #[test]
    fn empty_stack_returns_false() {
        let inst = Instance::no_pruning(2);
        let mut stack = Vec::new();
        let mut best = 0;
        let mut c = BranchCounters::default();
        assert!(!branch_once(
            &inst, &mut stack, &mut best, false, false, &mut c
        ));
        assert_eq!(c.traversed, 0);
    }

    #[test]
    fn bound_is_admissible_on_sorted_items() {
        // Upper bound at the root must be >= the optimum.
        let inst = Instance::uncorrelated(12, 30, 5).sorted_by_ratio();
        let root_bound = Node::root(&inst).upper_bound(&inst, true);
        let (opt, _) = crate::seq::solve(&inst, crate::seq::SolveMode::Prune { sorted: true });
        assert!(root_bound >= opt, "bound {root_bound} < opt {opt}");
    }

    #[test]
    fn leaf_updates_best() {
        let inst = Instance::no_pruning(1);
        let mut stack = vec![Node {
            index: 1,
            value: 42,
            capacity: 0,
        }];
        let mut best = 0;
        let mut c = BranchCounters::default();
        branch_once(&inst, &mut stack, &mut best, false, false, &mut c);
        assert_eq!(best, 42);
        assert_eq!(c.leaves, 1);
    }
}
