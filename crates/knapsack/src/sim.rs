//! Virtual-time master-slave knapsack: the same self-scheduling
//! algorithm as [`crate::par`], run as `netsim` actors so wide-area
//! timing (WAN latency, the Nexus Proxy relays, heterogeneous CPU
//! rates) shapes the execution — this is the driver behind the
//! paper's Tables 4-6.
//!
//! Compute is modelled by charging `ops / cpu_rate` virtual seconds
//! per branch batch; the search itself is executed for real, so node
//! counts, steal dynamics and the final optimum are exact, not
//! approximated.

use crate::instance::Instance;
use crate::node::{branch_once, BranchCounters, Node};
use crate::stats::{RankStats, RunResult};
use netsim::prelude::*;
use nexus_proxy::sim::{NxClient, NxEvent, NxHandled, SimProxyEnv};
use std::collections::HashMap;
use std::sync::Arc;
use wacs_sync::Mutex;

/// Abort on a protocol-wiring bug inside the simulation harness.
/// These are programming errors in the actor plumbing, never runtime
/// inputs, so the loud failure is deliberate; concentrating the abort
/// here keeps every call site clean under the no-panic lint.
#[allow(clippy::panic)]
fn sim_bug(what: &str, detail: impl std::fmt::Debug) -> ! {
    panic!("knapsack sim wiring bug: {what}: {detail:?}") // lint:allow(unwrap-panic)
}

/// Scheduling parameters (mirrors [`crate::par::ParParams`]).
pub type SimParams = crate::par::ParParams;

/// Typed messages of the simulated protocol.
#[derive(Debug, Clone)]
enum KMsg {
    Steal { best: u64 },
    Nodes { best: u64, nodes: Vec<Node> },
    Back { best: u64, nodes: Vec<Node> },
    Done,
    Stats(Box<RankStats>),
}

impl KMsg {
    /// Declared wire size (drives timing).
    fn wire_size(&self) -> u64 {
        match self {
            KMsg::Steal { .. } => 16,
            KMsg::Nodes { nodes, .. } | KMsg::Back { nodes, .. } => {
                16 + nodes.len() as u64 * Node::WIRE_BYTES
            }
            KMsg::Done => 8,
            KMsg::Stats(_) => 64,
        }
    }
}

/// Cross-actor coordination and result channel.
#[derive(Default)]
pub struct SimShared {
    master_addr: Option<(NodeId, u16)>,
    pub result: Option<RunResult>,
    /// Proxy-layer retries observed across all ranks (dial retries,
    /// re-binds) — nonzero only when faults actually bit.
    pub nx_retries: u64,
    /// Metrics registry shared by every actor in the run (and,
    /// via `Simulator::install_obs`, the network engine itself).
    /// Virtual-time measurements only, so snapshots are deterministic.
    pub obs: wacs_obs::Registry,
}

pub type Shared = Arc<Mutex<SimShared>>;

const WORK: u64 = 1;
const POLL: u64 = 2;

/// The master actor (rank 0).
pub struct MasterActor {
    inst: Arc<Instance>,
    params: SimParams,
    nx: NxClient,
    shared: Shared,
    group: String,
    nslaves: usize,
    stack: Vec<Node>,
    best: u64,
    counters: BranchCounters,
    steals_served: u64,
    pending: Vec<FlowId>,
    slave_flows: Vec<FlowId>,
    /// Batches shipped but not yet known-received, per flow. A slave
    /// only sends again after it has the batch (its Steal/Back traffic
    /// is FIFO-ordered behind our Nodes send), so any message from the
    /// flow confirms receipt; a `Closed` before that re-queues the
    /// batch (at-least-once — a little duplicate traversal beats a
    /// silently pruned subtree).
    outstanding: HashMap<FlowId, Vec<Node>>,
    /// A bind has succeeded at least once (distinguishes a
    /// misconfigured rig from a re-bind that failed because the relay
    /// stayed dead).
    ever_bound: bool,
    working: bool,
    finished: bool,
    reports: Vec<RankStats>,
    started_at: SimTime,
}

impl MasterActor {
    pub fn new(
        inst: Arc<Instance>,
        params: SimParams,
        env: SimProxyEnv,
        shared: Shared,
        group: impl Into<String>,
        nslaves: usize,
    ) -> Self {
        let stack = vec![Node::root(&inst)];
        let nx = NxClient::new(env).with_obs(&shared.lock().obs);
        MasterActor {
            inst,
            params,
            nx,
            shared,
            group: group.into(),
            nslaves,
            stack,
            best: 0,
            counters: BranchCounters::default(),
            steals_served: 0,
            pending: Vec::new(),
            slave_flows: Vec::new(),
            outstanding: HashMap::new(),
            ever_bound: false,
            working: false,
            finished: false,
            reports: Vec::new(),
            started_at: SimTime::ZERO,
        }
    }

    fn schedule_work(&mut self, ctx: &mut Ctx<'_>, after: SimDuration) {
        if !self.working {
            self.working = true;
            ctx.set_timer(after, WORK);
        }
    }

    fn serve_pending(&mut self, ctx: &mut Ctx<'_>) {
        while !self.pending.is_empty() && !self.stack.is_empty() {
            let flow = self.pending.remove(0);
            let take = (self.params.steal_unit as usize).min(self.stack.len());
            let at = self.stack.len() - take;
            let shipped: Vec<Node> = self.stack.split_off(at);
            let msg = KMsg::Nodes {
                best: self.best,
                nodes: shipped.clone(),
            };
            let size = msg.wire_size();
            if ctx.send(flow, size, msg).is_err() {
                // Flow already severed (its Closed event is still in
                // flight): keep the work; the slave will re-steal.
                self.stack.extend(shipped);
                continue;
            }
            self.outstanding.insert(flow, shipped);
            self.steals_served += 1;
        }
    }

    /// A slave's flow died (proxy crash, WAN loss). Re-queue any batch
    /// it may never have received and forget the flow; the slave will
    /// reconnect and resume stealing on a fresh flow.
    fn on_slave_gone(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        self.pending.retain(|&f| f != flow);
        self.slave_flows.retain(|&f| f != flow);
        if let Some(nodes) = self.outstanding.remove(&flow) {
            self.stack.extend(nodes);
        }
        if !self.stack.is_empty() {
            self.schedule_work(ctx, SimDuration::ZERO);
        }
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.finished
            || self.working
            || !self.stack.is_empty()
            || self.slave_flows.len() != self.nslaves
            || self.pending.len() != self.nslaves
        {
            return;
        }
        self.finished = true;
        for &f in &self.slave_flows.clone() {
            let msg = KMsg::Done;
            let size = msg.wire_size();
            let _ = ctx.send(f, size, msg);
        }
        if self.nslaves == 0 {
            self.publish(ctx);
        }
    }

    fn publish(&mut self, ctx: &mut Ctx<'_>) {
        let mut ranks = vec![RankStats {
            rank: 0,
            host: ctx.host_name().to_string(),
            group: self.group.clone(),
            traversed: self.counters.traversed,
            steals: self.steals_served,
            back_sends: 0,
            local_best: self.best,
        }];
        ranks.append(&mut self.reports);
        ranks.sort_by_key(|r| r.rank);
        let best = ranks.iter().map(|r| r.local_best).max().unwrap_or(0);
        let mut sh = self.shared.lock();
        sh.nx_retries += self.nx.retries();
        sh.result = Some(RunResult {
            best,
            elapsed_secs: ctx.now().since(self.started_at).as_secs_f64(),
            ranks,
        });
        drop(sh);
        ctx.stop_simulation();
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, d: Delivery) {
        let flow = d.flow;
        // Any message from a flow proves its last shipped batch landed.
        self.outstanding.remove(&flow);
        match d.expect::<KMsg>() {
            KMsg::Steal { best } => {
                self.best = self.best.max(best);
                if self.finished {
                    // A slave that lost its flow after the broadcast
                    // reconnected and is still asking; re-answer Done
                    // so it ships its Stats.
                    let msg = KMsg::Done;
                    let size = msg.wire_size();
                    let _ = ctx.send(flow, size, msg);
                    return;
                }
                self.pending.push(flow);
                self.serve_pending(ctx);
                self.maybe_finish(ctx);
            }
            KMsg::Back { best, nodes } => {
                self.best = self.best.max(best);
                self.stack.extend(nodes);
                self.serve_pending(ctx);
                if !self.stack.is_empty() {
                    self.schedule_work(ctx, SimDuration::ZERO);
                }
            }
            KMsg::Stats(rs) => {
                // A slave may resend Stats after a post-Done reconnect.
                if self.reports.iter().any(|r| r.rank == rs.rank) {
                    return;
                }
                self.reports.push(*rs);
                if self.reports.len() == self.nslaves {
                    self.publish(ctx);
                }
            }
            other => sim_bug("master got an unexpected message", other),
        }
    }

    /// Proxy-layer events can surface from either raw callback (a
    /// `Bound`/`ConnectRep` is itself a message), so both funnel here.
    fn handle_nx(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.ever_bound = true;
                self.shared.lock().master_addr = Some(advertised);
            }
            NxHandled::Event(NxEvent::BindLost) => {
                // Outer server crashed: the advertised rendezvous is
                // dead. Withdraw it so polling slaves wait for the
                // fresh Bound instead of dialing a stale port.
                self.shared.lock().master_addr = None;
            }
            NxHandled::Event(NxEvent::Accepted { flow }) => {
                self.slave_flows.push(flow);
            }
            // An *initial* bind failure is a rig bug; a failed
            // *re*-bind means the relay never came back — degrade
            // (keep any local work going) rather than panic.
            NxHandled::Event(NxEvent::BindFailed) if !self.ever_bound => {
                sim_bug("master bind failed", ());
            }
            NxHandled::Data(d) => self.handle_data(ctx, d),
            NxHandled::Flow(FlowEvent::Closed { flow, .. }) => self.on_slave_gone(ctx, flow),
            _ => {}
        }
    }
}

impl Actor for MasterActor {
    fn name(&self) -> &str {
        "knapsack-master"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.started_at = ctx.now();
        if let Some(adv) = self.nx.bind(ctx) {
            self.ever_bound = true;
            self.shared.lock().master_addr = Some(adv);
        }
        self.schedule_work(ctx, SimDuration::ZERO);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle_nx(ctx, h);
            return;
        }
        if token != WORK {
            return;
        }
        self.working = false;
        let rate = ctx.cpu_rate().max(1.0);
        let mut ops: u32 = 0;
        while ops < self.params.interval
            && branch_once(
                &self.inst,
                &mut self.stack,
                &mut self.best,
                self.params.prune,
                self.params.sorted,
                &mut self.counters,
            )
        {
            ops += 1;
        }
        self.serve_pending(ctx);
        if ops > 0 {
            let cost = SimDuration::from_secs_f64(f64::from(ops) / rate);
            self.schedule_work(ctx, cost);
        } else {
            self.maybe_finish(ctx);
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle_nx(ctx, h);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle_nx(ctx, h);
    }
}

/// A slave actor.
pub struct SlaveActor {
    inst: Arc<Instance>,
    params: SimParams,
    nx: NxClient,
    shared: Shared,
    rank: u32,
    group: String,
    stack: Vec<Node>,
    best: u64,
    counters: BranchCounters,
    steal_requests: u64,
    back_sends: u64,
    master: Option<FlowId>,
    /// A dial is in flight (don't start another from a POLL tick).
    connecting: bool,
    /// Copies of every node shipped Back on the current flow: if the
    /// flow dies we cannot know whether the master got them, so they
    /// are re-added locally (at-least-once). Cleared on `Done`.
    retained: Vec<Node>,
    /// `Done` received — only Stats remain to be (re-)sent.
    done: bool,
    working: bool,
    /// Steal request in flight since this virtual time (for the
    /// steal-RTT histogram; cleared when the Nodes batch lands).
    steal_sent: Option<SimTime>,
    /// Steal request → Nodes batch round trip, in virtual nanos.
    steal_rtt_ns: wacs_obs::Histogram,
}

impl SlaveActor {
    pub fn new(
        inst: Arc<Instance>,
        params: SimParams,
        env: SimProxyEnv,
        shared: Shared,
        rank: u32,
        group: impl Into<String>,
    ) -> Self {
        let (nx, steal_rtt_ns) = {
            let sh = shared.lock();
            (
                NxClient::new(env).with_obs(&sh.obs),
                sh.obs.histogram("knapsack.steal_rtt_ns"),
            )
        };
        SlaveActor {
            inst,
            params,
            nx,
            shared,
            rank,
            group: group.into(),
            stack: Vec::new(),
            best: 0,
            counters: BranchCounters::default(),
            steal_requests: 0,
            back_sends: 0,
            master: None,
            connecting: false,
            retained: Vec::new(),
            done: false,
            working: false,
            steal_sent: None,
            steal_rtt_ns,
        }
    }

    fn schedule_poll(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), POLL);
    }

    fn send_steal(&mut self, ctx: &mut Ctx<'_>) {
        let Some(flow) = self.master else {
            // Not connected (master restarting): re-poll for its
            // (possibly new) address instead of crashing the harness.
            self.schedule_poll(ctx);
            return;
        };
        let msg = KMsg::Steal { best: self.best };
        let size = msg.wire_size();
        if ctx.send(flow, size, msg).is_ok() {
            self.steal_sent = Some(ctx.now());
        }
        self.steal_requests += 1;
    }

    fn send_stats(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let rs = RankStats {
            rank: self.rank,
            host: ctx.host_name().to_string(),
            group: self.group.clone(),
            traversed: self.counters.traversed,
            steals: self.steal_requests,
            back_sends: self.back_sends,
            local_best: self.best,
        };
        let msg = KMsg::Stats(Box::new(rs));
        let size = msg.wire_size();
        let _ = ctx.send(flow, size, msg);
    }
}

impl Actor for SlaveActor {
    fn name(&self) -> &str {
        "knapsack-slave"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), POLL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle_nx(ctx, h);
            return;
        }
        match token {
            POLL => {
                if self.master.is_some() || self.connecting {
                    return;
                }
                let addr = self.shared.lock().master_addr;
                match addr {
                    Some(dst) => {
                        self.connecting = true;
                        self.nx.connect(ctx, dst, 0);
                    }
                    None => ctx.set_timer(SimDuration::from_millis(1), POLL),
                }
            }
            WORK => {
                self.working = false;
                let rate = ctx.cpu_rate().max(1.0);
                let mut ops: u32 = 0;
                while ops < self.params.interval
                    && branch_once(
                        &self.inst,
                        &mut self.stack,
                        &mut self.best,
                        self.params.prune,
                        self.params.sorted,
                        &mut self.counters,
                    )
                {
                    ops += 1;
                }
                let threshold = crate::par::effective_back_threshold(&self.params);
                // Return bottom (largest-subtree) nodes when holding
                // too much estimated work; see `par::slave`.
                let take = crate::par::back_send_count(
                    &self.stack,
                    self.inst.n(),
                    threshold,
                    self.params.back_unit,
                );
                // Only ship surplus while connected; during a master
                // outage the nodes stay on the local stack (correct,
                // just less balanced until the flow is back).
                if take > 0 {
                    if let Some(master) = self.master {
                        let surplus: Vec<Node> = self.stack.drain(..take).collect();
                        self.retained.extend(surplus.iter().cloned());
                        let msg = KMsg::Back {
                            best: self.best,
                            nodes: surplus,
                        };
                        let size = msg.wire_size();
                        let _ = ctx.send(master, size, msg);
                        self.back_sends += 1;
                    }
                }
                let cost = SimDuration::from_secs_f64(f64::from(ops.max(1)) / rate);
                if self.stack.is_empty() {
                    // Charge the last partial batch, then steal.
                    self.send_steal(ctx);
                } else {
                    self.working = true;
                    ctx.set_timer(cost, WORK);
                }
            }
            _ => {}
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle_nx(ctx, h);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle_nx(ctx, h);
    }
}

impl SlaveActor {
    /// See `MasterActor::handle_nx` for why both callbacks funnel here.
    fn handle_nx(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        let d = match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                self.connecting = false;
                self.master = Some(flow);
                if self.done {
                    // Reconnected after the broadcast: only our report
                    // is owed.
                    self.send_stats(ctx, flow);
                } else {
                    self.send_steal(ctx);
                }
                return;
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                // The relay chain (or the master) is down even after
                // the proxy layer's own retries. Fall back to polling:
                // a recovering master re-publishes a fresh address.
                self.connecting = false;
                self.schedule_poll(ctx);
                return;
            }
            NxHandled::Flow(FlowEvent::Closed { flow, .. }) if self.master == Some(flow) => {
                // The master flow died mid-run. Reclaim every node we
                // shipped Back on it (the master may never have seen
                // them), then rediscover the master and reconnect.
                self.master = None;
                // An in-flight steal died with the flow — its RTT
                // would span the outage, not a round trip.
                self.steal_sent = None;
                self.stack.append(&mut self.retained);
                if !self.stack.is_empty() && !self.working {
                    self.working = true;
                    ctx.set_timer(SimDuration::ZERO, WORK);
                }
                self.schedule_poll(ctx);
                return;
            }
            NxHandled::Data(d) => d,
            _ => return,
        };
        let master_flow = d.flow;
        match d.expect::<KMsg>() {
            KMsg::Nodes { best, nodes } => {
                if let Some(t0) = self.steal_sent.take() {
                    self.steal_rtt_ns.record(ctx.now().since(t0).nanos());
                }
                self.best = self.best.max(best);
                self.stack.extend(nodes);
                if !self.working {
                    self.working = true;
                    ctx.set_timer(SimDuration::ZERO, WORK);
                }
            }
            KMsg::Done => {
                if !self.done {
                    self.done = true;
                    self.retained.clear();
                    self.shared.lock().nx_retries += self.nx.retries();
                }
                self.send_stats(ctx, master_flow);
            }
            other => sim_bug("slave got an unexpected message", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::{NetConfig, Simulator};

    /// One open site, a master host and `k` slave hosts with the given
    /// relative CPU rates.
    fn run_sim(n_items: usize, slave_rates: &[f64], params: SimParams) -> RunResult {
        let mut topo = Topology::new();
        let site = topo.add_site("lab", None);
        let sw = topo.add_switch("sw", site);
        let master_host = topo.add_host_with_cpu("master", site, 2e5, 1);
        topo.add_link(master_host, sw, SimDuration::from_micros(100), 6.5e6);
        let mut slave_hosts = Vec::new();
        for (i, &rate) in slave_rates.iter().enumerate() {
            let h = topo.add_host_with_cpu(format!("slave{i}"), site, rate, 1);
            topo.add_link(h, sw, SimDuration::from_micros(100), 6.5e6);
            slave_hosts.push(h);
        }
        let inst = Arc::new(Instance::no_pruning(n_items));
        let shared: Shared = Arc::default();
        let mut sim = Simulator::new(topo, NetConfig::default(), 42);
        sim.spawn(
            master_host,
            Box::new(MasterActor::new(
                inst.clone(),
                params,
                SimProxyEnv::direct(),
                shared.clone(),
                "Master",
                slave_rates.len(),
            )),
        );
        for (i, &h) in slave_hosts.iter().enumerate() {
            sim.spawn(
                h,
                Box::new(SlaveActor::new(
                    inst.clone(),
                    params,
                    SimProxyEnv::direct(),
                    shared.clone(),
                    (i + 1) as u32,
                    "Slaves",
                )),
            );
        }
        sim.run();
        let result = shared.lock().result.clone();
        result.expect("simulation did not produce a result")
    }

    fn fast_params() -> SimParams {
        SimParams {
            interval: 256,
            steal_unit: 8,
            ..SimParams::default()
        }
    }

    /// The paper's regime: work-per-steal must dwarf communication
    /// latency, which held on 2000-era CPUs. 2e5 nodes/s approximates
    /// that balance at our scaled-down tree sizes.
    const ERA_RATE: f64 = 2e5;

    #[test]
    fn sim_covers_entire_tree_and_finds_optimum() {
        let n = 12;
        let rr = run_sim(n, &[ERA_RATE, ERA_RATE], fast_params());
        let inst = Instance::no_pruning(n);
        assert_eq!(rr.best, inst.total_profit());
        assert_eq!(rr.total_traversed(), Instance::full_tree_nodes(n));
        assert!(rr.elapsed_secs > 0.0);
    }

    #[test]
    fn more_slaves_run_faster() {
        let n = 20;
        let t1 = run_sim(n, &[ERA_RATE], fast_params()).elapsed_secs;
        let t4 = run_sim(n, &[ERA_RATE; 4], fast_params()).elapsed_secs;
        assert!(
            t4 < t1 * 0.65,
            "4 slaves ({t4:.3}s) should beat 1 slave ({t1:.3}s)"
        );
    }

    #[test]
    fn equal_slaves_get_balanced_work() {
        let rr = run_sim(20, &[ERA_RATE; 4], fast_params());
        let counts: Vec<u64> = rr
            .ranks
            .iter()
            .filter(|r| r.rank != 0)
            .map(|r| r.traversed)
            .collect();
        let (mx, mn) = (*counts.iter().max().unwrap(), *counts.iter().min().unwrap());
        assert!(
            mx as f64 / (mn.max(1) as f64) < 5.0,
            "imbalanced: {counts:?}"
        );
    }

    #[test]
    fn heterogeneous_rates_balance_dynamically() {
        // A 4x faster slave should both traverse more nodes and steal
        // more often — self-scheduling adapts without static
        // partitioning.
        let rr = run_sim(20, &[4.0 * ERA_RATE, ERA_RATE], fast_params());
        let fast = rr.ranks.iter().find(|r| r.host == "slave0").unwrap();
        let slow = rr.ranks.iter().find(|r| r.host == "slave1").unwrap();
        assert!(
            fast.traversed > slow.traversed,
            "faster slave should do more work: {} vs {}",
            fast.traversed,
            slow.traversed
        );
        assert!(fast.steals >= slow.steals);
        // And the heterogeneous pair beats the homogeneous-slow pair.
        let slow_pair = run_sim(20, &[ERA_RATE, ERA_RATE], fast_params());
        assert!(rr.elapsed_secs < slow_pair.elapsed_secs);
    }

    #[test]
    fn master_with_no_slaves_solves_alone() {
        let rr = run_sim(10, &[], fast_params());
        assert_eq!(rr.best, Instance::no_pruning(10).total_profit());
        assert_eq!(rr.total_traversed(), Instance::full_tree_nodes(10));
    }

    #[test]
    fn deterministic_virtual_time() {
        let a = run_sim(12, &[1e6, 2e6], fast_params());
        let b = run_sim(12, &[1e6, 2e6], fast_params());
        assert_eq!(a.elapsed_secs, b.elapsed_secs);
        assert_eq!(a.ranks, b.ranks);
    }
}
