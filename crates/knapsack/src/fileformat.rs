//! Instance file format.
//!
//! "A master reads a data file and pushes a root node onto the stack"
//! (§4.3) — and in the Globus deployment that data file arrives via
//! GASS staging. The format is the classic knapsack text layout:
//!
//! ```text
//! # comments and blank lines ignored
//! <n> <capacity>
//! <weight> <profit>     # n lines, one item each
//! ```

use crate::instance::{Instance, Item};
use std::fmt::Write as _;
use std::io;

fn bad(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("instance file line {line_no}: {msg}"),
    )
}

/// Serialize an instance to the text format.
pub fn write_instance(inst: &Instance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", inst.name);
    let _ = writeln!(out, "{} {}", inst.n(), inst.capacity);
    for it in &inst.items {
        let _ = writeln!(out, "{} {}", it.weight, it.profit);
    }
    out
}

/// Parse the text format. The instance name is taken from a leading
/// `# name` comment if present.
pub fn read_instance(text: &str) -> io::Result<Instance> {
    let mut name = String::from("unnamed");
    let mut header: Option<(usize, u64)> = None;
    let mut items: Vec<Item> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(c) = line.strip_prefix('#') {
            if header.is_none() && name == "unnamed" && !c.trim().is_empty() {
                name = c.trim().to_string();
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(bad(line_no, "expected exactly two numbers"));
        };
        match header {
            None => {
                let n: usize = a.parse().map_err(|_| bad(line_no, "bad item count"))?;
                let cap: u64 = b.parse().map_err(|_| bad(line_no, "bad capacity"))?;
                if n > 1_000_000 {
                    return Err(bad(line_no, "absurd item count"));
                }
                header = Some((n, cap));
            }
            Some((n, _)) => {
                if items.len() == n {
                    return Err(bad(line_no, "more items than declared"));
                }
                let weight: u64 = a.parse().map_err(|_| bad(line_no, "bad weight"))?;
                let profit: u64 = b.parse().map_err(|_| bad(line_no, "bad profit"))?;
                if weight == 0 {
                    return Err(bad(line_no, "zero-weight item"));
                }
                items.push(Item { weight, profit });
            }
        }
    }
    let (n, capacity) = header.ok_or_else(|| bad(0, "empty file"))?;
    if items.len() != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared {n} items, found {}", items.len()),
        ));
    }
    Ok(Instance {
        items,
        capacity,
        name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let inst = Instance::uncorrelated(20, 50, 9);
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# my instance\n\n2 10\n# an item\n3 4\n\n5 6\n";
        let inst = read_instance(text).unwrap();
        assert_eq!(inst.name, "my instance");
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.capacity, 10);
        assert_eq!(
            inst.items[1],
            Item {
                weight: 5,
                profit: 6
            }
        );
    }

    #[test]
    fn errors() {
        assert!(read_instance("").is_err());
        assert!(read_instance("2 10\n1 1\n").is_err()); // too few items
        assert!(read_instance("1 10\n1 1\n2 2\n").is_err()); // too many
        assert!(read_instance("x 10\n").is_err());
        assert!(read_instance("1 10\n0 5\n").is_err()); // zero weight
        assert!(read_instance("1 10\n1 2 3\n").is_err()); // three columns
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Write/read round trips on random instances.
    #[test]
    fn random_instances_roundtrip() {
        let mut r = test_rng(0xf11e);
        for _ in 0..60 {
            let n = 1 + (r() % 40) as usize;
            let range = 1 + r() % 99;
            let inst = Instance::weakly_correlated(n, range, r());
            let back = read_instance(&write_instance(&inst)).unwrap();
            assert_eq!(back, inst);
        }
    }

    /// The parser is total: printable noise (with newlines) never
    /// panics it.
    #[test]
    fn parser_total_on_random_text() {
        let mut r = test_rng(0x7e47);
        for _ in 0..1000 {
            let len = (r() % 256) as usize;
            let text: String = (0..len)
                .map(|_| {
                    if r().is_multiple_of(8) {
                        '\n'
                    } else {
                        (0x20 + (r() % 95) as u8) as char
                    }
                })
                .collect();
            let _ = read_instance(&text);
        }
    }
}
