//! Sequential stack-based branch-and-bound — the baseline the paper
//! runs on RWCP-Sun to compute speedups.

use crate::instance::Instance;
use crate::node::{branch_once, BranchCounters, Node};

/// Whether and how to prune.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// No bound test: the entire space is traced (the paper's
    /// normalized configuration).
    Exhaustive,
    /// Bound test on. `sorted` asserts items are ratio-sorted so the
    /// greedy fractional bound applies.
    Prune { sorted: bool },
}

/// Solve sequentially; returns `(optimal value, counters)`.
pub fn solve(inst: &Instance, mode: SolveMode) -> (u64, BranchCounters) {
    let (prune, sorted) = match mode {
        SolveMode::Exhaustive => (false, false),
        SolveMode::Prune { sorted } => (true, sorted),
    };
    let mut stack = Vec::with_capacity(inst.n() + 1);
    stack.push(Node::root(inst));
    let mut best = 0u64;
    let mut counters = BranchCounters::default();
    while branch_once(inst, &mut stack, &mut best, prune, sorted, &mut counters) {}
    (best, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;

    #[test]
    fn exhaustive_traverses_full_tree_on_normalized_instance() {
        for n in [1usize, 4, 10, 14] {
            let inst = Instance::no_pruning(n);
            let (best, c) = solve(&inst, SolveMode::Exhaustive);
            assert_eq!(c.traversed, Instance::full_tree_nodes(n), "n={n}");
            assert_eq!(best, inst.total_profit(), "n={n}");
            assert_eq!(c.pruned, 0);
            assert_eq!(c.leaves, 1u64 << n);
        }
    }

    #[test]
    fn pruning_agrees_with_exhaustive() {
        for seed in 0..5 {
            let inst = Instance::uncorrelated(16, 40, seed).sorted_by_ratio();
            let (a, ca) = solve(&inst, SolveMode::Exhaustive);
            let (b, cb) = solve(&inst, SolveMode::Prune { sorted: true });
            assert_eq!(a, b, "seed {seed}");
            assert!(cb.traversed <= ca.traversed, "pruning should not add work");
        }
    }

    #[test]
    fn agrees_with_dp_ground_truth() {
        for seed in 0..8 {
            let inst = Instance::weakly_correlated(14, 25, seed).sorted_by_ratio();
            let dp_opt = dp::solve(&inst);
            let (bb_opt, _) = solve(&inst, SolveMode::Prune { sorted: true });
            assert_eq!(bb_opt, dp_opt, "seed {seed}");
        }
    }

    #[test]
    fn trivial_instances() {
        let empty = Instance {
            items: vec![],
            capacity: 10,
            name: "empty".into(),
        };
        assert_eq!(solve(&empty, SolveMode::Exhaustive).0, 0);

        let nothing_fits = Instance {
            items: vec![
                crate::instance::Item {
                    weight: 99,
                    profit: 5
                };
                4
            ],
            capacity: 1,
            name: "tight".into(),
        };
        assert_eq!(solve(&nothing_fits, SolveMode::Exhaustive).0, 0);
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// B&B (both modes) equals DP on random instances — the core
    /// correctness property.
    #[test]
    fn bb_equals_dp_on_random_instances() {
        let mut r = test_rng(0xb0b);
        for _ in 0..60 {
            let n = 1 + (r() % 11) as usize;
            let range = 1 + r() % 39;
            let seed = r();
            let inst = Instance::uncorrelated(n, range, seed).sorted_by_ratio();
            let truth = dp::solve(&inst);
            let (a, _) = solve(&inst, SolveMode::Exhaustive);
            let (b, _) = solve(&inst, SolveMode::Prune { sorted: true });
            assert_eq!(a, truth, "exhaustive vs dp on {}", inst.name);
            assert_eq!(b, truth, "pruned vs dp on {}", inst.name);
        }
    }
}
