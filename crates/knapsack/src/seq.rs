//! Sequential stack-based branch-and-bound — the baseline the paper
//! runs on RWCP-Sun to compute speedups.

use crate::instance::Instance;
use crate::node::{branch_once, BranchCounters, Node};

/// Whether and how to prune.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// No bound test: the entire space is traced (the paper's
    /// normalized configuration).
    Exhaustive,
    /// Bound test on. `sorted` asserts items are ratio-sorted so the
    /// greedy fractional bound applies.
    Prune { sorted: bool },
}

/// Solve sequentially; returns `(optimal value, counters)`.
pub fn solve(inst: &Instance, mode: SolveMode) -> (u64, BranchCounters) {
    let (prune, sorted) = match mode {
        SolveMode::Exhaustive => (false, false),
        SolveMode::Prune { sorted } => (true, sorted),
    };
    let mut stack = Vec::with_capacity(inst.n() + 1);
    stack.push(Node::root(inst));
    let mut best = 0u64;
    let mut counters = BranchCounters::default();
    while branch_once(inst, &mut stack, &mut best, prune, sorted, &mut counters) {}
    (best, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;

    #[test]
    fn exhaustive_traverses_full_tree_on_normalized_instance() {
        for n in [1usize, 4, 10, 14] {
            let inst = Instance::no_pruning(n);
            let (best, c) = solve(&inst, SolveMode::Exhaustive);
            assert_eq!(c.traversed, Instance::full_tree_nodes(n), "n={n}");
            assert_eq!(best, inst.total_profit(), "n={n}");
            assert_eq!(c.pruned, 0);
            assert_eq!(c.leaves, 1u64 << n);
        }
    }

    #[test]
    fn pruning_agrees_with_exhaustive() {
        for seed in 0..5 {
            let inst = Instance::uncorrelated(16, 40, seed).sorted_by_ratio();
            let (a, ca) = solve(&inst, SolveMode::Exhaustive);
            let (b, cb) = solve(&inst, SolveMode::Prune { sorted: true });
            assert_eq!(a, b, "seed {seed}");
            assert!(cb.traversed <= ca.traversed, "pruning should not add work");
        }
    }

    #[test]
    fn agrees_with_dp_ground_truth() {
        for seed in 0..8 {
            let inst = Instance::weakly_correlated(14, 25, seed).sorted_by_ratio();
            let dp_opt = dp::solve(&inst);
            let (bb_opt, _) = solve(&inst, SolveMode::Prune { sorted: true });
            assert_eq!(bb_opt, dp_opt, "seed {seed}");
        }
    }

    #[test]
    fn trivial_instances() {
        let empty = Instance {
            items: vec![],
            capacity: 10,
            name: "empty".into(),
        };
        assert_eq!(solve(&empty, SolveMode::Exhaustive).0, 0);

        let nothing_fits = Instance {
            items: vec![crate::instance::Item { weight: 99, profit: 5 }; 4],
            capacity: 1,
            name: "tight".into(),
        };
        assert_eq!(solve(&nothing_fits, SolveMode::Exhaustive).0, 0);
    }

    proptest::proptest! {
        /// B&B (both modes) equals DP on random instances — the core
        /// correctness property.
        #[test]
        fn prop_bb_equals_dp(
            n in 1usize..12,
            r in 1u64..40,
            seed in proptest::num::u64::ANY,
        ) {
            let inst = Instance::uncorrelated(n, r, seed).sorted_by_ratio();
            let truth = dp::solve(&inst);
            let (a, _) = solve(&inst, SolveMode::Exhaustive);
            let (b, _) = solve(&inst, SolveMode::Prune { sorted: true });
            proptest::prop_assert_eq!(a, truth);
            proptest::prop_assert_eq!(b, truth);
        }
    }
}
