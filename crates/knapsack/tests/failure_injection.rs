//! Failure injection for the simulated wide-area knapsack: what
//! happens when infrastructure dies *permanently* or the firewall
//! flips mid-run. Since the retry/backoff layer, survivors keep
//! probing for the lost piece (bounded-backoff dials, address
//! re-polls), so the event queue no longer drains — the invariant is
//! that the run degrades observably (severed flows, no result) and
//! the virtual clock stays bounded by the caller's horizon without a
//! panic or wall-clock livelock. Recovery from *transient* failures
//! (crash + restart) is covered by `netsim::fault` and the
//! `fault_recovery` integration suite.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::Policy;
use knapsack::instance::Instance;
use knapsack::sim::{MasterActor, Shared, SlaveActor};
use knapsack::ParParams;
use netsim::engine::{NetConfig, Simulator};
use netsim::prelude::*;
use nexus_proxy::sim::{SimInnerServer, SimOuterServer, SimProxyEnv};
use std::sync::Arc;

const CTRL: u16 = 5678;
const NXPORT: u16 = 911;

struct Rig {
    sim: Simulator,
    shared: Shared,
    outer_id: netsim::actor::ActorId,
    inner_id: netsim::actor::ActorId,
    rwcp_site: SiteId,
}

/// Firewalled master + proxied slaves inside; two slaves outside.
fn rig(items: usize) -> Rig {
    let mut topo = Topology::new();
    let rwcp = topo.add_site("rwcp", None);
    let dmz = topo.add_site("dmz", None);
    let etl = topo.add_site("etl", None);
    let master_h = topo.add_host_with_cpu("master", rwcp, 2e5, 1);
    let in1 = topo.add_host_with_cpu("in1", rwcp, 2e5, 1);
    let inner_h = topo.add_host("inner", rwcp);
    let sw = topo.add_switch("sw", rwcp);
    let gw = topo.add_switch("gw", dmz);
    let outer_h = topo.add_host("outer", dmz);
    let esw = topo.add_switch("esw", etl);
    let e1 = topo.add_host_with_cpu("e1", etl, 2e5, 1);
    let e2 = topo.add_host_with_cpu("e2", etl, 2e5, 1);
    let us = SimDuration::from_micros;
    for h in [master_h, in1, inner_h] {
        topo.add_link(h, sw, us(100), 7e6);
    }
    topo.add_link(sw, gw, us(100), 7e6);
    topo.add_link(outer_h, gw, us(100), 7e6);
    topo.add_link(gw, esw, SimDuration::from_millis(3), 170e3);
    for h in [e1, e2] {
        topo.add_link(h, esw, us(100), 7e6);
    }
    topo.sites[rwcp.0 as usize].policy =
        Some(Policy::typical_with_nxport("rwcp", inner_h.0, NXPORT));

    let inst = Arc::new(Instance::no_pruning(items));
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(topo, NetConfig::default(), 5);
    let model = nexus_proxy::sim::RelayModel::default();
    let outer_id = sim.spawn(
        outer_h,
        Box::new(SimOuterServer::new(CTRL, Some((inner_h, NXPORT)), model)),
    );
    let inner_id = sim.spawn(inner_h, Box::new(SimInnerServer::new(NXPORT, model)));
    let env = SimProxyEnv::via((outer_h, CTRL));
    let params = ParParams {
        interval: 256,
        steal_unit: 8,
        ..ParParams::default()
    };
    sim.spawn(
        master_h,
        Box::new(MasterActor::new(
            inst.clone(),
            params,
            env,
            shared.clone(),
            "RWCP",
            3,
        )),
    );
    sim.spawn(
        in1,
        Box::new(SlaveActor::new(
            inst.clone(),
            params,
            env,
            shared.clone(),
            1,
            "RWCP",
        )),
    );
    for (i, h) in [e1, e2].into_iter().enumerate() {
        sim.spawn(
            h,
            Box::new(SlaveActor::new(
                inst.clone(),
                params,
                SimProxyEnv::direct(),
                shared.clone(),
                (i + 2) as u32,
                "ETL",
            )),
        );
    }
    Rig {
        sim,
        shared,
        outer_id,
        inner_id,
        rwcp_site: rwcp,
    }
}

#[test]
fn baseline_rig_completes() {
    let mut r = rig(16);
    r.sim.run();
    let result = r.shared.lock().result.clone().expect("run should finish");
    assert_eq!(result.total_traversed(), Instance::full_tree_nodes(16));
    assert_eq!(result.ranks.len(), 4);
}

#[test]
fn outer_server_death_severs_the_cluster_without_hanging() {
    let mut r = rig(20);
    // Let the cluster form and work a little.
    r.sim.run_until(SimTime(SimDuration::from_secs(2).nanos()));
    let flows_before = r.sim.stats().flows_closed;
    r.sim.kill_actor(r.outer_id);
    // Survivors retry forever (the relay never comes back), so the
    // clock runs to the horizon — but the run cannot produce a result
    // and every relayed flow must have been reset.
    let horizon = SimTime(SimDuration::from_secs(30).nanos());
    let end = r.sim.run_until(horizon);
    assert!(end <= horizon, "clock must stay bounded by the horizon");
    assert!(
        r.shared.lock().result.is_none(),
        "no result without the relay"
    );
    assert!(
        r.sim.stats().flows_closed > flows_before,
        "relayed flows should have been reset"
    );
}

#[test]
fn inner_server_death_severs_inside_ranks() {
    let mut r = rig(20);
    r.sim.run_until(SimTime(SimDuration::from_secs(2).nanos()));
    r.sim.kill_actor(r.inner_id);
    let horizon = SimTime(SimDuration::from_secs(30).nanos());
    let end = r.sim.run_until(horizon);
    assert!(end <= horizon);
    assert!(r.shared.lock().result.is_none());
}

#[test]
fn firewall_hard_reset_mid_run_kills_relayed_traffic() {
    let mut r = rig(20);
    r.sim.run_until(SimTime(SimDuration::from_secs(2).nanos()));
    // Slam the firewall shut (deny everything, flush conntrack): even
    // the nxport hole closes, so outer→inner legs die on next use.
    let site = r.rwcp_site;
    let fw = r.sim.firewall_mut(site).unwrap();
    fw.reload(Policy::deny_based("rwcp-lockdown"));
    fw.flush_conntrack();
    let horizon = SimTime(SimDuration::from_secs(30).nanos());
    let end = r.sim.run_until(horizon);
    assert!(end <= horizon);
    assert!(r.shared.lock().result.is_none());
    // The audit log recorded the drops.
    let dropped = r.sim.firewall(site).unwrap().audit().dropped();
    assert!(dropped > 0, "lockdown should have dropped packets");
}
