//! Property tests on simulator invariants: conservation (every sent
//! message is delivered exactly once on open topologies), per-flow
//! FIFO ordering, routing sanity on random topologies, and run
//! determinism under arbitrary parameters.
//!
//! Cases come from a seeded [`SimRng`] stream, so the sweep is
//! deterministic and reproducible offline.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netsim::prelude::*;
use std::sync::Arc;
use wacs_sync::Mutex;

/// Random connected topology: `n` hosts hung off a random tree of
/// switches; returns (topo, hosts).
fn random_topology(
    n_hosts: usize,
    n_switches: usize,
    edges_extra: &[(usize, usize)],
    lat_us: &[u64],
) -> (Topology, Vec<NodeId>) {
    let mut topo = Topology::new();
    let site = topo.add_site("world", None);
    let switches: Vec<NodeId> = (0..n_switches.max(1))
        .map(|i| topo.add_switch(format!("s{i}"), site))
        .collect();
    // Tree over switches.
    for i in 1..switches.len() {
        let parent = (i - 1) / 2;
        let lat = SimDuration::from_micros(lat_us[i % lat_us.len()].clamp(10, 5000));
        topo.add_link(switches[i], switches[parent], lat, 5e6);
    }
    // Extra cross edges (may create cycles; Dijkstra must cope).
    for &(a, b) in edges_extra {
        let (a, b) = (a % switches.len(), b % switches.len());
        if a != b && topo.route(switches[a], switches[b]).map(|p| p.len()) != Some(1) {
            topo.add_link(
                switches[a],
                switches[b],
                SimDuration::from_micros(lat_us[(a + b) % lat_us.len()].clamp(10, 5000)),
                5e6,
            );
        }
    }
    let hosts: Vec<NodeId> = (0..n_hosts)
        .map(|i| {
            let h = topo.add_host(format!("h{i}"), site);
            let sw = switches[i % switches.len()];
            topo.add_link(
                h,
                sw,
                SimDuration::from_micros(lat_us[i % lat_us.len()].clamp(10, 5000)),
                8e6,
            );
            h
        })
        .collect();
    (topo, hosts)
}

/// `len` random values in `[lo, hi)`.
fn vec_in(rng: &mut SimRng, len: usize, lo: u64, hi: u64) -> Vec<u64> {
    (0..len).map(|_| lo + rng.below(hi - lo)).collect()
}

type Recorded = Arc<Mutex<Vec<u64>>>;

/// Receiver that records the sequence numbers it gets.
struct Sink {
    port: u16,
    got: Recorded,
    expect: u64,
}

impl Actor for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.port).unwrap();
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let seq = msg.expect::<u64>();
        self.got.lock().push(seq);
        if self.got.lock().len() as u64 == self.expect {
            ctx.stop_simulation();
        }
    }
}

/// Sender that fires `count` sequenced messages with varying sizes.
struct Source {
    dst: (NodeId, u16),
    count: u64,
    sizes: Vec<u64>,
}

impl Actor for Source {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.connect(self.dst, 0);
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        if let FlowEvent::Connected { flow, .. } = ev {
            for i in 0..self.count {
                let size = self.sizes[(i as usize) % self.sizes.len()];
                ctx.send(flow, size, i).unwrap();
            }
        }
    }
}

/// Conservation + FIFO: `count` messages on one flow arrive exactly
/// once each, in order, regardless of topology shape, latencies and
/// message sizes.
#[test]
fn delivery_conservation_and_fifo() {
    let mut rng = SimRng::seed_from_u64(0xf1f0);
    for _ in 0..24 {
        let n_switches = 1 + rng.below(5) as usize;
        let n_extra = rng.below(4) as usize;
        let extra: Vec<(usize, usize)> = (0..n_extra)
            .map(|_| (rng.below(6) as usize, rng.below(6) as usize))
            .collect();
        let n_lat = 1 + rng.below(3) as usize;
        let lat_us = vec_in(&mut rng, n_lat, 10, 5000);
        let n_sizes = 1 + rng.below(4) as usize;
        let sizes = vec_in(&mut rng, n_sizes, 0, 100_000);
        let count = 1 + rng.below(39);
        let seed = rng.next_u64();

        let (topo, hosts) = random_topology(2, n_switches, &extra, &lat_us);
        let mut sim = Simulator::new(topo, NetConfig::default(), seed);
        let got: Recorded = Arc::default();
        sim.spawn(
            hosts[1],
            Box::new(Sink {
                port: 7,
                got: got.clone(),
                expect: count,
            }),
        );
        sim.spawn(
            hosts[0],
            Box::new(Source {
                dst: (hosts[1], 7),
                count,
                sizes,
            }),
        );
        sim.run();
        let got = got.lock().clone();
        assert_eq!(
            got.len() as u64,
            count,
            "every message delivered exactly once"
        );
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "per-flow FIFO: {got:?}"
        );
        assert_eq!(sim.stats().messages_sent, count);
        assert_eq!(sim.stats().messages_delivered, count);
    }
}

/// Routing sanity on random graphs: routes exist between all host
/// pairs, are symmetric in cost, and path_nodes endpoints match.
#[test]
fn routing_sane() {
    let mut rng = SimRng::seed_from_u64(0x40d7e);
    for _ in 0..24 {
        let n_hosts = 2 + rng.below(4) as usize;
        let n_switches = 1 + rng.below(6) as usize;
        let n_extra = rng.below(5) as usize;
        let extra: Vec<(usize, usize)> = (0..n_extra)
            .map(|_| (rng.below(7) as usize, rng.below(7) as usize))
            .collect();
        let n_lat = 1 + rng.below(3) as usize;
        let lat_us = vec_in(&mut rng, n_lat, 10, 5000);

        let (topo, hosts) = random_topology(n_hosts, n_switches, &extra, &lat_us);
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let p = topo.route(a, b).expect("connected topology");
                let nodes = topo.path_nodes(a, &p);
                assert_eq!(nodes[0], a);
                assert_eq!(*nodes.last().unwrap(), b);
                // Cost symmetry (links are duplex with equal latency).
                let q = topo.route(b, a).unwrap();
                assert_eq!(topo.path_latency(&p), topo.path_latency(&q));
            }
        }
    }
}

/// Determinism: identical inputs produce identical event counts,
/// final times, and delivery sequences.
#[test]
fn runs_are_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xde7e);
    for _ in 0..24 {
        let n_switches = 1 + rng.below(4) as usize;
        let n_lat = 1 + rng.below(2) as usize;
        let lat_us = vec_in(&mut rng, n_lat, 10, 3000);
        let n_sizes = 1 + rng.below(3) as usize;
        let sizes = vec_in(&mut rng, n_sizes, 0, 50_000);
        let count = 1 + rng.below(19);
        let seed = rng.next_u64();

        let run = || {
            let (topo, hosts) = random_topology(2, n_switches, &[], &lat_us);
            let mut sim = Simulator::new(topo, NetConfig::default(), seed);
            let got: Recorded = Arc::default();
            sim.spawn(
                hosts[1],
                Box::new(Sink {
                    port: 7,
                    got: got.clone(),
                    expect: count,
                }),
            );
            sim.spawn(
                hosts[0],
                Box::new(Source {
                    dst: (hosts[1], 7),
                    count,
                    sizes: sizes.clone(),
                }),
            );
            let end = sim.run();
            let events = sim.stats().events_processed;
            let seqs = got.lock().clone();
            (end, events, seqs)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
