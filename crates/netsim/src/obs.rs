//! Engine-side observability: pre-resolved `wacs-obs` handles.
//!
//! The engine records on the hot path (every chunk), so the handles are
//! looked up once at [`NetObs::new`] rather than by name per event.
//! All values derive from `SimTime` — never the wall clock — keeping
//! registry snapshots byte-identical across same-seed runs.
//!
//! Metric names:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `netsim.delivery_latency_ns` | histogram | message send→deliver, per delivery |
//! | `netsim.hop_transit_ns` | histogram | one chunk crossing one link (queue+ser+latency) |
//! | `netsim.link.<id>.transit_ns` | histogram | same, split per link |
//! | `netsim.fault.chunks_dropped` | counter | chunks lost to injection |
//! | `netsim.fault.retransmits` | counter | end-to-end retransmissions |
//! | `netsim.fault.messages_lost` | counter | retransmit budget exhausted |
//! | `netsim.fault.actor_crashes` | counter | actors killed by injection |
//! | `netsim.fault.actor_restarts` | counter | actors revived by injection |

use crate::time::{SimDuration, SimTime};
use crate::topology::LinkId;
use wacs_obs::{Counter, Histogram, Registry};

/// Handles into a [`Registry`], resolved once per installation.
pub struct NetObs {
    registry: Registry,
    delivery_latency: Histogram,
    hop_transit: Histogram,
    link_transit: Vec<Histogram>,
    chunks_dropped: Counter,
    retransmits: Counter,
    messages_lost: Counter,
    actor_crashes: Counter,
    actor_restarts: Counter,
}

impl NetObs {
    /// Resolve handles for a topology with `links` links.
    #[must_use]
    pub fn new(registry: Registry, links: usize) -> Self {
        let link_transit = (0..links)
            .map(|i| registry.histogram(&format!("netsim.link.{i}.transit_ns")))
            .collect();
        NetObs {
            delivery_latency: registry.histogram("netsim.delivery_latency_ns"),
            hop_transit: registry.histogram("netsim.hop_transit_ns"),
            link_transit,
            chunks_dropped: registry.counter("netsim.fault.chunks_dropped"),
            retransmits: registry.counter("netsim.fault.retransmits"),
            messages_lost: registry.counter("netsim.fault.messages_lost"),
            actor_crashes: registry.counter("netsim.fault.actor_crashes"),
            actor_restarts: registry.counter("netsim.fault.actor_restarts"),
            registry,
        }
    }

    /// The backing registry (shared; cloning it aliases the table).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn record_delivery(&self, sent_at: SimTime, now: SimTime) {
        self.delivery_latency.record(now.since(sent_at).nanos());
    }

    pub(crate) fn record_hop(&self, link: LinkId, transit: SimDuration) {
        self.hop_transit.record(transit.nanos());
        if let Some(h) = self.link_transit.get(link.0 as usize) {
            h.record(transit.nanos());
        }
    }

    pub(crate) fn chunk_dropped(&self) {
        self.chunks_dropped.inc();
    }

    pub(crate) fn retransmit(&self) {
        self.retransmits.inc();
    }

    pub(crate) fn message_lost(&self) {
        self.messages_lost.inc();
    }

    pub(crate) fn actor_crashed(&self) {
        self.actor_crashes.inc();
    }

    pub(crate) fn actor_restarted(&self) {
        self.actor_restarts.inc();
    }
}
