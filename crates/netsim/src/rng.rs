//! Deterministic randomness for simulations.
//!
//! One seeded generator lives in the [`crate::engine::World`]; actors
//! draw from it through their context, so a run is a pure function of
//! `(topology, actors, seed)`.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood 2014): a 64-bit
//! counter run through a finalizing mixer. It is tiny, has full
//! 2^64 period, passes BigCrush, and — unlike an external generator
//! crate — pins the stream forever, which the reproducibility
//! contract above depends on.

/// Thin wrapper fixing the generator choice (and therefore the stream)
/// for all simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    seed: u64,
}

impl SimRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { state: seed, seed }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit draw (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Rejection sampling kills the modulo bias: draw again while
        // the sample falls in the final partial bucket of 2^64 % n.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derive an independent child stream (e.g. one per actor) that
    /// stays deterministic regardless of draw interleaving elsewhere.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(1);
        SimRng::seed_from_u64(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = SimRng::seed_from_u64(7);
        let mut root2 = SimRng::seed_from_u64(7);
        let mut c1 = root1.fork(3);
        // Draw from root2 before forking: child stream must not change.
        let _ = root2.f64();
        let mut c2 = root2.fork(3);
        for _ in 0..16 {
            assert_eq!(c1.below(1 << 20), c2.below(1 << 20));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.range_inclusive(10, 12);
            assert!((10..=12).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SimRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_and_degenerate_ranges() {
        let mut r = SimRng::seed_from_u64(1);
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
        assert_eq!(r.range_inclusive(5, 5), 5);
        let _ = r.range_inclusive(0, u64::MAX); // must not overflow
    }
}
