//! Deterministic randomness for simulations.
//!
//! One seeded generator lives in the [`crate::engine::World`]; actors
//! draw from it through their context, so a run is a pure function of
//! `(topology, actors, seed)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Thin wrapper fixing the generator choice (and therefore the stream)
/// for all simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform in `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Derive an independent child stream (e.g. one per actor) that
    /// stays deterministic regardless of draw interleaving elsewhere.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(1);
        SimRng::seed_from_u64(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = SimRng::seed_from_u64(7);
        let mut root2 = SimRng::seed_from_u64(7);
        let mut c1 = root1.fork(3);
        // Draw from root2 before forking: child stream must not change.
        let _ = root2.f64();
        let mut c2 = root2.fork(3);
        for _ in 0..16 {
            assert_eq!(c1.below(1 << 20), c2.below(1 << 20));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.range_inclusive(10, 12);
            assert!((10..=12).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
