//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded script of adverse conditions installed
//! into a [`crate::engine::Simulator`] before (or between) runs:
//!
//! * **link down/up windows** — chunks attempting a dead link are
//!   dropped for the duration of the window;
//! * **probabilistic chunk drops** — each link traversal loses the
//!   chunk with probability `p`, optionally restricted to inter-site
//!   (WAN) links;
//! * **delay spikes** — extra one-way latency added to every link
//!   traversal inside a time window;
//! * **process crash/restart** — an actor is killed abruptly at a
//!   scheduled instant ([`crate::engine::Simulator::kill_actor`]
//!   semantics: listeners vanish, flows reset) and optionally revived
//!   in the same slot from a factory closure after a delay.
//!
//! Dropped chunks are retransmitted end-to-end by the sim-TCP layer
//! after [`RetransmitPolicy::rto`]; after
//! [`RetransmitPolicy::max_attempts`] consecutive losses of the same
//! chunk the transport gives up and severs the flow with
//! [`crate::flow::CloseReason::Lost`], which is the application's cue
//! to reconnect. Loss therefore manifests as *delay* below the
//! exhaustion threshold and as a typed flow error above it — never as
//! silent message disappearance on a live flow.
//!
//! Fault randomness draws from a private [`SimRng`] stream forked from
//! the plan seed, so installing a plan does not perturb the world's
//! main RNG stream: a faulted run stays a pure function of
//! `(topology, actors, seed, plan)`.

use crate::actor::{Actor, ActorId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::LinkId;

/// Recreates a crashed actor for in-place restart (same `ActorId`,
/// fresh state — a process supervisor respawning a daemon).
pub type RestartFactory = Box<dyn FnMut() -> Box<dyn Actor>>;

/// Transport-level recovery knobs for dropped chunks.
#[derive(Debug, Clone, Copy)]
pub struct RetransmitPolicy {
    /// Delay before a lost chunk is resent from the source.
    pub rto: SimDuration,
    /// Consecutive losses of one chunk tolerated before the transport
    /// gives up and severs the flow.
    pub max_attempts: u32,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            rto: SimDuration::from_millis(150),
            max_attempts: 6,
        }
    }
}

/// Per-traversal chunk loss.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DropSpec {
    pub probability: f64,
    /// Restrict losses to links whose endpoints are in different sites.
    pub wan_only: bool,
}

struct CrashSpec {
    actor: ActorId,
    at: SimDuration,
    restart: Option<(SimDuration, RestartFactory)>,
}

/// A seeded script of faults. Times are offsets from the moment the
/// plan is installed. Builder-style: chain the methods, then pass to
/// [`crate::engine::Simulator::install_faults`].
pub struct FaultPlan {
    seed: u64,
    link_downs: Vec<(LinkId, SimDuration, SimDuration)>,
    spikes: Vec<(SimDuration, SimDuration, SimDuration)>,
    drop: Option<DropSpec>,
    crashes: Vec<CrashSpec>,
    retransmit: RetransmitPolicy,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            link_downs: Vec::new(),
            spikes: Vec::new(),
            drop: None,
            crashes: Vec::new(),
            retransmit: RetransmitPolicy::default(),
        }
    }

    /// Take `link` down during `[from, until)` (both offsets from
    /// install time). Chunks attempting the link are dropped.
    #[must_use]
    pub fn link_down(mut self, link: LinkId, from: SimDuration, until: SimDuration) -> Self {
        self.link_downs.push((link, from, until));
        self
    }

    /// Add `extra` one-way latency to every link traversal during
    /// `[from, until)`.
    #[must_use]
    pub fn delay_spike(
        mut self,
        from: SimDuration,
        until: SimDuration,
        extra: SimDuration,
    ) -> Self {
        self.spikes.push((from, until, extra));
        self
    }

    /// Drop each chunk with `probability` per link traversal. With
    /// `wan_only`, only inter-site links lose traffic.
    #[must_use]
    pub fn drop_messages(mut self, probability: f64, wan_only: bool) -> Self {
        assert!((0.0..=1.0).contains(&probability), "bad drop probability");
        self.drop = Some(DropSpec {
            probability,
            wan_only,
        });
        self
    }

    /// Kill `actor` abruptly at offset `at` (no restart).
    #[must_use]
    pub fn crash(mut self, actor: ActorId, at: SimDuration) -> Self {
        self.crashes.push(CrashSpec {
            actor,
            at,
            restart: None,
        });
        self
    }

    /// Kill `actor` at offset `at` and revive it in the same slot
    /// `after` later, constructing the fresh instance with `factory`.
    #[must_use]
    pub fn crash_restart(
        mut self,
        actor: ActorId,
        at: SimDuration,
        after: SimDuration,
        factory: impl FnMut() -> Box<dyn Actor> + 'static,
    ) -> Self {
        self.crashes.push(CrashSpec {
            actor,
            at,
            restart: Some((after, Box::new(factory))),
        });
        self
    }

    /// Override the transport retransmit policy.
    #[must_use]
    pub fn retransmit(mut self, rto: SimDuration, max_attempts: u32) -> Self {
        self.retransmit = RetransmitPolicy { rto, max_attempts };
        self
    }

    /// Split into the engine-resident pieces: scheduled crashes and the
    /// steady-state [`FaultState`]. `now` anchors the plan's offsets.
    pub(crate) fn into_parts(self, now: SimTime) -> (Vec<ScheduledCrash>, FaultState) {
        let crashes = self
            .crashes
            .into_iter()
            .map(|c| ScheduledCrash {
                actor: c.actor,
                at: now + c.at,
                restart: c.restart,
            })
            .collect();
        let state = FaultState {
            rng: SimRng::seed_from_u64(self.seed).fork(0xFA17),
            link_downs: self
                .link_downs
                .into_iter()
                .map(|(l, f, u)| (l, now + f, now + u))
                .collect(),
            spikes: self
                .spikes
                .into_iter()
                .map(|(f, u, e)| (now + f, now + u, e))
                .collect(),
            drop: self.drop,
            retransmit: self.retransmit,
        };
        (crashes, state)
    }
}

pub(crate) struct ScheduledCrash {
    pub actor: ActorId,
    pub at: SimTime,
    pub restart: Option<(SimDuration, RestartFactory)>,
}

/// What happened to a chunk attempting a link traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkFate {
    Pass { extra: SimDuration },
    Drop,
}

/// Installed fault state, consulted by the engine per chunk-hop.
pub(crate) struct FaultState {
    rng: SimRng,
    link_downs: Vec<(LinkId, SimTime, SimTime)>,
    spikes: Vec<(SimTime, SimTime, SimDuration)>,
    drop: Option<DropSpec>,
    pub(crate) retransmit: RetransmitPolicy,
}

impl FaultState {
    pub(crate) fn chunk_fate(&mut self, link: LinkId, now: SimTime, inter_site: bool) -> ChunkFate {
        for &(l, from, until) in &self.link_downs {
            if l == link && now >= from && now < until {
                return ChunkFate::Drop;
            }
        }
        if let Some(d) = self.drop {
            if (!d.wan_only || inter_site) && self.rng.f64() < d.probability {
                return ChunkFate::Drop;
            }
        }
        let mut extra = SimDuration::ZERO;
        for &(from, until, e) in &self.spikes {
            if now >= from && now < until {
                extra = extra + e;
            }
        }
        ChunkFate::Pass { extra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_down_window_drops_then_passes() {
        let plan = FaultPlan::new(1).link_down(
            LinkId(0),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        let (crashes, mut fs) = plan.into_parts(SimTime::ZERO);
        assert!(crashes.is_empty());
        let at = |ms| SimTime(SimDuration::from_millis(ms).nanos());
        assert_eq!(
            fs.chunk_fate(LinkId(0), at(5), false),
            ChunkFate::Pass {
                extra: SimDuration::ZERO
            }
        );
        assert_eq!(fs.chunk_fate(LinkId(0), at(15), false), ChunkFate::Drop);
        // Other links unaffected; window end is exclusive.
        assert_ne!(fs.chunk_fate(LinkId(1), at(15), false), ChunkFate::Drop);
        assert_ne!(fs.chunk_fate(LinkId(0), at(20), false), ChunkFate::Drop);
    }

    #[test]
    fn wan_only_drop_spares_lan_links() {
        let (_, mut fs) = FaultPlan::new(3)
            .drop_messages(1.0, true)
            .into_parts(SimTime::ZERO);
        assert_ne!(fs.chunk_fate(LinkId(0), SimTime(0), false), ChunkFate::Drop);
        assert_eq!(fs.chunk_fate(LinkId(0), SimTime(0), true), ChunkFate::Drop);
    }

    #[test]
    fn delay_spike_adds_latency_inside_window() {
        let (_, mut fs) = FaultPlan::new(4)
            .delay_spike(
                SimDuration::ZERO,
                SimDuration::from_millis(1),
                SimDuration::from_millis(7),
            )
            .into_parts(SimTime::ZERO);
        assert_eq!(
            fs.chunk_fate(LinkId(0), SimTime(0), false),
            ChunkFate::Pass {
                extra: SimDuration::from_millis(7)
            }
        );
        let after = SimTime(SimDuration::from_millis(2).nanos());
        assert_eq!(
            fs.chunk_fate(LinkId(0), after, false),
            ChunkFate::Pass {
                extra: SimDuration::ZERO
            }
        );
    }

    #[test]
    fn drop_stream_is_deterministic_per_seed() {
        let fates = |seed| {
            let (_, mut fs) = FaultPlan::new(seed)
                .drop_messages(0.5, false)
                .into_parts(SimTime::ZERO);
            (0..64)
                .map(|_| fs.chunk_fate(LinkId(0), SimTime(0), false) == ChunkFate::Drop)
                .collect::<Vec<bool>>()
        };
        assert_eq!(fates(9), fates(9));
        assert_ne!(fates(9), fates(10));
    }
}
