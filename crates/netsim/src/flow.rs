//! Flows (sim-TCP connections), listeners and port allocation.

use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use std::collections::HashMap;

/// Identifier of an established (or once-established) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// One end of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEnd {
    pub node: NodeId,
    pub port: u16,
    pub actor: crate::actor::ActorId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    Connecting,
    Established,
    Closed,
}

/// Why a connect attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseReason {
    /// No listener on the destination port (TCP RST analogue).
    NoListener,
    /// A firewall on the path dropped the opening packet. Real deny
    /// rules usually drop silently (connect *times out*); we surface
    /// the refusal after the would-be timeout so callers see it.
    Filtered,
    /// No route between the hosts.
    Unreachable,
}

/// Why a flow ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Orderly close by the peer.
    Peer,
    /// Local close (reported to the closer for symmetry).
    Local,
    /// A firewall started dropping mid-flow traffic (policy reload).
    Filtered,
    /// The peer actor was stopped/crashed.
    PeerCrashed,
    /// The transport gave up after repeated chunk loss (fault
    /// injection exhausted the retransmit budget).
    Lost,
}

/// A flow record kept by the engine.
#[derive(Debug, Clone)]
pub struct Flow {
    pub id: FlowId,
    /// Initiating end.
    pub a: FlowEnd,
    /// Accepting end.
    pub b: FlowEnd,
    /// Route a→b as a link sequence (empty when both ends share a host).
    pub path: std::sync::Arc<Vec<LinkId>>,
    /// Node sequence a→b including both endpoints (`path.len() + 1`
    /// entries; a single entry for loopback flows).
    pub nodes: std::sync::Arc<Vec<NodeId>>,
    pub state: FlowState,
    pub opened_at: SimTime,
    /// Monotonic per-flow message sequence (diagnostics).
    pub messages: u64,
}

impl Flow {
    /// The end owned by `actor` on `node`, plus the peer end.
    /// Both ends can live on the same node (loopback), so the actor id
    /// disambiguates.
    pub fn ends_for(&self, actor: crate::actor::ActorId) -> Option<(&FlowEnd, &FlowEnd)> {
        if self.a.actor == actor {
            Some((&self.a, &self.b))
        } else if self.b.actor == actor {
            Some((&self.b, &self.a))
        } else {
            None
        }
    }

    /// True if `actor` is the initiating (a) side.
    pub fn is_initiator(&self, actor: crate::actor::ActorId) -> bool {
        self.a.actor == actor
    }
}

/// Per-host ephemeral port allocator + listener registry.
#[derive(Debug, Default)]
pub struct PortTable {
    /// (node, port) → listening actor.
    listeners: HashMap<(NodeId, u16), crate::actor::ActorId>,
    /// Next ephemeral port per node.
    next_ephemeral: HashMap<NodeId, u16>,
}

pub const EPHEMERAL_BASE: u16 = 32768;

impl PortTable {
    pub fn listen(
        &mut self,
        node: NodeId,
        port: u16,
        actor: crate::actor::ActorId,
    ) -> Result<u16, PortError> {
        let port = if port == 0 {
            self.ephemeral(node)
        } else {
            port
        };
        match self.listeners.entry((node, port)) {
            std::collections::hash_map::Entry::Occupied(_) => Err(PortError::InUse(port)),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(actor);
                Ok(port)
            }
        }
    }

    pub fn unlisten(&mut self, node: NodeId, port: u16) -> bool {
        self.listeners.remove(&(node, port)).is_some()
    }

    pub fn listener(&self, node: NodeId, port: u16) -> Option<crate::actor::ActorId> {
        self.listeners.get(&(node, port)).copied()
    }

    /// Allocate an ephemeral (connecting-side or listen(0)) port.
    pub fn ephemeral(&mut self, node: NodeId) -> u16 {
        let next = self.next_ephemeral.entry(node).or_insert(EPHEMERAL_BASE);
        // Skip ports with listeners; wrap within the ephemeral range.
        for _ in 0..=u16::MAX - EPHEMERAL_BASE {
            let p = *next;
            *next = if p == u16::MAX { EPHEMERAL_BASE } else { p + 1 };
            if !self.listeners.contains_key(&(node, p)) {
                return p;
            }
        }
        // 64k simultaneous listeners on one simulated host is a harness
        // bug, not a recoverable condition; abort with the culprit node.
        #[allow(clippy::panic)]
        {
            panic!("ephemeral port space exhausted on {node:?}"); // lint:allow(unwrap-panic)
        }
    }

    /// Remove all listeners owned by an actor (crash cleanup). Returns
    /// the freed ports.
    pub fn drop_actor(&mut self, actor: crate::actor::ActorId) -> Vec<(NodeId, u16)> {
        let keys: Vec<(NodeId, u16)> = self
            .listeners
            .iter()
            .filter(|(_, a)| **a == actor)
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            self.listeners.remove(k);
        }
        keys
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortError {
    InUse(u16),
}

impl std::fmt::Display for PortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortError::InUse(p) => write!(f, "port {p} already has a listener"),
        }
    }
}

impl std::error::Error for PortError {}

#[cfg(test)]
mod tests {
    use super::*;

    const N: NodeId = NodeId(0);
    const M: NodeId = NodeId(1);

    #[test]
    fn listen_and_conflict() {
        let mut pt = PortTable::default();
        assert_eq!(pt.listen(N, 80, 1).unwrap(), 80);
        assert_eq!(pt.listen(N, 80, 2), Err(PortError::InUse(80)));
        // Same port on another node is fine.
        assert_eq!(pt.listen(M, 80, 2).unwrap(), 80);
        assert_eq!(pt.listener(N, 80), Some(1));
        assert!(pt.unlisten(N, 80));
        assert!(!pt.unlisten(N, 80));
        assert_eq!(pt.listener(N, 80), None);
    }

    #[test]
    fn listen_zero_allocates_ephemeral() {
        let mut pt = PortTable::default();
        let p1 = pt.listen(N, 0, 1).unwrap();
        let p2 = pt.listen(N, 0, 1).unwrap();
        assert!(p1 >= EPHEMERAL_BASE);
        assert_ne!(p1, p2);
    }

    #[test]
    fn ephemeral_skips_listeners() {
        let mut pt = PortTable::default();
        pt.listen(N, EPHEMERAL_BASE, 1).unwrap();
        let p = pt.ephemeral(N);
        assert_ne!(p, EPHEMERAL_BASE);
    }

    #[test]
    fn drop_actor_cleans_listeners() {
        let mut pt = PortTable::default();
        pt.listen(N, 80, 1).unwrap();
        pt.listen(N, 81, 1).unwrap();
        pt.listen(N, 82, 2).unwrap();
        let freed = pt.drop_actor(1);
        assert_eq!(freed.len(), 2);
        assert_eq!(pt.listener(N, 80), None);
        assert_eq!(pt.listener(N, 82), Some(2));
    }
}
