//! The discrete-event engine: world state, event dispatch, the sim-TCP
//! transfer model, and the [`Ctx`] API actors program against.
//!
//! ## Transfer model
//!
//! A message is split into chunks of `NetConfig::chunk_bytes` (the
//! relay/socket buffer granularity). Each chunk store-and-forwards
//! across every link of the static route: it is serialized onto the
//! link (`wire_bytes / bandwidth`, FIFO per link direction) and arrives
//! `latency` later. Chunks of one message pipeline across hops, so path
//! throughput approaches the bottleneck link bandwidth while multi-hop
//! latency still pays per-hop store-and-forward — exactly the cost
//! structure the paper measures around the Nexus Proxy.
//!
//! ## Firewalls
//!
//! Connection opens evaluate `filter_open` on every site boundary the
//! route crosses (outbound at the source's border, inbound at the
//! destination's). Data messages re-evaluate `filter_data`, so a
//! mid-run policy reload (the paper "temporarily changed the
//! configuration of the firewall") severs flows realistically.

use crate::actor::{Actor, ActorId, Delivery, FlowEvent, Payload, SendError};
use crate::event::EventQueue;
use crate::fault::{ChunkFate, FaultPlan, FaultState, RestartFactory};
use crate::flow::{
    CloseReason, Flow, FlowEnd, FlowId, FlowState, PortError, PortTable, RefuseReason,
};
use crate::rng::SimRng;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, SiteId, Topology};
use crate::trace::Trace;
use firewall::{Direction, Endpoint as FwEndpoint, Firewall, Proto, Verdict};
use std::collections::HashMap;

/// Tunables of the transfer model. Defaults are calibrated in
/// `wacs-core::calibration` against the paper's direct measurements.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Store-and-forward granularity (socket/relay buffer size).
    pub chunk_bytes: u64,
    /// TCP maximum segment size, for header accounting.
    pub mss: u64,
    /// Ethernet+IP+TCP header bytes per segment.
    pub header_per_segment: u64,
    /// Per-connection setup cost on top of the handshake RTT.
    pub connect_overhead: SimDuration,
    /// Protocol-stack cost charged once per message at the sender.
    pub per_message_overhead: SimDuration,
    /// Latency of a host talking to itself.
    pub loopback_latency: SimDuration,
    /// Loopback bandwidth (bytes/s).
    pub loopback_bandwidth: f64,
    /// How long a silently-dropped SYN takes to surface as `Refused`.
    pub connect_timeout: SimDuration,
    /// Re-run firewall data filtering per message (needed for the
    /// policy-flip failure-injection experiments; tiny cost).
    pub refilter_data: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            chunk_bytes: 8192,
            mss: 1460,
            header_per_segment: 58,
            connect_overhead: SimDuration::from_micros(300),
            per_message_overhead: SimDuration::from_micros(150),
            loopback_latency: SimDuration::from_micros(20),
            loopback_bandwidth: 200e6,
            connect_timeout: SimDuration::from_millis(500),
            refilter_data: true,
        }
    }
}

impl NetConfig {
    /// Bytes on the wire for a chunk of `bytes` payload bytes.
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        let segments = bytes.div_ceil(self.mss).max(1);
        bytes + segments * self.header_per_segment
    }
}

/// In-flight message content.
struct MsgDesc {
    size: u64,
    payload: Payload,
    sent_at: SimTime,
}

/// One chunk in transit along a flow's path.
struct Transit {
    flow: FlowId,
    /// true = travelling a→b (initiator to acceptor).
    forward: bool,
    bytes: u64,
    /// Present on the final chunk of a message.
    msg: Option<MsgDesc>,
    /// Index of the path node the chunk has just arrived at.
    hop: usize,
    /// End-to-end transmission attempts already lost to fault
    /// injection (0 on first send).
    attempt: u32,
}

enum Event {
    Start(ActorId),
    Timer(ActorId, u64),
    Flow(ActorId, FlowEvent),
    Chunk(Transit),
    Loopback {
        actor: ActorId,
        flow: FlowId,
        msg: MsgDesc,
    },
    /// Fault injection: kill an actor abruptly.
    FaultCrash(ActorId),
    /// Fault injection: revive a crashed actor from its restart factory.
    FaultRestart(ActorId),
}

/// Everything except the actors themselves (split so actor callbacks
/// can hold `&mut World` while the engine holds the actor).
pub struct World {
    pub topo: Topology,
    pub config: NetConfig,
    now: SimTime,
    queue: EventQueue<Event>,
    flows: HashMap<FlowId, Flow>,
    next_flow: u64,
    ports: PortTable,
    firewalls: Vec<Option<Firewall>>,
    /// `link_free[link][dir]`: when the link direction next idles.
    link_free: Vec<[SimTime; 2]>,
    pub stats: Stats,
    /// Installed observability sink (None = metrics-free run).
    obs: Option<crate::obs::NetObs>,
    rng: SimRng,
    /// Installed fault-injection state (None = fault-free run).
    faults: Option<FaultState>,
    pub trace: Trace,
    stop_requested: bool,
    pending_spawns: Vec<(NodeId, Box<dyn Actor>)>,
    pending_exits: Vec<ActorId>,
    actors_len: usize,
    /// Cached routes.
    routes: HashMap<(NodeId, NodeId), Option<std::sync::Arc<Vec<LinkId>>>>,
}

impl World {
    fn new(topo: Topology, config: NetConfig, seed: u64) -> Self {
        let firewalls = topo
            .sites
            .iter()
            .map(|s| s.policy.clone().map(Firewall::new))
            .collect();
        let mut stats = Stats::default();
        stats.ensure_links(topo.links.len());
        let link_free = vec![[SimTime::ZERO; 2]; topo.links.len()];
        World {
            topo,
            config,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            flows: HashMap::new(),
            next_flow: 1,
            ports: PortTable::default(),
            firewalls,
            link_free,
            stats,
            obs: None,
            rng: SimRng::seed_from_u64(seed),
            faults: None,
            trace: Trace::default(),
            stop_requested: false,
            pending_spawns: Vec::new(),
            pending_exits: Vec::new(),
            actors_len: 0,
            routes: HashMap::new(),
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    fn route(&mut self, a: NodeId, b: NodeId) -> Option<std::sync::Arc<Vec<LinkId>>> {
        if let Some(r) = self.routes.get(&(a, b)) {
            return r.clone();
        }
        let r = self.topo.route(a, b).map(std::sync::Arc::new);
        self.routes.insert((a, b), r.clone());
        r
    }

    /// Firewall verdict for a connection-opening packet traversing
    /// `path` from `src_node`. Applies outbound filtering when leaving
    /// a firewalled site and inbound filtering when entering one.
    fn filter_open_path(
        &mut self,
        src_node: NodeId,
        path: &[LinkId],
        src: FwEndpoint,
        dst: FwEndpoint,
    ) -> Verdict {
        for (from, to) in self.topo.site_crossings(src_node, path) {
            for (site, dir) in [(from, Direction::Outbound), (to, Direction::Inbound)] {
                if let Some(fw) = self.firewalls[site.0 as usize].as_mut() {
                    if !fw.filter_open(dir, Proto::Tcp, src, dst).passed() {
                        return Verdict::Drop;
                    }
                }
            }
        }
        Verdict::Pass
    }

    fn filter_data_path(
        &mut self,
        src_node: NodeId,
        path: &[LinkId],
        src: FwEndpoint,
        dst: FwEndpoint,
    ) -> Verdict {
        for (from, to) in self.topo.site_crossings(src_node, path) {
            for (site, dir) in [(from, Direction::Outbound), (to, Direction::Inbound)] {
                if let Some(fw) = self.firewalls[site.0 as usize].as_mut() {
                    if !fw.filter_data(dir, Proto::Tcp, src, dst).passed() {
                        return Verdict::Drop;
                    }
                }
            }
        }
        Verdict::Pass
    }

    fn teardown_conntrack(&mut self, flow: &Flow) {
        let src = FwEndpoint::new(flow.a.node.0, flow.a.port);
        let dst = FwEndpoint::new(flow.b.node.0, flow.b.port);
        for fw in self.firewalls.iter_mut().flatten() {
            fw.close(src, dst, Proto::Tcp);
        }
    }

    /// Schedule the chunks of a message along a flow. `forward` is the
    /// wire direction (a→b or b→a). Non-final chunks carry no payload;
    /// the final chunk's arrival delivers the message.
    fn send_message(&mut self, flow_id: FlowId, forward: bool, msg: MsgDesc) {
        let start = self.now + self.config.per_message_overhead;
        let size = msg.size;
        let chunk = self.config.chunk_bytes;
        let nchunks = size.div_ceil(chunk).max(1);
        // All non-final chunks carry no payload.
        for i in 0..nchunks - 1 {
            self.queue.schedule(
                start,
                Event::Chunk(Transit {
                    flow: flow_id,
                    forward,
                    bytes: chunk.min(size - i * chunk),
                    msg: None,
                    hop: 0,
                    attempt: 0,
                }),
            );
        }
        let last_bytes = size - (nchunks - 1) * chunk;
        self.queue.schedule(
            start,
            Event::Chunk(Transit {
                flow: flow_id,
                forward,
                bytes: last_bytes,
                msg: Some(msg),
                hop: 0,
                attempt: 0,
            }),
        );
        self.stats.messages_sent += 1;
    }
}

/// Handle given to actor callbacks.
pub struct Ctx<'w> {
    world: &'w mut World,
    actor: ActorId,
    host: NodeId,
}

impl<'w> Ctx<'w> {
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    pub fn me(&self) -> ActorId {
        self.actor
    }

    pub fn host(&self) -> NodeId {
        self.host
    }

    pub fn host_name(&self) -> &str {
        &self.world.topo.node(self.host).name
    }

    /// This host's configured compute rate (work units / sim second /
    /// processor).
    pub fn cpu_rate(&self) -> f64 {
        self.world.topo.node(self.host).cpu_rate
    }

    pub fn cpus(&self) -> u32 {
        self.world.topo.node(self.host).cpus
    }

    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.rng
    }

    pub fn config(&self) -> &NetConfig {
        &self.world.config
    }

    pub fn topo(&self) -> &Topology {
        &self.world.topo
    }

    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        let now = self.world.now;
        self.world.trace.log(now, line);
    }

    /// Fire `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.world.now + delay;
        self.world
            .queue
            .schedule(at, Event::Timer(self.actor, token));
    }

    /// Begin listening. `port == 0` picks an ephemeral port. Returns
    /// the bound port.
    pub fn listen(&mut self, port: u16) -> Result<u16, PortError> {
        self.world.ports.listen(self.host, port, self.actor)
    }

    pub fn unlisten(&mut self, port: u16) -> bool {
        self.world.ports.unlisten(self.host, port)
    }

    /// Initiate a connection to `peer`. The outcome arrives later as a
    /// [`FlowEvent::Connected`] or [`FlowEvent::Refused`] carrying
    /// `token`.
    pub fn connect(&mut self, peer: (NodeId, u16), token: u64) {
        let me = self.actor;
        let src_node = self.host;
        let (dst_node, dst_port) = peer;
        let src_port = self.world.ports.ephemeral(src_node);
        let now = self.world.now;

        let Some(path) = self.world.route(src_node, dst_node) else {
            let at = now + SimDuration::from_micros(10);
            self.world.queue.schedule(
                at,
                Event::Flow(
                    me,
                    FlowEvent::Refused {
                        token,
                        peer,
                        reason: RefuseReason::Unreachable,
                    },
                ),
            );
            self.world.stats.flows_refused += 1;
            return;
        };

        let src_ep = FwEndpoint::new(src_node.0, src_port);
        let dst_ep = FwEndpoint::new(dst_node.0, dst_port);
        if !self
            .world
            .filter_open_path(src_node, &path, src_ep, dst_ep)
            .passed()
        {
            // Deny rules drop silently: the connect only fails at the
            // timeout.
            let at = now + self.world.config.connect_timeout;
            self.world.queue.schedule(
                at,
                Event::Flow(
                    me,
                    FlowEvent::Refused {
                        token,
                        peer,
                        reason: RefuseReason::Filtered,
                    },
                ),
            );
            self.world.stats.flows_refused += 1;
            self.world
                .trace
                .log(now, || format!("FW-DROP connect {src_ep}->{dst_ep}"));
            return;
        }

        let Some(listener) = self.world.ports.listener(dst_node, dst_port) else {
            // RST comes back after one round trip.
            let rtt = SimDuration(self.world.topo.path_latency(&path).nanos() * 2);
            let at = now + rtt + SimDuration::from_micros(10);
            self.world.queue.schedule(
                at,
                Event::Flow(
                    me,
                    FlowEvent::Refused {
                        token,
                        peer,
                        reason: RefuseReason::NoListener,
                    },
                ),
            );
            self.world.stats.flows_refused += 1;
            return;
        };

        let id = FlowId(self.world.next_flow);
        self.world.next_flow += 1;
        let nodes = std::sync::Arc::new(self.world.topo.path_nodes(src_node, &path));
        let flow = Flow {
            id,
            a: FlowEnd {
                node: src_node,
                port: src_port,
                actor: me,
            },
            b: FlowEnd {
                node: dst_node,
                port: dst_port,
                actor: listener,
            },
            path: path.clone(),
            nodes,
            state: FlowState::Connecting,
            opened_at: now,
            messages: 0,
        };
        let rtt = SimDuration(self.world.topo.path_latency(&path).nanos() * 2);
        let done = now + rtt + self.world.config.connect_overhead;
        self.world.flows.insert(id, flow);
        self.world.stats.flows_opened += 1;
        self.world.queue.schedule(
            done,
            Event::Flow(
                listener,
                FlowEvent::Accepted {
                    flow: id,
                    listen_port: dst_port,
                    peer: (src_node, src_port),
                },
            ),
        );
        self.world.queue.schedule(
            done,
            Event::Flow(
                me,
                FlowEvent::Connected {
                    flow: id,
                    token,
                    peer,
                },
            ),
        );
        self.world
            .trace
            .log(now, || format!("CONNECT {src_ep}->{dst_ep} flow={}", id.0));
    }

    /// Send a message of `size` declared bytes carrying `payload`.
    pub fn send<T: std::any::Any + Send>(
        &mut self,
        flow: FlowId,
        size: u64,
        payload: T,
    ) -> Result<(), SendError> {
        self.send_boxed(flow, size, Box::new(payload))
    }

    /// Like [`Ctx::send`], for an already-boxed payload (relays forward
    /// payloads they never inspect).
    pub fn send_boxed(
        &mut self,
        flow: FlowId,
        size: u64,
        payload: Payload,
    ) -> Result<(), SendError> {
        let me = self.actor;
        let now = self.world.now;
        let Some(f) = self.world.flows.get_mut(&flow) else {
            return Err(SendError::UnknownFlow);
        };
        if f.state != FlowState::Established {
            return Err(SendError::NotEstablished);
        }
        let Some((mine, peer)) = f.ends_for(me) else {
            return Err(SendError::NotYourFlow);
        };
        let forward = f.is_initiator(me);
        let (src_node, src_ep, dst_ep, peer_actor) = (
            mine.node,
            FwEndpoint::new(mine.node.0, mine.port),
            FwEndpoint::new(peer.node.0, peer.port),
            peer.actor,
        );
        f.messages += 1;
        let path = f.path.clone();
        let msg = MsgDesc {
            size,
            payload,
            sent_at: now,
        };

        if path.is_empty() {
            // Loopback delivery.
            let d = self.world.config.loopback_latency
                + SimDuration::from_secs_f64(size as f64 / self.world.config.loopback_bandwidth);
            self.world.stats.messages_sent += 1;
            self.world.queue.schedule(
                now + d,
                Event::Loopback {
                    actor: peer_actor,
                    flow,
                    msg,
                },
            );
            return Ok(());
        }

        if self.world.config.refilter_data {
            // The path stored on the flow is a→b; filtering needs the
            // travel direction's origin node.
            let origin = src_node;
            let path_dir: Vec<LinkId> = if forward {
                path.as_ref().clone()
            } else {
                path.iter().rev().copied().collect()
            };
            if !self
                .world
                .filter_data_path(origin, &path_dir, src_ep, dst_ep)
                .passed()
            {
                // Firewall started eating this flow: sever it.
                self.world.stats.messages_filtered += 1;
                let Some(f) = self.world.flows.get_mut(&flow) else {
                    return Ok(());
                };
                f.state = FlowState::Closed;
                let (a_actor, b_actor) = (f.a.actor, f.b.actor);
                let fc = f.clone();
                self.world.teardown_conntrack(&fc);
                self.world.stats.flows_closed += 1;
                for act in [a_actor, b_actor] {
                    self.world.queue.schedule(
                        now + SimDuration::from_millis(1),
                        Event::Flow(
                            act,
                            FlowEvent::Closed {
                                flow,
                                reason: CloseReason::Filtered,
                            },
                        ),
                    );
                }
                return Ok(());
            }
        }

        self.world.send_message(flow, forward, msg);
        Ok(())
    }

    /// Close a flow. The peer is notified after one-way latency.
    pub fn close(&mut self, flow: FlowId) {
        let me = self.actor;
        let now = self.world.now;
        let Some(f) = self.world.flows.get_mut(&flow) else {
            return;
        };
        if f.state == FlowState::Closed {
            return;
        }
        f.state = FlowState::Closed;
        let peer_actor = match f.ends_for(me) {
            Some((_, peer)) => peer.actor,
            None => return,
        };
        let lat = self.world.topo.path_latency(&f.path);
        let fc = f.clone();
        self.world.teardown_conntrack(&fc);
        self.world.stats.flows_closed += 1;
        self.world.queue.schedule(
            now + lat,
            Event::Flow(
                peer_actor,
                FlowEvent::Closed {
                    flow,
                    reason: CloseReason::Peer,
                },
            ),
        );
        self.world.queue.schedule(
            now,
            Event::Flow(
                me,
                FlowEvent::Closed {
                    flow,
                    reason: CloseReason::Local,
                },
            ),
        );
    }

    /// Spawn a new actor on `host` (applied after this callback
    /// returns). Returns the id it will have.
    pub fn spawn(&mut self, host: NodeId, actor: Box<dyn Actor>) -> ActorId {
        let id = self.world.actors_len + self.world.pending_spawns.len();
        self.world.pending_spawns.push((host, actor));
        id
    }

    /// Terminate this actor after the current callback.
    pub fn exit(&mut self) {
        let me = self.actor;
        self.world.pending_exits.push(me);
    }

    /// Stop the whole simulation after the current callback.
    pub fn stop_simulation(&mut self) {
        self.world.stop_requested = true;
    }

    /// Look up the flow's peer `(node, port)` as seen by this actor.
    pub fn flow_peer(&self, flow: FlowId) -> Option<(NodeId, u16)> {
        let f = self.world.flows.get(&flow)?;
        let (_, peer) = f.ends_for(self.actor)?;
        Some((peer.node, peer.port))
    }

    /// Is the flow currently established?
    pub fn flow_established(&self, flow: FlowId) -> bool {
        self.world
            .flows
            .get(&flow)
            .is_some_and(|f| f.state == FlowState::Established)
    }
}

struct Slot {
    host: NodeId,
    actor: Option<Box<dyn Actor>>,
    alive: bool,
}

/// The simulator: world + actor registry + run loop.
pub struct Simulator {
    world: World,
    actors: Vec<Slot>,
    /// Restart factories for crash/restart fault specs.
    restarts: HashMap<ActorId, (SimDuration, RestartFactory)>,
}

impl Simulator {
    pub fn new(topo: Topology, config: NetConfig, seed: u64) -> Self {
        Simulator {
            world: World::new(topo, config, seed),
            actors: Vec::new(),
            restarts: HashMap::new(),
        }
    }

    /// Install a fault-injection plan. Offsets in the plan are
    /// relative to the current virtual time. Installing a second plan
    /// replaces the steady-state faults (drops, windows) but keeps any
    /// already-scheduled crashes.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        let now = self.world.now;
        let (crashes, state) = plan.into_parts(now);
        for c in crashes {
            self.world.queue.schedule(c.at, Event::FaultCrash(c.actor));
            if let Some(restart) = c.restart {
                self.restarts.insert(c.actor, restart);
            }
        }
        self.world.faults = Some(state);
    }

    /// Attach a `wacs-obs` registry: the engine records per-hop and
    /// per-link transit latencies, delivery latencies, and fault events
    /// into it for the rest of the run. All values derive from
    /// `SimTime`, so same-seed runs snapshot byte-identically.
    pub fn install_obs(&mut self, registry: wacs_obs::Registry) {
        let links = self.world.topo.links.len();
        self.world.obs = Some(crate::obs::NetObs::new(registry, links));
    }

    /// The installed observability sink, if any.
    pub fn obs(&self) -> Option<&crate::obs::NetObs> {
        self.world.obs.as_ref()
    }

    /// Install an actor on a host; its `on_start` runs when the
    /// simulation reaches the current virtual time.
    pub fn spawn(&mut self, host: NodeId, actor: Box<dyn Actor>) -> ActorId {
        assert!(
            matches!(
                self.world.topo.node(host).kind,
                crate::topology::NodeKind::Host
            ),
            "actors can only run on hosts, not switches"
        );
        let id = self.actors.len();
        self.actors.push(Slot {
            host,
            actor: Some(actor),
            alive: true,
        });
        self.world.actors_len = self.actors.len();
        let now = self.world.now;
        self.world.queue.schedule(now, Event::Start(id));
        id
    }

    pub fn now(&self) -> SimTime {
        self.world.now
    }

    pub fn stats(&self) -> &Stats {
        &self.world.stats
    }

    pub fn trace(&self) -> &Trace {
        &self.world.trace
    }

    pub fn enable_trace(&mut self) {
        self.world.trace.enable();
    }

    pub fn topo(&self) -> &Topology {
        &self.world.topo
    }

    /// Mutable access to a site's firewall, for mid-run policy reloads
    /// (failure injection / the paper's temporary reconfiguration).
    pub fn firewall_mut(&mut self, site: SiteId) -> Option<&mut Firewall> {
        self.world.firewalls[site.0 as usize].as_mut()
    }

    pub fn firewall(&self, site: SiteId) -> Option<&Firewall> {
        self.world.firewalls[site.0 as usize].as_ref()
    }

    /// Kill an actor abruptly: listeners vanish, flows reset with
    /// `PeerCrashed`.
    pub fn kill_actor(&mut self, id: ActorId) {
        if id >= self.actors.len() || !self.actors[id].alive {
            return;
        }
        self.actors[id].alive = false;
        self.actors[id].actor = None;
        self.world.ports.drop_actor(id);
        let now = self.world.now;
        let broken: Vec<(FlowId, ActorId, Flow)> = self
            .world
            .flows
            .values()
            .filter(|f| f.state != FlowState::Closed && (f.a.actor == id || f.b.actor == id))
            .map(|f| {
                let peer = if f.a.actor == id {
                    f.b.actor
                } else {
                    f.a.actor
                };
                (f.id, peer, f.clone())
            })
            .collect();
        for (fid, peer, fc) in broken {
            if let Some(f) = self.world.flows.get_mut(&fid) {
                f.state = FlowState::Closed;
            }
            self.world.teardown_conntrack(&fc);
            self.world.stats.flows_closed += 1;
            self.world.queue.schedule(
                now,
                Event::Flow(
                    peer,
                    FlowEvent::Closed {
                        flow: fid,
                        reason: CloseReason::PeerCrashed,
                    },
                ),
            );
        }
    }

    /// Run until the queue drains or an actor requested a stop.
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until `deadline` (events at exactly `deadline` still fire).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while !self.world.stop_requested {
            let Some(t) = self.world.queue.peek_time() else {
                break;
            };
            if t > deadline {
                self.world.now = deadline;
                break;
            }
            let Some((t, ev)) = self.world.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.world.now, "event time regression");
            self.world.now = t;
            self.world.stats.events_processed += 1;
            self.dispatch(ev);
            self.apply_pending();
        }
        self.world.now
    }

    fn apply_pending(&mut self) {
        while !self.world.pending_spawns.is_empty() || !self.world.pending_exits.is_empty() {
            let spawns = std::mem::take(&mut self.world.pending_spawns);
            for (host, actor) in spawns {
                self.spawn(host, actor);
            }
            let exits = std::mem::take(&mut self.world.pending_exits);
            for id in exits {
                self.kill_actor(id);
            }
        }
    }

    fn with_actor(&mut self, id: ActorId, f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>)) {
        if id >= self.actors.len() || !self.actors[id].alive {
            return;
        }
        let Some(mut actor) = self.actors[id].actor.take() else {
            return;
        };
        let host = self.actors[id].host;
        {
            let mut ctx = Ctx {
                world: &mut self.world,
                actor: id,
                host,
            };
            f(actor.as_mut(), &mut ctx);
        }
        // The actor may have exited during the callback.
        if self.actors[id].alive {
            self.actors[id].actor = Some(actor);
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Start(id) => self.with_actor(id, |a, ctx| a.on_start(ctx)),
            Event::Timer(id, token) => self.with_actor(id, |a, ctx| a.on_timer(ctx, token)),
            Event::Flow(id, fe) => {
                // Establish flow state transitions before informing actors.
                if let FlowEvent::Connected { flow, .. } | FlowEvent::Accepted { flow, .. } = &fe {
                    if let Some(f) = self.world.flows.get_mut(flow) {
                        if f.state == FlowState::Connecting {
                            f.state = FlowState::Established;
                        }
                    }
                }
                self.with_actor(id, |a, ctx| a.on_flow(ctx, fe));
            }
            Event::Loopback { actor, flow, msg } => {
                let now = self.world.now;
                self.world.stats.record_delivery(msg.size, msg.sent_at, now);
                if let Some(o) = &self.world.obs {
                    o.record_delivery(msg.sent_at, now);
                }
                self.with_actor(actor, |a, ctx| {
                    a.on_message(
                        ctx,
                        Delivery {
                            flow,
                            size: msg.size,
                            payload: msg.payload,
                            sent_at: msg.sent_at,
                        },
                    )
                });
            }
            Event::Chunk(t) => self.handle_chunk(t),
            Event::FaultCrash(id) => {
                let now = self.world.now;
                self.world.stats.actor_crashes += 1;
                if let Some(o) = &self.world.obs {
                    o.actor_crashed();
                }
                self.world
                    .trace
                    .log(now, || format!("FAULT crash actor {id}"));
                self.kill_actor(id);
                if let Some((after, _)) = self.restarts.get(&id) {
                    let at = now + *after;
                    self.world.queue.schedule(at, Event::FaultRestart(id));
                }
            }
            Event::FaultRestart(id) => {
                if id < self.actors.len() && !self.actors[id].alive {
                    if let Some((_, factory)) = self.restarts.get_mut(&id) {
                        let fresh = factory();
                        self.actors[id].alive = true;
                        self.actors[id].actor = Some(fresh);
                        self.world.stats.actor_restarts += 1;
                        if let Some(o) = &self.world.obs {
                            o.actor_restarted();
                        }
                        let now = self.world.now;
                        self.world
                            .trace
                            .log(now, || format!("FAULT restart actor {id}"));
                        self.world.queue.schedule(now, Event::Start(id));
                    }
                }
            }
        }
    }

    /// Close a flow from inside the engine (transport gave up) and
    /// notify both endpoint actors immediately.
    fn sever_flow(&mut self, fid: FlowId, reason: CloseReason) {
        let now = self.world.now;
        let Some(f) = self.world.flows.get_mut(&fid) else {
            return;
        };
        if f.state == FlowState::Closed {
            return;
        }
        f.state = FlowState::Closed;
        let ends = [f.a.actor, f.b.actor];
        let fc = f.clone();
        self.world.teardown_conntrack(&fc);
        self.world.stats.flows_closed += 1;
        for act in ends {
            self.world.queue.schedule(
                now,
                Event::Flow(act, FlowEvent::Closed { flow: fid, reason }),
            );
        }
    }

    /// A chunk was lost to fault injection: retransmit end-to-end after
    /// the RTO, or sever the flow once the attempt budget is exhausted.
    fn drop_chunk(&mut self, t: Transit) {
        self.world.stats.chunks_dropped += 1;
        if let Some(o) = &self.world.obs {
            o.chunk_dropped();
        }
        let Some(policy) = self.world.faults.as_ref().map(|f| f.retransmit) else {
            return;
        };
        let now = self.world.now;
        if t.attempt + 1 < policy.max_attempts {
            self.world.stats.retransmits += 1;
            if let Some(o) = &self.world.obs {
                o.retransmit();
            }
            let flow = t.flow;
            self.world.trace.log(now, || {
                format!(
                    "FAULT drop flow={} attempt={} (retransmit)",
                    flow.0, t.attempt
                )
            });
            self.world.queue.schedule(
                now + policy.rto,
                Event::Chunk(Transit {
                    hop: 0,
                    attempt: t.attempt + 1,
                    ..t
                }),
            );
        } else {
            self.world.stats.messages_lost += 1;
            if let Some(o) = &self.world.obs {
                o.message_lost();
            }
            let flow = t.flow;
            self.world.trace.log(now, || {
                format!("FAULT drop flow={} attempt={} (give up)", flow.0, t.attempt)
            });
            self.sever_flow(flow, CloseReason::Lost);
        }
    }

    fn handle_chunk(&mut self, t: Transit) {
        let (path, nodes, recv_actor) = {
            let Some(f) = self.world.flows.get(&t.flow) else {
                return; // flow evaporated (killed actor)
            };
            if f.state == FlowState::Closed {
                return; // drop in-flight traffic of dead flows
            }
            let recv = if t.forward { f.b.actor } else { f.a.actor };
            (f.path.clone(), f.nodes.clone(), recv)
        };
        let len = nodes.len();
        // Node/link order in travel direction.
        let node_at = |i: usize| {
            if t.forward {
                nodes[i]
            } else {
                nodes[len - 1 - i]
            }
        };
        let link_at = |i: usize| {
            if t.forward {
                path[i]
            } else {
                path[len - 2 - i]
            }
        };

        if t.hop == len - 1 {
            // Arrived at the destination host.
            if let Some(msg) = t.msg {
                let now = self.world.now;
                self.world.stats.record_delivery(msg.size, msg.sent_at, now);
                if let Some(o) = &self.world.obs {
                    o.record_delivery(msg.sent_at, now);
                }
                let flow = t.flow;
                self.with_actor(recv_actor, |a, ctx| {
                    a.on_message(
                        ctx,
                        Delivery {
                            flow,
                            size: msg.size,
                            payload: msg.payload,
                            sent_at: msg.sent_at,
                        },
                    )
                });
            }
            return;
        }

        // Forward over the next link.
        let lid = link_at(t.hop);
        let from = node_at(t.hop);
        let (bandwidth, latency, link_a, inter_site) = {
            let link = self.world.topo.link(lid);
            let inter = self.world.topo.site_of(link.a) != self.world.topo.site_of(link.b);
            (link.bandwidth, link.latency, link.a, inter)
        };
        let mut extra_latency = SimDuration::ZERO;
        if self.world.faults.is_some() {
            let now = self.world.now;
            // Split borrow: fate needs &mut faults only.
            let fate = self
                .world
                .faults
                .as_mut()
                .map(|f| f.chunk_fate(lid, now, inter_site));
            match fate {
                Some(ChunkFate::Drop) => {
                    self.drop_chunk(t);
                    return;
                }
                Some(ChunkFate::Pass { extra }) => extra_latency = extra,
                None => {}
            }
        }
        let dir = if link_a == from { 0 } else { 1 };
        let wire = self.world.config.wire_bytes(t.bytes);
        let ser = SimDuration::from_secs_f64(wire as f64 / bandwidth);
        let free = self.world.link_free[lid.0 as usize][dir];
        let depart = if free > self.world.now {
            free
        } else {
            self.world.now
        };
        let finish = depart + ser;
        self.world.link_free[lid.0 as usize][dir] = finish;
        let arrive = finish + latency + extra_latency;
        self.world.stats.record_chunk(lid, dir, wire, ser);
        if let Some(o) = &self.world.obs {
            o.record_hop(lid, arrive.since(self.world.now));
        }
        self.world.queue.schedule(
            arrive,
            Event::Chunk(Transit {
                hop: t.hop + 1,
                ..t
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use firewall::Policy;
    use std::sync::Arc;
    use wacs_sync::Mutex;

    /// Shared observation sink for test actors.
    type Log = Arc<Mutex<Vec<String>>>;

    struct Echo {
        log: Log,
        port: u16,
    }

    impl Actor for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let p = ctx.listen(self.port).unwrap();
            assert_eq!(p, self.port);
        }
        fn on_flow(&mut self, _ctx: &mut Ctx<'_>, ev: FlowEvent) {
            if let FlowEvent::Accepted { .. } = ev {
                self.log.lock().push("accepted".into());
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
            let flow = msg.flow;
            let size = msg.size;
            self.log.lock().push(format!("echo {size}"));
            ctx.send_boxed(flow, size, msg.payload).ok();
        }
    }

    struct Pinger {
        log: Log,
        peer: (NodeId, u16),
        size: u64,
        sent_at: Option<SimTime>,
        flow: Option<FlowId>,
    }

    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.peer, 7);
        }
        fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
            match ev {
                FlowEvent::Connected { flow, token, .. } => {
                    assert_eq!(token, 7);
                    self.flow = Some(flow);
                    self.sent_at = Some(ctx.now());
                    ctx.send(flow, self.size, ()).unwrap();
                }
                FlowEvent::Refused { reason, .. } => {
                    self.log.lock().push(format!("refused {reason:?}"));
                    ctx.stop_simulation();
                }
                _ => {}
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Delivery) {
            let rtt = ctx.now().since(self.sent_at.unwrap());
            self.log.lock().push(format!("rtt_ns {}", rtt.nanos()));
            ctx.stop_simulation();
        }
    }

    fn two_host_topo(policy_b: Option<Policy>) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let sa = t.add_site("A", None);
        let sb = t.add_site("B", policy_b);
        let ha = t.add_host("ha", sa);
        let swa = t.add_switch("swa", sa);
        let swb = t.add_switch("swb", sb);
        let hb = t.add_host("hb", sb);
        t.add_link(ha, swa, SimDuration::from_micros(50), 12.5e6);
        t.add_link(swa, swb, SimDuration::from_millis(2), 1e6);
        t.add_link(swb, hb, SimDuration::from_micros(50), 12.5e6);
        (t, ha, hb)
    }

    fn run_pingpong(policy_b: Option<Policy>, size: u64) -> (Vec<String>, Stats) {
        let (t, ha, hb) = two_host_topo(policy_b);
        let mut sim = Simulator::new(t, NetConfig::default(), 1);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        sim.spawn(
            hb,
            Box::new(Echo {
                log: log.clone(),
                port: 5000,
            }),
        );
        sim.spawn(
            ha,
            Box::new(Pinger {
                log: log.clone(),
                peer: (hb, 5000),
                size,
                sent_at: None,
                flow: None,
            }),
        );
        sim.run();
        let out = log.lock().clone();
        (out, sim.stats().clone())
    }

    #[test]
    fn ping_pong_round_trip() {
        let (log, stats) = run_pingpong(None, 100);
        assert!(log.iter().any(|l| l == "accepted"), "{log:?}");
        assert!(log.iter().any(|l| l == "echo 100"), "{log:?}");
        let rtt = log
            .iter()
            .find_map(|l| l.strip_prefix("rtt_ns ").map(|v| v.parse::<u64>().unwrap()))
            .expect("no rtt recorded");
        // One-way path latency = 50us + 2ms + 50us = 2.1ms, plus
        // serialization & overheads. RTT must exceed 4.2ms and stay in
        // the same ballpark.
        assert!(rtt > 4_200_000, "rtt {rtt}");
        assert!(rtt < 8_000_000, "rtt {rtt}");
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(stats.flows_opened, 1);
    }

    #[test]
    fn large_message_is_bandwidth_bound() {
        let size = 1_000_000u64;
        let (log, _) = run_pingpong(None, size);
        let rtt = log
            .iter()
            .find_map(|l| l.strip_prefix("rtt_ns ").map(|v| v.parse::<u64>().unwrap()))
            .unwrap();
        // Bottleneck 1 MB/s, two directions => at least 2s of wire time.
        assert!(rtt > 2_000_000_000, "rtt {rtt}");
        // But pipelining keeps it well under naive store-and-forward of
        // the whole message at every hop (3 hops * 2 dirs * ~1s each).
        assert!(rtt < 3_000_000_000, "rtt {rtt}");
    }

    #[test]
    fn deny_based_firewall_refuses_inbound_connect() {
        let (log, stats) = run_pingpong(Some(Policy::typical("B")), 100);
        assert_eq!(log, vec!["refused Filtered".to_string()]);
        assert_eq!(stats.flows_refused, 1);
    }

    #[test]
    fn nxport_hole_admits_only_that_port() {
        // hb is node index 3 in two_host_topo.
        let policy = Policy::typical_with_nxport("B", 3, 5000);
        let (log, _) = run_pingpong(Some(policy), 64);
        assert!(log.iter().any(|l| l.starts_with("rtt_ns")), "{log:?}");
        // And a different port stays closed.
        let policy = Policy::typical_with_nxport("B", 3, 5001);
        let (log, _) = run_pingpong(Some(policy), 64);
        assert_eq!(log, vec!["refused Filtered".to_string()]);
    }

    #[test]
    fn connect_to_missing_listener_is_refused() {
        let (t, ha, hb) = two_host_topo(None);
        let mut sim = Simulator::new(t, NetConfig::default(), 1);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        sim.spawn(
            ha,
            Box::new(Pinger {
                log: log.clone(),
                peer: (hb, 9999),
                size: 1,
                sent_at: None,
                flow: None,
            }),
        );
        sim.run();
        assert_eq!(log.lock().clone(), vec!["refused NoListener".to_string()]);
    }

    #[test]
    fn deterministic_runs() {
        let (a, sa) = run_pingpong(None, 4096);
        let (b, sb) = run_pingpong(None, 4096);
        assert_eq!(a, b);
        assert_eq!(sa.events_processed, sb.events_processed);
    }

    /// An actor that connects and sends periodically; used for the
    /// mid-run firewall flip test.
    struct Streamer {
        log: Log,
        peer: (NodeId, u16),
        flow: Option<FlowId>,
    }

    impl Actor for Streamer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.peer, 0);
        }
        fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
            match ev {
                FlowEvent::Connected { flow, .. } => {
                    self.flow = Some(flow);
                    ctx.set_timer(SimDuration::from_millis(10), 1);
                }
                FlowEvent::Closed { reason, .. } => {
                    self.log.lock().push(format!("closed {reason:?}"));
                    ctx.stop_simulation();
                }
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(f) = self.flow {
                ctx.send(f, 100, ()).ok();
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
        }
    }

    #[test]
    fn policy_flip_severs_established_flow() {
        let (t, ha, hb) = two_host_topo(Some(Policy::allow_based("B")));
        let mut sim = Simulator::new(t, NetConfig::default(), 1);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        sim.spawn(
            hb,
            Box::new(Echo {
                log: log.clone(),
                port: 5000,
            }),
        );
        sim.spawn(
            ha,
            Box::new(Streamer {
                log: log.clone(),
                peer: (hb, 5000),
                flow: None,
            }),
        );
        // Let it establish and stream a bit.
        sim.run_until(SimTime(SimDuration::from_millis(50).nanos()));
        assert!(log.lock().iter().any(|l| l.starts_with("echo")));
        // Hard cut: deny-everything policy plus a conntrack flush, as a
        // real operator reset would do.
        let fw = sim.firewall_mut(SiteId(1)).unwrap();
        fw.reload(Policy::deny_based("B"));
        fw.flush_conntrack();
        sim.run();
        let final_log = log.lock().clone();
        assert!(
            final_log.iter().any(|l| l == "closed Filtered"),
            "{final_log:?}"
        );
    }

    #[test]
    fn policy_reload_alone_keeps_established_flows() {
        // Without a conntrack flush, established traffic keeps passing
        // after a reload — stateful-firewall semantics.
        let (t, ha, hb) = two_host_topo(Some(Policy::allow_based("B")));
        let mut sim = Simulator::new(t, NetConfig::default(), 1);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        sim.spawn(
            hb,
            Box::new(Echo {
                log: log.clone(),
                port: 5000,
            }),
        );
        sim.spawn(
            ha,
            Box::new(Streamer {
                log: log.clone(),
                peer: (hb, 5000),
                flow: None,
            }),
        );
        sim.run_until(SimTime(SimDuration::from_millis(50).nanos()));
        let echoes_before = log.lock().iter().filter(|l| l.starts_with("echo")).count();
        sim.firewall_mut(SiteId(1))
            .unwrap()
            .reload(Policy::deny_based("B"));
        sim.run_until(SimTime(SimDuration::from_millis(100).nanos()));
        let final_log = log.lock().clone();
        let echoes_after = final_log.iter().filter(|l| l.starts_with("echo")).count();
        assert!(echoes_after > echoes_before, "{final_log:?}");
        assert!(!final_log.iter().any(|l| l == "closed Filtered"));
    }

    #[test]
    fn lossy_link_delivers_via_retransmit() {
        // 10% per-traversal loss (~27% per 3-hop transmission): the
        // ping-pong still completes, the extra time shows up as
        // retransmits, and the run stays deterministic.
        let run = || {
            let (t, ha, hb) = two_host_topo(None);
            let mut sim = Simulator::new(t, NetConfig::default(), 1);
            let log: Log = Arc::new(Mutex::new(Vec::new()));
            sim.spawn(
                hb,
                Box::new(Echo {
                    log: log.clone(),
                    port: 5000,
                }),
            );
            sim.spawn(
                ha,
                Box::new(Pinger {
                    log: log.clone(),
                    peer: (hb, 5000),
                    size: 100_000,
                    sent_at: None,
                    flow: None,
                }),
            );
            sim.install_faults(
                FaultPlan::new(0xD0)
                    .drop_messages(0.1, false)
                    .retransmit(SimDuration::from_millis(20), 8),
            );
            sim.run();
            let out = log.lock().clone();
            (out, sim.stats().clone())
        };
        let (log, stats) = run();
        assert!(log.iter().any(|l| l.starts_with("rtt_ns")), "{log:?}");
        assert!(stats.chunks_dropped > 0);
        assert!(stats.retransmits > 0);
        assert_eq!(stats.messages_lost, 0, "budget should not exhaust");
        let (log2, stats2) = run();
        assert_eq!(log, log2);
        assert_eq!(stats.retransmits, stats2.retransmits);
    }

    #[test]
    fn retransmit_exhaustion_severs_flow_with_lost() {
        // A link that stays down longer than the whole retransmit
        // budget: the transport gives up and both ends see `Lost`.
        let (t, ha, hb) = two_host_topo(None);
        let mut sim = Simulator::new(t, NetConfig::default(), 1);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        sim.spawn(
            hb,
            Box::new(Echo {
                log: log.clone(),
                port: 5000,
            }),
        );
        sim.spawn(
            ha,
            Box::new(Streamer {
                log: log.clone(),
                peer: (hb, 5000),
                flow: None,
            }),
        );
        // WAN link is index 1 (swa<->swb). Down "forever" relative to
        // 3 x 10ms retransmits.
        sim.install_faults(
            FaultPlan::new(2)
                .link_down(
                    LinkId(1),
                    SimDuration::from_millis(5),
                    SimDuration::from_secs(3600),
                )
                .retransmit(SimDuration::from_millis(10), 3),
        );
        sim.run_until(SimTime(SimDuration::from_secs(2).nanos()));
        let final_log = log.lock().clone();
        assert!(
            final_log.iter().any(|l| l == "closed Lost"),
            "{final_log:?}"
        );
        assert!(sim.stats().messages_lost > 0);
    }

    #[test]
    fn crash_restart_revives_actor_in_place() {
        // Echo crashes at 30ms and is revived at 80ms. The streamer
        // sees PeerCrashed, reconnects, and gets echoes again.
        struct Redialer {
            log: Log,
            peer: (NodeId, u16),
            flow: Option<FlowId>,
        }
        impl Actor for Redialer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.peer, 0);
            }
            fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
                match ev {
                    FlowEvent::Connected { flow, .. } => {
                        self.flow = Some(flow);
                        ctx.set_timer(SimDuration::from_millis(10), 1);
                    }
                    FlowEvent::Closed { reason, .. } => {
                        self.log.lock().push(format!("closed {reason:?}"));
                        self.flow = None;
                        ctx.set_timer(SimDuration::from_millis(25), 2);
                    }
                    FlowEvent::Refused { .. } => {
                        // Server still down: keep retrying.
                        ctx.set_timer(SimDuration::from_millis(25), 2);
                    }
                    _ => {}
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                match token {
                    1 => {
                        if let Some(f) = self.flow {
                            ctx.send(f, 100, ()).ok();
                            ctx.set_timer(SimDuration::from_millis(10), 1);
                        }
                    }
                    _ => {
                        if self.flow.is_none() {
                            ctx.connect(self.peer, 0);
                        }
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Delivery) {
                self.log.lock().push(format!("pong at {}", ctx.now()));
            }
        }

        let (t, ha, hb) = two_host_topo(None);
        let mut sim = Simulator::new(t, NetConfig::default(), 1);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let echo_id = sim.spawn(
            hb,
            Box::new(Echo {
                log: log.clone(),
                port: 5000,
            }),
        );
        sim.spawn(
            ha,
            Box::new(Redialer {
                log: log.clone(),
                peer: (hb, 5000),
                flow: None,
            }),
        );
        let restart_log = log.clone();
        sim.install_faults(FaultPlan::new(7).crash_restart(
            echo_id,
            SimDuration::from_millis(30),
            SimDuration::from_millis(50),
            move || {
                Box::new(Echo {
                    log: restart_log.clone(),
                    port: 5000,
                })
            },
        ));
        sim.run_until(SimTime(SimDuration::from_millis(300).nanos()));
        let final_log = log.lock().clone();
        assert!(
            final_log.iter().any(|l| l == "closed PeerCrashed"),
            "{final_log:?}"
        );
        // Two separate accepts: original and post-restart reconnect.
        let accepts = final_log.iter().filter(|l| *l == "accepted").count();
        assert_eq!(accepts, 2, "{final_log:?}");
        let crash_pos = final_log
            .iter()
            .position(|l| l == "closed PeerCrashed")
            .unwrap();
        assert!(
            final_log[crash_pos..].iter().any(|l| l.starts_with("pong")),
            "no echo after restart: {final_log:?}"
        );
        assert_eq!(sim.stats().actor_crashes, 1);
        assert_eq!(sim.stats().actor_restarts, 1);
    }

    #[test]
    fn delay_spike_slows_round_trip() {
        let rtt_with = |spike: Option<SimDuration>| {
            let (t, ha, hb) = two_host_topo(None);
            let mut sim = Simulator::new(t, NetConfig::default(), 1);
            let log: Log = Arc::new(Mutex::new(Vec::new()));
            sim.spawn(
                hb,
                Box::new(Echo {
                    log: log.clone(),
                    port: 5000,
                }),
            );
            sim.spawn(
                ha,
                Box::new(Pinger {
                    log: log.clone(),
                    peer: (hb, 5000),
                    size: 100,
                    sent_at: None,
                    flow: None,
                }),
            );
            if let Some(extra) = spike {
                sim.install_faults(FaultPlan::new(1).delay_spike(
                    SimDuration::ZERO,
                    SimDuration::from_secs(10),
                    extra,
                ));
            }
            sim.run();
            let rtt = log
                .lock()
                .iter()
                .find_map(|l| l.strip_prefix("rtt_ns ").map(|v| v.parse::<u64>().unwrap()))
                .unwrap();
            rtt
        };
        let base = rtt_with(None);
        let spiked = rtt_with(Some(SimDuration::from_millis(5)));
        // 6 link traversals gain >= 5ms each.
        assert!(spiked > base + 29_000_000, "base {base} spiked {spiked}");
    }

    #[test]
    fn kill_actor_resets_peer_flows() {
        let (t, ha, hb) = two_host_topo(None);
        let mut sim = Simulator::new(t, NetConfig::default(), 1);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let echo_id = sim.spawn(
            hb,
            Box::new(Echo {
                log: log.clone(),
                port: 5000,
            }),
        );
        sim.spawn(
            ha,
            Box::new(Streamer {
                log: log.clone(),
                peer: (hb, 5000),
                flow: None,
            }),
        );
        sim.run_until(SimTime(SimDuration::from_millis(50).nanos()));
        sim.kill_actor(echo_id);
        sim.run();
        assert!(
            log.lock().iter().any(|l| l == "closed PeerCrashed"),
            "{:?}",
            log.lock()
        );
    }
}
