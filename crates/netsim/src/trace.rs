//! Optional human-readable event trace.
//!
//! The experiment harness regenerates the paper's architecture figures
//! (Figs. 2-4) as traces of the actual protocol steps; integration
//! tests assert on the step sequences.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Ring buffer of trace lines. Disabled by default: tracing formats
/// strings, which would distort large benchmark runs.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    lines: VecDeque<(SimTime, String)>,
    capacity: usize,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            enabled: false,
            lines: VecDeque::new(),
            capacity: 65536,
        }
    }
}

impl Trace {
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    pub fn disable(&mut self) {
        self.enabled = false;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn log(&mut self, at: SimTime, line: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
        }
        self.lines.push_back((at, line()));
    }

    pub fn lines(&self) -> impl Iterator<Item = &(SimTime, String)> {
        self.lines.iter()
    }

    /// All lines containing `needle`, in order.
    pub fn grep(&self, needle: &str) -> Vec<&str> {
        self.lines
            .iter()
            .filter(|(_, l)| l.contains(needle))
            .map(|(_, l)| l.as_str())
            .collect()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for (t, l) in &self.lines {
            out.push_str(&format!("[{t}] {l}\n"));
        }
        out
    }

    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::default();
        tr.log(SimTime(1), || "x".into());
        assert_eq!(tr.lines().count(), 0);
    }

    #[test]
    fn enabled_trace_records_and_greps() {
        let mut tr = Trace::default();
        tr.enable();
        tr.log(SimTime(1), || "connect a->b".into());
        tr.log(SimTime(2), || "deliver b".into());
        assert_eq!(tr.lines().count(), 2);
        assert_eq!(tr.grep("connect"), vec!["connect a->b"]);
        assert!(tr.render().contains("deliver b"));
        tr.clear();
        assert_eq!(tr.lines().count(), 0);
    }
}
