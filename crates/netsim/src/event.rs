//! The event queue.
//!
//! A binary heap keyed on `(time, seq)`: `seq` is a monotonically
//! increasing tie-breaker so simultaneous events fire in scheduling
//! order, making every run deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry; `T` is the engine's event payload type.
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic min-queue of timed events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(5), ());
        q.schedule(SimTime(3), ());
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 1);
    }
}
