//! Network topology: sites, hosts, switches, links, and static routing.
//!
//! The model matches the paper's Figure 5: each *site* (RWCP, ETL) owns
//! a LAN of hosts behind an optional border firewall; sites meet on a
//! WAN segment. We represent the graph explicitly — hosts and switches
//! are nodes, cables are duplex links — and route with Dijkstra on link
//! latency, so a packet's hop sequence (and therefore which firewalls
//! it crosses) falls out of the graph rather than being asserted.

use crate::time::SimDuration;
use firewall::Policy;

/// Index of any node (host or switch) in the topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a site (firewall domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteId(pub u16);

/// Index of a duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

/// What kind of node this is. Only hosts run actors and terminate
/// flows; switches only forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Host,
    Switch,
}

/// A node in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    pub name: String,
    pub kind: NodeKind,
    pub site: SiteId,
    /// Relative compute rate for workload modelling (work units per
    /// simulated second per processor). Zero for switches.
    pub cpu_rate: f64,
    /// Number of processors (the paper's hosts range from 1-way PC
    /// nodes to a 16-CPU Origin 2000).
    pub cpus: u32,
}

/// A full-duplex link. Each direction has independent capacity.
#[derive(Debug, Clone)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    /// One-way propagation + forwarding latency.
    pub latency: SimDuration,
    /// Effective goodput in bytes/second. We calibrate this to the
    /// paper's *measured direct* throughput (TCP goodput), not the wire
    /// rate — see `wacs-core::calibration`.
    pub bandwidth: f64,
    pub name: String,
}

/// A site: a named firewall domain.
#[derive(Debug, Clone)]
pub struct Site {
    pub name: String,
    /// `None` means the site is open (no border firewall) — like ETL's
    /// public hosts in the paper.
    pub policy: Option<Policy>,
}

/// The static network description.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    pub nodes: Vec<Node>,
    pub links: Vec<Link>,
    pub sites: Vec<Site>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_site(&mut self, name: impl Into<String>, policy: Option<Policy>) -> SiteId {
        let id = SiteId(self.sites.len() as u16);
        self.sites.push(Site {
            name: name.into(),
            policy,
        });
        id
    }

    pub fn add_host(&mut self, name: impl Into<String>, site: SiteId) -> NodeId {
        self.add_node(name, NodeKind::Host, site, 1.0, 1)
    }

    pub fn add_host_with_cpu(
        &mut self,
        name: impl Into<String>,
        site: SiteId,
        cpu_rate: f64,
        cpus: u32,
    ) -> NodeId {
        self.add_node(name, NodeKind::Host, site, cpu_rate, cpus)
    }

    pub fn add_switch(&mut self, name: impl Into<String>, site: SiteId) -> NodeId {
        self.add_node(name, NodeKind::Switch, site, 0.0, 0)
    }

    fn add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        site: SiteId,
        cpu_rate: f64,
        cpus: u32,
    ) -> NodeId {
        assert!(
            (site.0 as usize) < self.sites.len(),
            "site {site:?} not defined"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.into(),
            kind,
            site,
            cpu_rate,
            cpus,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Add a full-duplex link.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: SimDuration,
        bandwidth_bytes_per_sec: f64,
    ) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!(
            bandwidth_bytes_per_sec > 0.0,
            "link needs positive bandwidth"
        );
        let id = LinkId(self.links.len() as u32);
        let name = format!("{}<->{}", self.node(a).name, self.node(b).name);
        self.links.push(Link {
            a,
            b,
            latency,
            bandwidth: bandwidth_bytes_per_sec,
            name,
        });
        self.adjacency[a.0 as usize].push((b, id));
        self.adjacency[b.0 as usize].push((a, id));
        id
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0 as usize]
    }

    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.node(node).site
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn find_host(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Shortest path (by cumulative latency, hops as tie-break) from
    /// `src` to `dst`, as the sequence of links to traverse. Returns
    /// `None` if disconnected.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        // Dijkstra over (latency_ns, hops).
        let n = self.nodes.len();
        let mut dist: Vec<(u64, u32)> = vec![(u64::MAX, u32::MAX); n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[src.0 as usize] = (0, 0);
        heap.push(std::cmp::Reverse(((0u64, 0u32), src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u.0 as usize] {
                continue;
            }
            if u == dst {
                break;
            }
            for &(v, lid) in &self.adjacency[u.0 as usize] {
                let w = self.link(lid).latency.nanos();
                let nd = (d.0 + w, d.1 + 1);
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    prev[v.0 as usize] = Some((u, lid));
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        if dist[dst.0 as usize].0 == u64::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            // A finite distance guarantees a predecessor; treat a broken
            // chain as unroutable rather than aborting.
            let (p, lid) = prev[cur.0 as usize]?;
            path.push(lid);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Node sequence (including endpoints) corresponding to a link path
    /// starting at `src`.
    pub fn path_nodes(&self, src: NodeId, path: &[LinkId]) -> Vec<NodeId> {
        let mut nodes = vec![src];
        let mut cur = src;
        for &lid in path {
            let l = self.link(lid);
            cur = if l.a == cur { l.b } else { l.a };
            nodes.push(cur);
        }
        nodes
    }

    /// Sum of one-way latencies along a route.
    pub fn path_latency(&self, path: &[LinkId]) -> SimDuration {
        SimDuration(path.iter().map(|&l| self.link(l).latency.nanos()).sum())
    }

    /// Minimum bandwidth along a route (`f64::INFINITY` for the empty
    /// path, i.e. a host talking to itself).
    pub fn path_bandwidth(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|&l| self.link(l).bandwidth)
            .fold(f64::INFINITY, f64::min)
    }

    /// Ordered list of site boundaries a path crosses, as
    /// `(from_site, to_site)` pairs, for firewall evaluation.
    pub fn site_crossings(&self, src: NodeId, path: &[LinkId]) -> Vec<(SiteId, SiteId)> {
        let nodes = self.path_nodes(src, path);
        nodes
            .windows(2)
            .filter_map(|w| {
                let (sa, sb) = (self.site_of(w[0]), self.site_of(w[1]));
                (sa != sb).then_some((sa, sb))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// Two sites: [h0 - sw1] -lan- gw? simple line h0-s0-s1-h1.
    fn line() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let site_a = t.add_site("a", None);
        let site_b = t.add_site("b", None);
        let h0 = t.add_host("h0", site_a);
        let s0 = t.add_switch("s0", site_a);
        let s1 = t.add_switch("s1", site_b);
        let h1 = t.add_host("h1", site_b);
        t.add_link(h0, s0, ms(1), 1e6);
        t.add_link(s0, s1, ms(10), 1e5);
        t.add_link(s1, h1, ms(1), 1e6);
        (t, h0, h1)
    }

    #[test]
    fn route_on_a_line() {
        let (t, h0, h1) = line();
        let path = t.route(h0, h1).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(t.path_latency(&path), ms(12));
        assert_eq!(t.path_bandwidth(&path), 1e5);
        let nodes = t.path_nodes(h0, &path);
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0], h0);
        assert_eq!(nodes[3], h1);
    }

    #[test]
    fn route_to_self_is_empty() {
        let (t, h0, _) = line();
        let path = t.route(h0, h0).unwrap();
        assert!(path.is_empty());
        assert_eq!(t.path_latency(&path), SimDuration::ZERO);
        assert!(t.path_bandwidth(&path).is_infinite());
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut t = Topology::new();
        let s = t.add_site("a", None);
        let h0 = t.add_host("h0", s);
        let h1 = t.add_host("h1", s);
        assert!(t.route(h0, h1).is_none());
    }

    #[test]
    fn dijkstra_prefers_lower_latency() {
        let mut t = Topology::new();
        let s = t.add_site("a", None);
        let h0 = t.add_host("h0", s);
        let h1 = t.add_host("h1", s);
        let mid = t.add_switch("mid", s);
        // Direct but slow link vs two-hop fast path.
        t.add_link(h0, h1, ms(30), 1e6);
        t.add_link(h0, mid, ms(5), 1e6);
        t.add_link(mid, h1, ms(5), 1e6);
        let path = t.route(h0, h1).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(t.path_latency(&path), ms(10));
    }

    #[test]
    fn site_crossings_detected() {
        let (t, h0, h1) = line();
        let path = t.route(h0, h1).unwrap();
        let xs = t.site_crossings(h0, &path);
        assert_eq!(xs, vec![(SiteId(0), SiteId(1))]);
        // And none within a site.
        let (t2, h0b, _) = line();
        let p2 = t2.route(h0b, t2.find_host("h0").unwrap()).unwrap();
        assert!(t2.site_crossings(h0b, &p2).is_empty());
    }

    #[test]
    fn find_host_by_name() {
        let (t, h0, _) = line();
        assert_eq!(t.find_host("h0"), Some(h0));
        assert_eq!(t.find_host("nope"), None);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let s = t.add_site("a", None);
        let h = t.add_host("h", s);
        t.add_link(h, h, ms(1), 1e6);
    }
}
