//! Simulated time.
//!
//! Virtual time is kept in integer nanoseconds so event ordering is
//! exact and runs are bit-reproducible; floating point appears only at
//! the edges (bandwidth arithmetic), always rounded up to the next tick
//! so a transfer never finishes early.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since `earlier`; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Convert from fractional seconds, rounding *up* to the next
    /// nanosecond (transfers never complete early).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9).ceil() as u64)
    }

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    // Subtracting a later time is a scheduler bug; the panic is part of
    // the contract (see the `should_panic` test below).
    #[allow(clippy::expect_used)]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("time went backwards")) // lint:allow(unwrap-panic)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.4}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.nanos(), 3_000_000);
        let t2 = t + SimDuration::from_micros(5);
        assert_eq!((t2 - t).nanos(), 5_000);
        assert_eq!(t2.since(t), SimDuration::from_micros(5));
        assert_eq!(t.since(t2), SimDuration::ZERO); // saturating
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn sub_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn fractional_seconds_round_up() {
        // 1 byte at 3 bytes/sec = 0.333…s must not round down.
        let d = SimDuration::from_secs_f64(1.0 / 3.0);
        assert!(d.nanos() >= 333_333_333);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.0000s");
    }
}
