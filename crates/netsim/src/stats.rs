//! Run statistics: per-link, per-flow and global counters, collected by
//! the engine as a side effect of event processing.

use crate::time::{SimDuration, SimTime};
use crate::topology::LinkId;

/// Per-link, per-direction accounting. Direction 0 is a→b.
#[derive(Debug, Default, Clone)]
pub struct LinkStats {
    pub wire_bytes: [u64; 2],
    pub chunks: [u64; 2],
    /// Cumulative serialization (busy) time.
    pub busy: [SimDuration; 2],
}

impl LinkStats {
    /// Utilization of one direction over a horizon (0..=1, can exceed 1
    /// only through accounting error — asserted against in tests).
    pub fn utilization(&self, dir: usize, horizon: SimDuration) -> f64 {
        if horizon.nanos() == 0 {
            return 0.0;
        }
        self.busy[dir].nanos() as f64 / horizon.nanos() as f64
    }

    pub fn total_bytes(&self) -> u64 {
        self.wire_bytes[0] + self.wire_bytes[1]
    }
}

/// Whole-run statistics.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    links: Vec<LinkStats>,
    pub events_processed: u64,
    pub messages_sent: u64,
    pub messages_delivered: u64,
    pub messages_filtered: u64,
    pub payload_bytes_delivered: u64,
    pub flows_opened: u64,
    pub flows_refused: u64,
    pub flows_closed: u64,
    /// Chunks lost to fault injection (drop probability, link-down).
    pub chunks_dropped: u64,
    /// End-to-end retransmissions triggered by lost chunks.
    pub retransmits: u64,
    /// Chunks abandoned after the retransmit budget ran out (the
    /// owning flow was severed with `CloseReason::Lost`).
    pub messages_lost: u64,
    /// Actors killed by fault injection.
    pub actor_crashes: u64,
    /// Actors revived by fault injection.
    pub actor_restarts: u64,
    /// Sum of message delivery latencies, for a quick mean.
    pub latency_sum: SimDuration,
}

impl Stats {
    pub fn ensure_links(&mut self, n: usize) {
        if self.links.len() < n {
            self.links.resize(n, LinkStats::default());
        }
    }

    pub fn link(&self, id: LinkId) -> &LinkStats {
        &self.links[id.0 as usize]
    }

    pub fn link_mut(&mut self, id: LinkId) -> &mut LinkStats {
        &mut self.links[id.0 as usize]
    }

    pub fn record_chunk(&mut self, id: LinkId, dir: usize, wire_bytes: u64, ser: SimDuration) {
        let l = self.link_mut(id);
        l.wire_bytes[dir] += wire_bytes;
        l.chunks[dir] += 1;
        l.busy[dir] = l.busy[dir] + ser;
    }

    pub fn record_delivery(&mut self, payload_bytes: u64, sent_at: SimTime, now: SimTime) {
        self.messages_delivered += 1;
        self.payload_bytes_delivered += payload_bytes;
        self.latency_sum = self.latency_sum + now.since(sent_at);
    }

    /// Mean end-to-end message latency.
    pub fn mean_latency(&self) -> Option<SimDuration> {
        self.latency_sum
            .nanos()
            .checked_div(self.messages_delivered)
            .map(SimDuration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_accounting() {
        let mut s = Stats::default();
        s.ensure_links(2);
        s.record_chunk(LinkId(1), 0, 1500, SimDuration::from_micros(120));
        s.record_chunk(LinkId(1), 0, 1500, SimDuration::from_micros(120));
        s.record_chunk(LinkId(1), 1, 60, SimDuration::from_micros(5));
        let l = s.link(LinkId(1));
        assert_eq!(l.wire_bytes[0], 3000);
        assert_eq!(l.chunks[0], 2);
        assert_eq!(l.wire_bytes[1], 60);
        assert_eq!(l.total_bytes(), 3060);
        let u = l.utilization(0, SimDuration::from_millis(1));
        assert!((u - 0.24).abs() < 1e-9, "{u}");
        assert_eq!(l.utilization(0, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn mean_latency() {
        let mut s = Stats::default();
        assert!(s.mean_latency().is_none());
        s.record_delivery(10, SimTime(0), SimTime(1000));
        s.record_delivery(10, SimTime(0), SimTime(3000));
        assert_eq!(s.mean_latency().unwrap().nanos(), 2000);
        assert_eq!(s.payload_bytes_delivered, 20);
    }
}
