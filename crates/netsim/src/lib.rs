//! `netsim` — a deterministic discrete-event network simulator.
//!
//! This crate is the substrate substituting for the paper's physical
//! testbed (two Japanese research sites joined by a 1.5 Mbps WAN, each
//! LAN behind a deny-based border firewall). It provides:
//!
//! * virtual time ([`time`]) and a deterministic event queue ([`event`]);
//! * an explicit network graph with sites, hosts, switches and links,
//!   plus latency-weighted shortest-path routing ([`topology`]);
//! * a sim-TCP connection layer with listeners, ephemeral ports,
//!   chunked store-and-forward transfers, per-link FIFO contention and
//!   firewall filtering at every site boundary ([`engine`], [`flow`]);
//! * an actor model for simulated processes ([`actor`]);
//! * seeded fault injection — link outages, probabilistic loss with
//!   transport retransmit, delay spikes, actor crash/restart
//!   ([`fault`]);
//! * statistics ([`stats`]) and protocol traces ([`trace`]).
//!
//! Every run is a pure function of `(topology, actors, seed)`; the
//! `deterministic_runs` test pins this property.
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut topo = Topology::new();
//! let site = topo.add_site("lab", None);
//! let a = topo.add_host("a", site);
//! let b = topo.add_host("b", site);
//! topo.add_link(a, b, SimDuration::from_micros(100), 12.5e6);
//!
//! struct Hello;
//! impl Actor for Hello {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.listen(7).unwrap();
//!     }
//! }
//!
//! let mut sim = Simulator::new(topo, NetConfig::default(), 42);
//! sim.spawn(b, Box::new(Hello));
//! sim.run();
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod actor;
pub mod engine;
pub mod event;
pub mod fault;
pub mod flow;
pub mod obs;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenient glob import for simulation code.
pub mod prelude {
    pub use crate::actor::{Actor, ActorId, Delivery, FlowEvent, Payload, SendError};
    pub use crate::engine::{Ctx, NetConfig, Simulator};
    pub use crate::fault::{FaultPlan, RestartFactory, RetransmitPolicy};
    pub use crate::flow::{CloseReason, FlowId, PortError, RefuseReason};
    pub use crate::rng::SimRng;
    pub use crate::stats::Stats;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{LinkId, NodeId, SiteId, Topology};
}

pub use prelude::*;
