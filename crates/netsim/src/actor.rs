//! Actors: the processes of a simulation.
//!
//! Every daemon and application process from the paper (outer/inner
//! proxy servers, gatekeeper, Q servers, knapsack master and slaves…)
//! is an [`Actor`] installed on a host. Actors are single-threaded
//! state machines driven by the engine: they react to timers, flow
//! events and message deliveries, and act on the world exclusively
//! through the [`Ctx`] handed to each callback.

use crate::flow::{CloseReason, FlowId, RefuseReason};
use crate::time::SimTime;
use crate::topology::NodeId;
use std::any::Any;

/// Index of an actor in the simulator's registry.
pub type ActorId = usize;

/// Message payload: timing is driven by the declared byte size; the
/// typed content rides along for the receiving actor to downcast. This
/// is the standard DES trick — we account for serialization cost
/// without actually serializing.
pub type Payload = Box<dyn Any + Send>;

/// A delivered message.
pub struct Delivery {
    pub flow: FlowId,
    /// Payload size in bytes as declared by the sender (drives timing).
    pub size: u64,
    pub payload: Payload,
    pub sent_at: SimTime,
}

impl Delivery {
    /// Downcast the payload, panicking with a useful message on type
    /// confusion (a bug in the protocol wiring, not a runtime input —
    /// the abort is the documented contract of this method).
    #[allow(clippy::panic)]
    pub fn expect<T: 'static>(self) -> T {
        *self
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("unexpected payload type on flow {:?}", self.flow))
        // lint:allow(unwrap-panic)
    }

    /// Non-consuming typed view.
    pub fn peek<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

/// Connection lifecycle notifications.
#[derive(Debug)]
pub enum FlowEvent {
    /// A connect you initiated completed. `token` is the value you
    /// passed to [`Ctx::connect`].
    Connected {
        flow: FlowId,
        token: u64,
        peer: (NodeId, u16),
    },
    /// A connect you initiated failed.
    Refused {
        token: u64,
        peer: (NodeId, u16),
        reason: RefuseReason,
    },
    /// A peer connected to one of your listening ports.
    Accepted {
        flow: FlowId,
        listen_port: u16,
        peer: (NodeId, u16),
    },
    /// A flow you were party to ended.
    Closed { flow: FlowId, reason: CloseReason },
}

/// A simulated process.
///
/// All callbacks default to no-ops so simple actors implement only what
/// they need.
pub trait Actor: Send {
    /// Called once at simulation start (or on spawn for actors created
    /// mid-run).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A timer set with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// A connection lifecycle event occurred.
    fn on_flow(&mut self, _ctx: &mut Ctx<'_>, _ev: FlowEvent) {}

    /// A message arrived on one of your flows.
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Delivery) {}

    /// Human-readable name for traces.
    fn name(&self) -> &str {
        "actor"
    }
}

/// Error returned by [`Ctx::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    UnknownFlow,
    NotEstablished,
    NotYourFlow,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SendError::UnknownFlow => "unknown flow",
            SendError::NotEstablished => "flow not established",
            SendError::NotYourFlow => "actor is not a party to this flow",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SendError {}

/// The world handle passed to actor callbacks.
///
/// Implemented in `engine.rs`; re-exported here so actor code reads
/// naturally (`use netsim::actor::{Actor, Ctx}`).
pub use crate::engine::Ctx;
