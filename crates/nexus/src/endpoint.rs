//! Endpoints: the passive (receiving) half of a Nexus channel.
//!
//! An endpoint owns a listener (registered with the Nexus Proxy when
//! one is configured), an acceptor thread, and one reader thread per
//! attached startpoint. All arriving messages multiplex into a single
//! queue, preserving per-startpoint order.

use crate::context::NexusContext;
use crate::msg::recv_frame;
use crate::ports::PortPolicy;
use nexus_proxy::{nx_proxy_bind, NxListener};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use wacs_sync::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

/// Queue depth before senders block (struggling consumers exert
/// backpressure on readers, as a real socket buffer would).
const QUEUE_DEPTH: usize = 4096;

/// A receiving endpoint.
pub struct Endpoint {
    advertised: (String, u16),
    rx: Receiver<Vec<u8>>,
    stop: Arc<AtomicBool>,
    // Handshake-acceptance tally shared with the accept thread; not
    // registry-backed (nexus has no registry). lint:allow(bare-atomic-counter)
    accepted: Arc<AtomicU64>,
    inproc_key: (String, u16),
    exchange: crate::startpoint::InProcExchange,
}

impl Endpoint {
    pub(crate) fn create(ctx: &NexusContext) -> io::Result<Endpoint> {
        let (tx, rx) = bounded::<Vec<u8>>(QUEUE_DEPTH);
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0)); // lint:allow(bare-atomic-counter)

        let listener: NxListener = match ctx.port_policy() {
            PortPolicy::Dynamic => nx_proxy_bind(ctx.net(), ctx.proxy_env(), ctx.host())?,
            PortPolicy::Range { .. } => {
                // Port-range mode is the no-proxy alternative: bind a
                // port inside the range and advertise it directly.
                let mut bound = None;
                let mut last: Option<io::Error> = None;
                for port in ctx.next_listen_candidates() {
                    match crate::range_bind(ctx, port) {
                        Ok(l) => {
                            bound = Some(l);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                bound.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::AddrInUse, "port range exhausted")
                    })
                })?
            }
        };
        let advertised = listener.advertised.clone();
        listener.set_nonblocking(true)?;

        // Acceptor thread: accepts attachments, spawns a reader each.
        {
            let stop = stop.clone();
            let tx = tx.clone();
            let accepted = accepted.clone();
            thread::spawn(move || {
                let listener = listener; // keep registration alive
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok(stream) => {
                            stream.set_nonblocking(false).ok();
                            stream.set_nodelay(true).ok();
                            accepted.fetch_add(1, Ordering::Relaxed);
                            spawn_reader(stream, tx.clone(), stop.clone());
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(1)); // lint:allow(bare-sleep) — nonblocking accept poll.
                        }
                        Err(_) => break,
                    }
                }
            });
        }

        // Register for same-process short-circuiting.
        let inproc_key = advertised.clone();
        ctx.inproc().register(inproc_key.clone(), tx);

        Ok(Endpoint {
            advertised,
            rx,
            stop,
            accepted,
            inproc_key,
            exchange: ctx.inproc().clone(),
        })
    }

    /// The address remote startpoints should attach to. Under a proxy
    /// this names the outer server's rendezvous port, exactly as the
    /// paper requires ("address information … should be changed to
    /// indicate the Nexus Proxy server").
    pub fn advertised(&self) -> (&str, u16) {
        (&self.advertised.0, self.advertised.1)
    }

    /// Blocking receive.
    pub fn recv(&self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "endpoint closed"))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> io::Result<Option<Vec<u8>>> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "endpoint closed"))
            }
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, d: Duration) -> io::Result<Option<Vec<u8>>> {
        match self.rx.recv_timeout(d) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "endpoint closed"))
            }
        }
    }

    /// Number of startpoints that have attached over the network.
    pub fn attachments(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Messages waiting in the queue.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.exchange.unregister(&self.inproc_key);
    }
}

fn spawn_reader(stream: std::net::TcpStream, tx: Sender<Vec<u8>>, stop: Arc<AtomicBool>) {
    thread::spawn(move || {
        let mut stream = stream;
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            match recv_frame(&mut stream) {
                Ok(Some(msg)) => {
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
                Ok(None) | Err(_) => break,
            }
        }
    });
}
