//! The per-process Nexus context: which logical host we are, how we
//! reach the world (directly or via the Nexus Proxy), and which port
//! policy our listeners use.

use crate::endpoint::Endpoint;
use crate::ports::{PortAllocator, PortPolicy};
use crate::startpoint::{InProcExchange, Startpoint};
use firewall::vnet::VNet;
use nexus_proxy::ProxyEnv;
use std::io;
use std::sync::Arc;

/// Everything a Nexus process needs to communicate.
#[derive(Clone)]
pub struct NexusContext {
    net: VNet,
    host: String,
    env: ProxyEnv,
    ports: Arc<PortAllocator>,
    inproc: InProcExchange,
}

impl NexusContext {
    /// A context for a process on logical `host`, talking directly
    /// (no proxy) with dynamic ports — Globus 1.0 behaviour.
    pub fn direct(net: VNet, host: impl Into<String>) -> Self {
        NexusContext {
            net,
            host: host.into(),
            env: ProxyEnv::direct(),
            ports: Arc::new(PortAllocator::new(PortPolicy::Dynamic)),
            inproc: InProcExchange::new(),
        }
    }

    /// A context routed through the Nexus Proxy — the paper's patched
    /// Globus with `NEXUS_PROXY_OUTER_SERVER` set.
    pub fn via_proxy(net: VNet, host: impl Into<String>, outer: (impl Into<String>, u16)) -> Self {
        NexusContext {
            net,
            host: host.into(),
            env: ProxyEnv::via(outer.0, outer.1),
            ports: Arc::new(PortAllocator::new(PortPolicy::Dynamic)),
            inproc: InProcExchange::new(),
        }
    }

    /// Use a clamped listener port range — the Globus 1.1
    /// `TCP_MIN_PORT`/`TCP_MAX_PORT` alternative.
    pub fn with_port_policy(mut self, policy: PortPolicy) -> Self {
        self.ports = Arc::new(PortAllocator::new(policy));
        self
    }

    /// Share one in-proc exchange between contexts so co-located
    /// processes (threads) can bypass the socket stack, the way Nexus
    /// used shared-memory protocol modules within a node.
    pub fn with_shared_inproc(mut self, exchange: InProcExchange) -> Self {
        self.inproc = exchange;
        self
    }

    pub fn net(&self) -> &VNet {
        &self.net
    }

    pub fn host(&self) -> &str {
        &self.host
    }

    pub fn proxy_env(&self) -> &ProxyEnv {
        &self.env
    }

    pub fn port_policy(&self) -> PortPolicy {
        self.ports.policy()
    }

    pub(crate) fn inproc(&self) -> &InProcExchange {
        &self.inproc
    }

    /// Create a message endpoint (the passive side): binds a listener
    /// according to the port policy, registers with the proxy when
    /// configured, and starts the acceptor. The endpoint's
    /// `advertised()` address is what remote startpoints attach to.
    pub fn endpoint(&self) -> io::Result<Endpoint> {
        Endpoint::create(self)
    }

    /// Attach a startpoint to a remote endpoint (the active side).
    pub fn attach(&self, dst: (&str, u16)) -> io::Result<Startpoint> {
        Startpoint::attach(self, dst)
    }

    /// Attach with retries — MPI-style startup where the peer's
    /// endpoint may not exist yet.
    pub fn attach_retry(
        &self,
        dst: (&str, u16),
        attempts: u32,
        delay: std::time::Duration,
    ) -> io::Result<Startpoint> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match self.attach(dst) {
                Ok(sp) => return Ok(sp),
                Err(e) => {
                    // Firewall denials are never transient; fail fast.
                    if e.kind() == io::ErrorKind::PermissionDenied {
                        return Err(e);
                    }
                    last = Some(e);
                    std::thread::sleep(delay); // lint:allow(bare-sleep) — bounded retry backoff.
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "attach failed")))
    }

    pub(crate) fn next_listen_candidates(&self) -> Vec<u16> {
        self.ports.candidates(32)
    }
}
