//! Listener port selection policies.
//!
//! Globus 1.0 picked listener ports dynamically (any ephemeral port) —
//! unreachable through a deny-based firewall. Globus 1.1 added
//! `TCP_MIN_PORT`/`TCP_MAX_PORT` to clamp listeners into a range the
//! firewall could open — the alternative the paper critiques for its
//! exposure. Both policies are implemented here so the ablation bench
//! can compare them against the proxy.

use std::sync::atomic::{AtomicU16, Ordering};

/// How a process chooses listener ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPolicy {
    /// Any ephemeral port (Globus 1.0 behaviour).
    Dynamic,
    /// Restrict to `[min, max]` (Globus 1.1 `TCP_MIN_PORT`/`TCP_MAX_PORT`).
    Range { min: u16, max: u16 },
}

impl PortPolicy {
    pub fn range(min: u16, max: u16) -> Self {
        assert!(min <= max, "empty port range");
        PortPolicy::Range { min, max }
    }

    /// Number of inbound ports a firewall must open for this policy to
    /// work across it (the paper's security argument in one number).
    pub fn exposure(&self) -> u32 {
        match self {
            PortPolicy::Dynamic => 65536 - 1024, // effectively everything
            PortPolicy::Range { min, max } => u32::from(*max - *min) + 1,
        }
    }
}

/// Allocates candidate ports under a [`PortPolicy`].
#[derive(Debug)]
pub struct PortAllocator {
    policy: PortPolicy,
    next: AtomicU16,
}

impl PortAllocator {
    pub fn new(policy: PortPolicy) -> Self {
        let start = match policy {
            PortPolicy::Dynamic => 0, // 0 = "let the network pick"
            PortPolicy::Range { min, .. } => min,
        };
        PortAllocator {
            policy,
            next: AtomicU16::new(start),
        }
    }

    pub fn policy(&self) -> PortPolicy {
        self.policy
    }

    /// Next candidate port. For `Dynamic` this is always 0 (the bind
    /// layer allocates). For `Range`, ports rotate through the range;
    /// callers retry on bind conflicts.
    pub fn next(&self) -> u16 {
        match self.policy {
            PortPolicy::Dynamic => 0,
            PortPolicy::Range { min, max } => {
                let span = u32::from(max - min) + 1;
                let raw = self.next.fetch_add(1, Ordering::Relaxed);
                let off = u32::from(raw.wrapping_sub(min)) % span;
                min + off as u16
            }
        }
    }

    /// Candidate sequence of up to `n` ports to try.
    pub fn candidates(&self, n: usize) -> Vec<u16> {
        match self.policy {
            PortPolicy::Dynamic => vec![0],
            PortPolicy::Range { min, max } => {
                let span = usize::from(max - min) + 1;
                (0..n.min(span)).map(|_| self.next()).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_always_zero() {
        let a = PortAllocator::new(PortPolicy::Dynamic);
        assert_eq!(a.next(), 0);
        assert_eq!(a.next(), 0);
        assert_eq!(a.candidates(5), vec![0]);
    }

    #[test]
    fn range_rotates_within_bounds() {
        let a = PortAllocator::new(PortPolicy::range(10000, 10002));
        let seq: Vec<u16> = (0..7).map(|_| a.next()).collect();
        assert_eq!(seq, vec![10000, 10001, 10002, 10000, 10001, 10002, 10000]);
    }

    #[test]
    fn candidates_bounded_by_span() {
        let a = PortAllocator::new(PortPolicy::range(20000, 20004));
        assert_eq!(a.candidates(100).len(), 5);
        assert_eq!(a.candidates(2).len(), 2);
    }

    #[test]
    fn exposure_comparisons() {
        assert_eq!(PortPolicy::range(10000, 10999).exposure(), 1000);
        assert!(PortPolicy::Dynamic.exposure() > 60000);
        // The proxy scheme's analogue is a single port (NXPORT); both
        // Globus policies expose strictly more.
        assert!(PortPolicy::range(10000, 10000).exposure() == 1);
    }

    #[test]
    #[should_panic(expected = "empty port range")]
    fn inverted_range_panics() {
        PortPolicy::range(10, 9);
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Allocations from any configured range stay inside it.
    #[test]
    fn random_range_allocations_stay_in_range() {
        let mut r = test_rng(0x9087);
        for _ in 0..100 {
            let min = 1024 + (r() % 58976) as u16;
            let max = min.saturating_add((r() % 500) as u16);
            let a = PortAllocator::new(PortPolicy::range(min, max));
            let n = 1 + (r() % 64) as usize;
            for _ in 0..n {
                let p = a.next();
                assert!(p >= min && p <= max, "{p} outside [{min}, {max}]");
            }
        }
    }
}
