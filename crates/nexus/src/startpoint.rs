//! Startpoints: the active (sending) half of a Nexus channel, plus the
//! in-process exchange used when both halves live in one OS process.

use crate::context::NexusContext;
use crate::msg::send_frame;
use nexus_proxy::nx_proxy_connect;
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use wacs_sync::Mutex;
use wacs_sync::Sender;

/// Map from advertised logical address to the endpoint's queue sender.
type ExchangeMap = HashMap<(String, u16), Sender<Vec<u8>>>;

/// Registry of in-process endpoints: advertised address → queue sender.
///
/// Contexts that share an exchange short-circuit co-located traffic
/// (Nexus's intra-node protocol module); contexts with private
/// exchanges always use the socket path, which is what the
/// measurement harnesses want.
#[derive(Clone, Default)]
pub struct InProcExchange {
    map: Arc<Mutex<ExchangeMap>>,
}

impl InProcExchange {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn register(&self, addr: (String, u16), tx: Sender<Vec<u8>>) {
        self.map.lock().insert(addr, tx);
    }

    pub(crate) fn unregister(&self, addr: &(String, u16)) {
        self.map.lock().remove(addr);
    }

    pub(crate) fn lookup(&self, addr: &(String, u16)) -> Option<Sender<Vec<u8>>> {
        self.map.lock().get(addr).cloned()
    }

    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

enum Inner {
    /// Framed TCP (possibly through the Nexus Proxy — the stream is
    /// whatever `NXProxyConnect` returned).
    Tcp(Mutex<TcpStream>),
    /// Same-process fast path.
    InProc(Sender<Vec<u8>>),
}

/// A one-way message channel to a remote endpoint.
pub struct Startpoint {
    inner: Inner,
    dst: (String, u16),
}

impl std::fmt::Debug for Startpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.inner {
            Inner::Tcp(_) => "tcp",
            Inner::InProc(_) => "inproc",
        };
        write!(f, "Startpoint({kind} -> {}:{})", self.dst.0, self.dst.1)
    }
}

impl Startpoint {
    pub(crate) fn attach(ctx: &NexusContext, dst: (&str, u16)) -> io::Result<Startpoint> {
        let key = (dst.0.to_string(), dst.1);
        if let Some(tx) = ctx.inproc().lookup(&key) {
            return Ok(Startpoint {
                inner: Inner::InProc(tx),
                dst: key,
            });
        }
        let stream = nx_proxy_connect(ctx.net(), ctx.proxy_env(), ctx.host(), dst)?;
        stream.set_nodelay(true).ok();
        Ok(Startpoint {
            inner: Inner::Tcp(Mutex::new(stream)),
            dst: key,
        })
    }

    /// Send one message. Messages on a startpoint are delivered in
    /// order; interleaving across startpoints is unordered.
    pub fn send(&self, payload: &[u8]) -> io::Result<()> {
        match &self.inner {
            Inner::Tcp(stream) => send_frame(&mut *stream.lock(), payload),
            Inner::InProc(tx) => tx
                .send(payload.to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "endpoint dropped")),
        }
    }

    /// The advertised address this startpoint attached to.
    pub fn peer(&self) -> (&str, u16) {
        (&self.dst.0, self.dst.1)
    }

    /// True if this startpoint bypasses the network entirely.
    pub fn is_inproc(&self) -> bool {
        matches!(self.inner, Inner::InProc(_))
    }
}
