//! `nexus` — a Nexus-style communication library.
//!
//! Globus's communication layer (Nexus) exposes *startpoints* and
//! *endpoints*: one-way, message-oriented channels established by
//! attaching a startpoint to an endpoint's advertised address. This
//! crate reproduces that model over the firewall-guarded virtual
//! network, with the three behaviours the paper contrasts:
//!
//! * **dynamic ports, direct sockets** — Globus 1.0; broken across a
//!   deny-based firewall;
//! * **`TCP_MIN_PORT`/`TCP_MAX_PORT` ranges** — Globus 1.1; works only
//!   if the firewall opens the whole range ([`ports::PortPolicy`]);
//! * **the Nexus Proxy** — the paper's approach; endpoints advertise a
//!   rendezvous address on the outer server and startpoints attach
//!   through the relay.
//!
//! Switching between them is one constructor call on
//! [`NexusContext`] — the crate-level analogue of setting
//! `NEXUS_PROXY_OUTER_SERVER`/`NEXUS_PROXY_INNER_SERVER`.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod context;
pub mod endpoint;
pub mod msg;
pub mod ports;
pub mod startpoint;

pub use context::NexusContext;
pub use endpoint::Endpoint;
pub use ports::{PortAllocator, PortPolicy};
pub use startpoint::{InProcExchange, Startpoint};

use nexus_proxy::NxListener;
use std::io;

/// Bind a specific logical port directly (no proxy) — used by the
/// port-range policy.
pub(crate) fn range_bind(ctx: &NexusContext, port: u16) -> io::Result<NxListener> {
    ctx.net().bind(ctx.host(), port).map(NxListener::direct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firewall::vnet::VNet;
    use firewall::{Policy, NXPORT, OUTER_PORT};
    use nexus_proxy::{InnerConfig, InnerServer, OuterConfig, OuterServer};
    use std::time::Duration;

    struct World {
        net: VNet,
        _outer: OuterServer,
        _inner: InnerServer,
    }

    fn world() -> World {
        let net = VNet::new();
        let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
        let dmz = net.add_site("dmz", None);
        let etl = net.add_site("etl", None);
        net.add_host("rwcp-sun", rwcp);
        net.add_host("compas0", rwcp);
        let inner_ref = net.add_host("rwcp-inner", rwcp);
        net.add_host("rwcp-outer", dmz);
        net.add_host("etl-sun", etl);
        net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
        let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
        let outer = OuterServer::start(
            net.clone(),
            OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
        )
        .unwrap();
        World {
            net,
            _outer: outer,
            _inner: inner,
        }
    }

    fn proxied(net: &VNet, host: &str) -> NexusContext {
        NexusContext::via_proxy(net.clone(), host, ("rwcp-outer", OUTER_PORT))
    }

    #[test]
    fn endpoint_advertises_proxy_address() {
        let w = world();
        let ctx = proxied(&w.net, "rwcp-sun");
        let ep = ctx.endpoint().unwrap();
        assert_eq!(ep.advertised().0, "rwcp-outer");
    }

    #[test]
    fn startpoint_to_endpoint_across_firewall() {
        let w = world();
        let server_ctx = proxied(&w.net, "rwcp-sun");
        let ep = server_ctx.endpoint().unwrap();
        let (host, port) = ep.advertised();
        let (host, port) = (host.to_string(), port);

        // The ETL-side client is unproxied (no firewall there).
        let client_ctx = NexusContext::direct(w.net.clone(), "etl-sun");
        let sp = client_ctx.attach((&host, port)).unwrap();
        sp.send(b"msg-1").unwrap();
        sp.send(b"msg-2").unwrap();
        assert_eq!(ep.recv().unwrap(), b"msg-1");
        assert_eq!(ep.recv().unwrap(), b"msg-2");
        assert_eq!(ep.attachments(), 1);
    }

    #[test]
    fn direct_attach_to_firewalled_endpoint_fails() {
        let w = world();
        // Server binds WITHOUT the proxy: advertises its own address.
        let server_ctx = NexusContext::direct(w.net.clone(), "rwcp-sun");
        let ep = server_ctx.endpoint().unwrap();
        let (host, port) = ep.advertised();
        assert_eq!(host, "rwcp-sun");
        let (host, port) = (host.to_string(), port);
        let client_ctx = NexusContext::direct(w.net.clone(), "etl-sun");
        let err = client_ctx.attach((&host, port)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn bidirectional_channels_between_inside_hosts() {
        let w = world();
        let a_ctx = proxied(&w.net, "rwcp-sun");
        let b_ctx = proxied(&w.net, "compas0");
        let a_ep = a_ctx.endpoint().unwrap();
        let b_ep = b_ctx.endpoint().unwrap();
        let a_adv = (a_ep.advertised().0.to_string(), a_ep.advertised().1);
        let b_adv = (b_ep.advertised().0.to_string(), b_ep.advertised().1);
        let a_to_b = a_ctx.attach((&b_adv.0, b_adv.1)).unwrap();
        let b_to_a = b_ctx.attach((&a_adv.0, a_adv.1)).unwrap();
        a_to_b.send(b"ping").unwrap();
        assert_eq!(b_ep.recv().unwrap(), b"ping");
        b_to_a.send(b"pong").unwrap();
        assert_eq!(a_ep.recv().unwrap(), b"pong");
    }

    #[test]
    fn inproc_shortcut_when_exchange_shared() {
        let w = world();
        let exchange = InProcExchange::new();
        let a = NexusContext::direct(w.net.clone(), "etl-sun").with_shared_inproc(exchange.clone());
        let b = NexusContext::direct(w.net.clone(), "etl-sun").with_shared_inproc(exchange);
        let ep = a.endpoint().unwrap();
        let adv = (ep.advertised().0.to_string(), ep.advertised().1);
        let sp = b.attach((&adv.0, adv.1)).unwrap();
        assert!(sp.is_inproc());
        sp.send(b"local").unwrap();
        assert_eq!(ep.recv().unwrap(), b"local");
        // No network attachment happened.
        assert_eq!(ep.attachments(), 0);
    }

    #[test]
    fn port_range_mode_works_only_if_firewall_opens_range() {
        let w = world();
        // Re-policy RWCP with a port-range hole (the Globus 1.1 way).
        let site = w.net.host_site("rwcp-sun").unwrap();
        w.net
            .reload_policy(site, Policy::typical_with_port_range("rwcp", 10000, 10010));
        let server_ctx = NexusContext::direct(w.net.clone(), "rwcp-sun")
            .with_port_policy(PortPolicy::range(10000, 10010));
        let ep = server_ctx.endpoint().unwrap();
        let (host, port) = ep.advertised();
        assert_eq!(host, "rwcp-sun");
        assert!((10000..=10010).contains(&port));
        let (host, port) = (host.to_string(), port);
        let client_ctx = NexusContext::direct(w.net.clone(), "etl-sun");
        let sp = client_ctx.attach((&host, port)).unwrap();
        sp.send(b"range").unwrap();
        assert_eq!(ep.recv().unwrap(), b"range");
    }

    #[test]
    fn recv_timeout_and_try_recv() {
        let w = world();
        let ctx = NexusContext::direct(w.net.clone(), "etl-sun");
        let ep = ctx.endpoint().unwrap();
        assert!(ep.try_recv().unwrap().is_none());
        assert!(ep
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        let adv = (ep.advertised().0.to_string(), ep.advertised().1);
        // Use a separate context so the in-proc shortcut doesn't apply.
        let ctx2 = NexusContext::direct(w.net.clone(), "etl-sun");
        let sp = ctx2.attach((&adv.0, adv.1)).unwrap();
        sp.send(b"x").unwrap();
        let got = ep.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.unwrap(), b"x");
    }

    #[test]
    fn attach_retry_waits_for_late_endpoint() {
        let w = world();
        let net = w.net.clone();
        let t = std::thread::spawn(move || {
            let client = NexusContext::direct(net, "etl-sun");
            client.attach_retry(("etl-sun", 9009), 100, Duration::from_millis(5))
        });
        std::thread::sleep(Duration::from_millis(50));
        // Bind late, directly on the known port.
        let _l = w.net.bind("etl-sun", 9009).unwrap();
        let sp = t.join().unwrap().unwrap();
        assert_eq!(sp.peer(), ("etl-sun", 9009));
    }
}
