//! Message framing over byte streams.
//!
//! Nexus is message-oriented; TCP is a byte pipe. Frames are
//! `u32`-length-prefixed blobs, written atomically per message. The
//! relay never sees frame boundaries (it copies bytes), so framing
//! survives arbitrary re-chunking — a property the proptest below pins.

use std::io::{self, Read, Write};

/// Hard cap on one message (64 MiB): protects against corrupted length
/// prefixes taking the process down with a giant allocation.
pub const MAX_MSG: u32 = 64 * 1024 * 1024;

/// Write one framed message.
pub fn send_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "message too large"))?;
    if len > MAX_MSG {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "message too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one framed message. `Ok(None)` on clean EOF at a frame
/// boundary; errors on EOF mid-frame.
pub fn recv_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_MSG {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        send_frame(&mut buf, b"alpha").unwrap();
        send_frame(&mut buf, b"").unwrap();
        send_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(recv_frame(&mut cur).unwrap().unwrap(), b"alpha");
        assert_eq!(recv_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(recv_frame(&mut cur).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(recv_frame(&mut cur).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn eof_mid_frame_is_error() {
        let mut buf = Vec::new();
        send_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7); // cut into the payload
        let mut cur = Cursor::new(buf);
        assert!(recv_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_MSG + 1).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(recv_frame(&mut cur).is_err());
    }

    /// A reader that returns data in adversarially small pieces, to
    /// emulate relay re-chunking.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    proptest::proptest! {
        /// Framing is chunking-independent: any message sequence read
        /// through any read granularity reproduces the messages.
        #[test]
        fn prop_rechunking_preserves_frames(
            msgs in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..200), 0..10),
            step in 1usize..17,
        ) {
            let mut buf = Vec::new();
            for m in &msgs {
                send_frame(&mut buf, m).unwrap();
            }
            let mut r = Dribble { data: &buf, pos: 0, step };
            for m in &msgs {
                let got = recv_frame(&mut r).unwrap().unwrap();
                proptest::prop_assert_eq!(&got, m);
            }
            proptest::prop_assert!(recv_frame(&mut r).unwrap().is_none());
        }
    }
}
