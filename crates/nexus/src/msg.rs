//! Message framing over byte streams.
//!
//! Nexus is message-oriented; TCP is a byte pipe. Frames are
//! `u32`-length-prefixed blobs, written atomically per message. The
//! relay never sees frame boundaries (it copies bytes), so framing
//! survives arbitrary re-chunking — a property the rechunking test
//! below pins.
//!
//! Failures are typed ([`FrameError`]): a malformed frame must surface
//! as an error a daemon can log and survive, never as a panic that
//! takes the relay or an MPI rank down with it.

use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on one message (64 MiB): protects against corrupted length
/// prefixes taking the process down with a giant allocation.
pub const MAX_MSG: u32 = 64 * 1024 * 1024;

/// Why a frame could not be written or read.
#[derive(Debug)]
pub enum FrameError {
    /// Outgoing payload exceeds [`MAX_MSG`] (or `u32::MAX`).
    TooLarge(usize),
    /// Incoming length prefix exceeds [`MAX_MSG`]: the stream is
    /// corrupt or adversarial, and resynchronisation is impossible.
    BadLength(u32),
    /// The underlying stream failed (includes EOF mid-frame).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "outgoing message of {n} bytes exceeds cap"),
            FrameError::BadLength(n) => write!(f, "frame length {n} exceeds maximum"),
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(io) => io,
            FrameError::TooLarge(_) => io::Error::new(io::ErrorKind::InvalidInput, e.to_string()),
            FrameError::BadLength(_) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        }
    }
}

/// Write one framed message, with a typed error.
pub fn send_frame_typed(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge(payload.len()))?;
    if len > MAX_MSG {
        return Err(FrameError::TooLarge(payload.len()));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message, with a typed error. `Ok(None)` on clean
/// EOF at a frame boundary; EOF mid-frame is [`FrameError::Io`].
pub fn recv_frame_typed(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len = [0u8; 4];
    // Generic `Read`: deadlines belong to the socket owner, not the
    // framing helper (servers set read timeouts before calling this).
    match r.read_exact(&mut len) {
        // lint:allow(deadline-io)
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_MSG {
        return Err(FrameError::BadLength(len));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?; // lint:allow(deadline-io)
    Ok(Some(buf))
}

/// Write one framed message ([`io::Error`] convenience wrapper).
pub fn send_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    send_frame_typed(w, payload).map_err(io::Error::from)
}

/// Read one framed message ([`io::Error`] convenience wrapper).
/// `Ok(None)` on clean EOF at a frame boundary; errors on EOF
/// mid-frame.
pub fn recv_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    recv_frame_typed(r).map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        send_frame(&mut buf, b"alpha").unwrap();
        send_frame(&mut buf, b"").unwrap();
        send_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(recv_frame(&mut cur).unwrap().unwrap(), b"alpha");
        assert_eq!(recv_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(recv_frame(&mut cur).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(recv_frame(&mut cur).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn eof_mid_frame_is_error() {
        let mut buf = Vec::new();
        send_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7); // cut into the payload
        let mut cur = Cursor::new(buf);
        assert!(matches!(recv_frame_typed(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_length_rejected_with_typed_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_MSG + 1).to_be_bytes());
        let mut cur = Cursor::new(buf);
        match recv_frame_typed(&mut cur) {
            Err(FrameError::BadLength(n)) => assert_eq!(n, MAX_MSG + 1),
            other => panic!("expected BadLength, got {other:?}"),
        }
        // And the io::Error wrapper classifies it as InvalidData.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_MSG + 1).to_be_bytes());
        let mut cur = Cursor::new(buf);
        let err = recv_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A reader that returns data in adversarially small pieces, to
    /// emulate relay re-chunking.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Framing is chunking-independent: any message sequence read
    /// through any read granularity reproduces the messages.
    #[test]
    fn rechunking_preserves_frames() {
        let mut r = test_rng(0xc4a2);
        for round in 0..100 {
            let nmsgs = (r() % 10) as usize;
            let msgs: Vec<Vec<u8>> = (0..nmsgs)
                .map(|_| {
                    let len = (r() % 200) as usize;
                    (0..len).map(|_| r() as u8).collect()
                })
                .collect();
            let mut buf = Vec::new();
            for m in &msgs {
                send_frame(&mut buf, m).unwrap();
            }
            let step = 1 + (round % 16) as usize;
            let mut rd = Dribble {
                data: &buf,
                pos: 0,
                step,
            };
            for m in &msgs {
                let got = recv_frame(&mut rd).unwrap().unwrap();
                assert_eq!(&got, m);
            }
            assert!(recv_frame(&mut rd).unwrap().is_none());
        }
    }
}
