//! Model of striped-transfer reassembly
//! (`nexus_proxy::stripe::Reassembler`, DESIGN.md §6e).
//!
//! The reassembler is pure, so the model drives the real type: the
//! state is the exact arrival order of chunk deliveries so far, and
//! the checker explores **every** interleaving of stripe arrivals for
//! a small geometry. In each reachable state it rebuilds the real
//! reassembler by replaying that order and demands:
//!
//! * **Reassembly completeness** — `Complete` is reported exactly
//!   once, at the delivery that covers the last offset; the payload
//!   is then byte-identical to the source.
//! * **No completion with a hole** — while any chunk is missing,
//!   `payload()` is a typed `Incomplete` error, `Fin` frames never
//!   complete, and `missing_on` names exactly the holes.
//! * **Duplicate absorption** — re-delivering any received chunk
//!   byte-identically is `Accept::Duplicate` and changes nothing.
//! * **Conflict detection** — a corrupted duplicate is a typed
//!   `Conflict` error, never silent corruption.
//! * **Stripe-failover convergence** — replaying one stripe whole
//!   (`Open` + every `Data` from seq 0 + `Fin`), as a failed-over
//!   sender does, always lands in the fully-covered state for that
//!   stripe with no byte changed and no double completion.

use crate::explore::{explore_bfs, Model, Report};
use nexus_proxy::stripe::{Accept, Reassembler, StripeError, StripeFrame, StripePlan};

/// Upper bound on chunks across both tiers (state array size).
const MAX_CHUNKS: usize = 12;

/// Transfer id / tag the model uses everywhere.
const TRANSFER: u64 = 9;
const TAG: i32 = 7;

/// Deterministic source byte at `offset`.
fn byte_at(offset: u64) -> u8 {
    ((offset * 31 + 7) % 251) as u8
}

/// The chunk's payload bytes under the plan.
fn chunk_bytes(plan: &StripePlan, idx: u64) -> Vec<u8> {
    let off = plan.offset_of(idx);
    (0..u64::from(plan.len_of(idx)))
        .map(|i| byte_at(off + i))
        .collect()
}

fn data_frame(plan: &StripePlan, idx: u64) -> StripeFrame {
    StripeFrame::Data {
        transfer: TRANSFER,
        stripe: plan.stripe_of(idx),
        seq: plan.seq_of(idx),
        offset: plan.offset_of(idx),
        bytes: chunk_bytes(plan, idx),
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StState {
    /// Chunk indices in arrival order (first `len` entries valid).
    order: [u8; MAX_CHUNKS],
    len: u8,
}

impl StState {
    fn delivered(&self) -> &[u8] {
        &self.order[..usize::from(self.len)]
    }
}

#[derive(Clone, Debug)]
pub enum StAction {
    /// The next chunk to arrive (any not-yet-delivered index).
    Deliver(u8),
}

pub struct StripeModel {
    pub stripes: u16,
    pub total_len: u64,
    pub chunk: u32,
}

impl StripeModel {
    /// 2 stripes x 5 chunks (uneven tail): 326 arrival orders.
    pub fn smoke() -> Self {
        StripeModel {
            stripes: 2,
            total_len: 18,
            chunk: 4,
        }
    }

    /// 3 stripes x 8 chunks (uneven tail): ~110k arrival orders.
    pub fn deep() -> Self {
        StripeModel {
            stripes: 3,
            total_len: 30,
            chunk: 4,
        }
    }

    fn plan(&self) -> Result<StripePlan, String> {
        StripePlan::new(self.total_len, self.stripes, self.chunk).map_err(|e| e.to_string())
    }

    /// Rebuild the real reassembler by replaying the recorded arrival
    /// order, checking the accept verdict of every step.
    fn rebuild(&self, s: &StState) -> Result<Reassembler, String> {
        let plan = self.plan()?;
        let mut rx = Reassembler::new(TRANSFER, TAG, plan);
        let total = plan.chunk_count();
        for (step, &idx) in s.delivered().iter().enumerate() {
            let verdict = rx
                .accept(&data_frame(&plan, u64::from(idx)))
                .map_err(|e| format!("fresh chunk {idx} rejected: {e}"))?;
            let last = step as u64 + 1 == total;
            match verdict {
                Accept::Complete if last => {}
                Accept::Fresh if !last => {}
                other => {
                    return Err(format!(
                        "chunk {idx} at step {step} (of {total}) verdict {other:?}"
                    ));
                }
            }
        }
        Ok(rx)
    }
}

impl Model for StripeModel {
    type State = StState;
    type Action = StAction;

    fn name(&self) -> &'static str {
        "stripe"
    }

    fn initial(&self) -> StState {
        StState {
            order: [0; MAX_CHUNKS],
            len: 0,
        }
    }

    fn actions(&self, s: &StState, out: &mut Vec<StAction>) {
        let Ok(plan) = self.plan() else { return };
        for idx in 0..plan.chunk_count() as u8 {
            if !s.delivered().contains(&idx) {
                out.push(StAction::Deliver(idx));
            }
        }
    }

    fn apply(&self, s: &StState, a: &StAction) -> StState {
        let mut t = *s;
        let StAction::Deliver(idx) = a;
        t.order[usize::from(t.len)] = *idx;
        t.len += 1;
        t
    }

    fn invariant(&self, s: &StState) -> Result<(), String> {
        let plan = self.plan()?;
        let total = plan.chunk_count();
        let mut rx = self.rebuild(s)?;
        let delivered = s.delivered();

        // Coverage accounting matches the arrival record exactly.
        if rx.covered() != delivered.len() as u64 {
            return Err(format!(
                "covered {} after {} deliveries",
                rx.covered(),
                delivered.len()
            ));
        }
        let complete = delivered.len() as u64 == total;
        if rx.is_complete() != complete {
            return Err(format!(
                "is_complete {} with {}/{total} chunks",
                rx.is_complete(),
                delivered.len()
            ));
        }

        // No completion with a hole; completeness gives exact bytes.
        if complete {
            let got = rx.payload().map_err(|e| e.to_string())?;
            let want: Vec<u8> = (0..plan.total_len()).map(byte_at).collect();
            if got != want {
                return Err("complete payload differs from source bytes".into());
            }
        } else {
            let missing = total - delivered.len() as u64;
            match rx.payload() {
                Err(StripeError::Incomplete { missing: m }) if m == missing => {}
                other => {
                    return Err(format!(
                        "payload with {missing} holes gave {:?}",
                        other.map(<[u8]>::len)
                    ));
                }
            }
            // missing_on names exactly the undelivered seqs per stripe.
            for stripe in 0..plan.stripes() {
                let want: Vec<u64> = plan
                    .iter_stripe(stripe)
                    .filter(|(seq, _, _)| {
                        plan.chunk_index(stripe, *seq)
                            .is_some_and(|idx| !delivered.contains(&(idx as u8)))
                    })
                    .map(|(seq, _, _)| seq)
                    .collect();
                if rx.missing_on(stripe) != want {
                    return Err(format!(
                        "missing_on({stripe}) {:?} want {want:?}",
                        rx.missing_on(stripe)
                    ));
                }
            }
        }

        // Fin frames never complete a holey transfer, and repeats of
        // Fin/Open on a complete one never re-report completion.
        for stripe in 0..plan.stripes() {
            let fin = StripeFrame::Fin {
                transfer: TRANSFER,
                stripe,
                chunks: plan.chunks_on(stripe),
            };
            match rx.accept(&fin) {
                Ok(Accept::Fresh) => {}
                other => return Err(format!("Fin on stripe {stripe} gave {other:?}")),
            }
        }

        // Duplicate absorption and conflict detection, per delivered
        // chunk, against the live reassembler.
        for &idx in delivered {
            let before = rx.covered();
            match rx.accept(&data_frame(&plan, u64::from(idx))) {
                Ok(Accept::Duplicate) => {}
                other => return Err(format!("identical dup of {idx} gave {other:?}")),
            }
            if rx.covered() != before {
                return Err(format!("dup of {idx} changed coverage"));
            }
            // Corrupt one byte: typed Conflict, nothing mutated.
            let mut bytes = chunk_bytes(&plan, u64::from(idx));
            bytes[0] ^= 0x40;
            let offset = plan.offset_of(u64::from(idx));
            match rx.accept_data(
                plan.stripe_of(u64::from(idx)),
                plan.seq_of(u64::from(idx)),
                offset,
                &bytes,
            ) {
                Err(StripeError::Conflict { offset: o }) if o == offset => {}
                other => return Err(format!("corrupt dup of {idx} gave {other:?}")),
            }
            if rx.covered() != before || rx.is_complete() != complete {
                return Err(format!("conflict on {idx} mutated state"));
            }
        }
        if complete {
            let want: Vec<u8> = (0..plan.total_len()).map(byte_at).collect();
            if rx.payload().map_err(|e| e.to_string())? != want {
                return Err("dup/conflict probes corrupted the payload".into());
            }
        }

        // Stripe-failover convergence: from this state, a failed-over
        // sender replays one stripe whole. On a fresh rebuild (the
        // probes above already spent this state's dup budget), the
        // replay must end with that stripe fully covered, re-deliveries
        // absorbed as duplicates, and completion reported exactly once
        // across the whole history.
        for stripe in 0..plan.stripes() {
            let mut rx = self.rebuild(s)?;
            let mut completions = u64::from(complete);
            let open = StripeFrame::Open {
                transfer: TRANSFER,
                stripe,
                stripes: plan.stripes(),
                chunk: plan.chunk_bytes(),
                total_len: plan.total_len(),
                tag: TAG,
            };
            match rx.accept(&open) {
                Ok(Accept::Fresh) => {}
                other => return Err(format!("failover Open gave {other:?}")),
            }
            for (seq, _, _) in plan.iter_stripe(stripe) {
                let idx = plan
                    .chunk_index(stripe, seq)
                    .ok_or_else(|| format!("no chunk for stripe {stripe} seq {seq}"))?;
                let had = delivered.contains(&(idx as u8));
                match rx.accept(&data_frame(&plan, idx)) {
                    Ok(Accept::Duplicate) if had => {}
                    Ok(Accept::Fresh) if !had => {}
                    Ok(Accept::Complete) if !had => completions += 1,
                    other => return Err(format!("failover replay of {idx} (had={had}) {other:?}")),
                }
            }
            if completions > 1 {
                return Err(format!("stripe {stripe} failover double-completed"));
            }
            if !rx.missing_on(stripe).is_empty() {
                return Err(format!(
                    "stripe {stripe} still missing {:?} after whole-stripe replay",
                    rx.missing_on(stripe)
                ));
            }
        }

        // Geometry probes: malformed deliveries are typed errors and
        // never mutate the reassembler.
        let mut rx = self.rebuild(s)?;
        let before = rx.covered();
        if !matches!(
            rx.accept_data(plan.stripes(), 0, 0, &[0]),
            Err(StripeError::StripeOutOfRange { .. })
        ) {
            return Err("out-of-range stripe accepted".into());
        }
        if !matches!(
            rx.accept_data(0, plan.chunk_count(), 0, &[0]),
            Err(StripeError::SeqOutOfRange { .. })
        ) {
            return Err("out-of-range seq accepted".into());
        }
        if !matches!(
            rx.accept_data(0, 0, 1, &chunk_bytes(&plan, 0)),
            Err(StripeError::WrongOffset { .. })
        ) {
            return Err("wrong offset accepted".into());
        }
        if !matches!(
            rx.accept_data(0, 0, 0, &[]),
            Err(StripeError::WrongLength { .. })
        ) {
            return Err("wrong length accepted".into());
        }
        if !matches!(
            rx.accept(&StripeFrame::Fin {
                transfer: TRANSFER + 1,
                stripe: 0,
                chunks: plan.chunks_on(0),
            }),
            Err(StripeError::WrongTransfer { .. })
        ) {
            return Err("wrong transfer id accepted".into());
        }
        if rx.covered() != before {
            return Err("rejected frames mutated coverage".into());
        }
        Ok(())
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        StripeModel::deep()
    } else {
        StripeModel::smoke()
    };
    explore_bfs(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_arrival_order_reassembles_cleanly() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        // 2 stripes x 5 chunks: sum of k-permutations of 5 = 326.
        assert_eq!(r.states, 326, "{r}");
    }

    #[test]
    fn deep_tier_still_terminates() {
        let r = verify(true);
        assert!(r.ok(), "{r}");
        assert!(r.states > 100_000, "state space suspiciously small: {r}");
    }
}
