//! Model of [`nexus_proxy::liveness::AdmissionGate`].
//!
//! Drives the *real* gate through every interleaving of admissions,
//! releases (including ghost releases with no matching admission),
//! and drain, against an independently maintained mirror of what was
//! actually admitted. Invariants:
//!
//! * Conservation: the gate's fingerprint (total + per-peer counts)
//!   equals the mirror exactly — a ghost release must be a pure
//!   no-op. (This caught the capacity-leak bug now fixed and
//!   documented on `AdmissionGate::release`.)
//! * Bounds: `total <= max_total`, every per-peer count
//!   `<= max_per_peer`.
//! * Drain is sticky, and **no connection is ever admitted after
//!   drain began** — the headline shutdown invariant.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use nexus_proxy::liveness::{AdmissionGate, AdmissionLimits};

use crate::explore::{explore_bfs, Model, Report};

const PEERS: [&str; 2] = ["a", "b"];

/// The real gate, made hashable through its canonical fingerprint.
#[derive(Clone)]
pub struct GateWrap(AdmissionGate);

impl PartialEq for GateWrap {
    fn eq(&self, other: &Self) -> bool {
        self.0.fingerprint() == other.0.fingerprint()
    }
}
impl Eq for GateWrap {}
impl Hash for GateWrap {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.0.fingerprint().hash(h);
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AdmState {
    gate: GateWrap,
    /// Ground truth: successful admissions minus matched releases.
    mirror: BTreeMap<&'static str, u32>,
    /// Have we ever called `begin_drain`?
    drain_called: bool,
    /// Set when `try_admit` succeeds after `drain_called`.
    admitted_after_drain: bool,
}

#[derive(Clone, Debug)]
pub enum AdmAction {
    Admit(&'static str),
    Release(&'static str),
    Drain,
}

pub struct AdmissionModel {
    pub limits: AdmissionLimits,
    /// Cap on total admit *attempts*, to bound the action alphabet.
    pub max_ops: u32,
}

impl AdmissionModel {
    pub fn smoke() -> Self {
        AdmissionModel {
            limits: AdmissionLimits {
                max_total: 3,
                max_per_peer: 2,
            },
            max_ops: 5,
        }
    }

    pub fn deep() -> Self {
        AdmissionModel {
            limits: AdmissionLimits {
                max_total: 5,
                max_per_peer: 3,
            },
            max_ops: 8,
        }
    }
}

impl Model for AdmissionModel {
    type State = AdmState;
    type Action = AdmAction;

    fn name(&self) -> &'static str {
        "admission"
    }

    fn initial(&self) -> AdmState {
        AdmState {
            gate: GateWrap(AdmissionGate::new(self.limits)),
            mirror: BTreeMap::new(),
            drain_called: false,
            admitted_after_drain: false,
        }
    }

    fn actions(&self, s: &AdmState, out: &mut Vec<AdmAction>) {
        for p in PEERS {
            out.push(AdmAction::Admit(p));
            // Releases are always enabled — including ghost releases
            // for peers with nothing admitted.
            out.push(AdmAction::Release(p));
        }
        if !s.drain_called {
            out.push(AdmAction::Drain);
        }
    }

    fn apply(&self, s: &AdmState, a: &AdmAction) -> AdmState {
        let mut t = s.clone();
        match a {
            AdmAction::Admit(p) => {
                if t.gate.0.try_admit(p).is_ok() {
                    *t.mirror.entry(p).or_insert(0) += 1;
                    if t.drain_called {
                        t.admitted_after_drain = true;
                    }
                }
            }
            AdmAction::Release(p) => {
                t.gate.0.release(p);
                if let Some(n) = t.mirror.get_mut(p) {
                    *n -= 1;
                    if *n == 0 {
                        t.mirror.remove(p);
                    }
                }
            }
            AdmAction::Drain => {
                t.gate.0.begin_drain();
                t.drain_called = true;
            }
        }
        t
    }

    fn invariant(&self, s: &AdmState) -> Result<(), String> {
        let (total, draining, peers) = s.gate.0.fingerprint();
        let mirror_total: u32 = s.mirror.values().sum();
        let per_peer_sum: u32 = peers.iter().map(|(_, n)| *n).sum();
        if total != per_peer_sum {
            return Err(format!(
                "total {total} != per-peer sum {per_peer_sum} (capacity drift)"
            ));
        }
        if total != mirror_total {
            return Err(format!(
                "gate total {total} != actually-admitted {mirror_total} (capacity leak)"
            ));
        }
        for (p, n) in &peers {
            let m = s.mirror.get(p.as_str()).copied().unwrap_or(0);
            if *n != m {
                return Err(format!("gate counts {n} for {p}, mirror says {m}"));
            }
            if *n > self.limits.max_per_peer {
                return Err(format!(
                    "per-peer bound exceeded: {p} at {n} > {}",
                    self.limits.max_per_peer
                ));
            }
        }
        if total > self.limits.max_total {
            return Err(format!(
                "total bound exceeded: {total} > {}",
                self.limits.max_total
            ));
        }
        if s.drain_called && !draining {
            return Err("drain is not sticky: gate stopped draining".to_string());
        }
        if s.admitted_after_drain {
            return Err("connection admitted after drain began".to_string());
        }
        Ok(())
    }
}

/// Depth-bounds the raw model so exploration terminates: every trace
/// of `max_ops` operations over two peers is covered.
pub struct BoundedAdmission {
    inner: AdmissionModel,
}

impl Model for BoundedAdmission {
    type State = (AdmState, u32);
    type Action = AdmAction;

    fn name(&self) -> &'static str {
        "admission"
    }
    fn initial(&self) -> (AdmState, u32) {
        (self.inner.initial(), 0)
    }
    fn actions(&self, s: &(AdmState, u32), out: &mut Vec<AdmAction>) {
        if s.1 < self.inner.max_ops {
            self.inner.actions(&s.0, out);
        }
    }
    fn apply(&self, s: &(AdmState, u32), a: &AdmAction) -> (AdmState, u32) {
        (self.inner.apply(&s.0, a), s.1 + 1)
    }
    fn invariant(&self, s: &(AdmState, u32)) -> Result<(), String> {
        self.inner.invariant(&s.0)
    }
}

pub fn verify(deep: bool) -> Report {
    let inner = if deep {
        AdmissionModel::deep()
    } else {
        AdmissionModel::smoke()
    };
    explore_bfs(&BoundedAdmission { inner }, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bfs;

    #[test]
    fn real_gate_holds_all_invariants_exhaustively() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        assert!(r.states > 50, "state space suspiciously small: {r}");
    }

    /// Spec-level reimplementation of the pre-fix `release`: the
    /// total was decremented even when the peer had nothing admitted.
    struct BuggyGateModel;

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct BuggyState {
        total: u32,
        per_peer: BTreeMap<&'static str, u32>,
        ops: u32,
    }

    impl Model for BuggyGateModel {
        type State = BuggyState;
        type Action = AdmAction;

        fn name(&self) -> &'static str {
            "admission-buggy"
        }
        fn initial(&self) -> BuggyState {
            BuggyState {
                total: 0,
                per_peer: BTreeMap::new(),
                ops: 0,
            }
        }
        fn actions(&self, s: &BuggyState, out: &mut Vec<AdmAction>) {
            if s.ops < 3 {
                for p in PEERS {
                    out.push(AdmAction::Admit(p));
                    out.push(AdmAction::Release(p));
                }
            }
        }
        fn apply(&self, s: &BuggyState, a: &AdmAction) -> BuggyState {
            let mut t = s.clone();
            t.ops += 1;
            match a {
                AdmAction::Admit(p) => {
                    if t.total < 3 {
                        t.total += 1;
                        *t.per_peer.entry(p).or_insert(0) += 1;
                    }
                }
                AdmAction::Release(p) => {
                    // The bug: total decremented unconditionally.
                    t.total = t.total.saturating_sub(1);
                    if let Some(n) = t.per_peer.get_mut(p) {
                        *n -= 1;
                        if *n == 0 {
                            t.per_peer.remove(p);
                        }
                    }
                }
                AdmAction::Drain => {}
            }
            t
        }
        fn invariant(&self, s: &BuggyState) -> Result<(), String> {
            let sum: u32 = s.per_peer.values().sum();
            if s.total != sum {
                Err(format!(
                    "total {} != per-peer sum {} (capacity drift)",
                    s.total, sum
                ))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn checker_finds_the_ghost_release_bug_minimally() {
        let r = explore_bfs(&BuggyGateModel, 100_000);
        let cx = r.violation.expect("bug must be found");
        // A bare ghost Release saturates total at 0 harmlessly; the
        // minimal violating trace is Admit("a") then a ghost
        // Release("b"), which drifts total below the per-peer sum.
        assert_eq!(cx.trace.len(), 2, "{:?}", cx.trace);
        assert!(cx.reason.contains("capacity drift"));
    }
}
