//! Model of the sharded outer-server fleet's routing discipline
//! (`nexus_proxy::shard::ShardMap`, DESIGN.md §6d).
//!
//! The real code is pure, so the model drives it directly: a universe
//! of candidate shards under reconfiguration (membership changes bump
//! the generation), crash/recovery toggles, and a client that installs
//! fleet maps asynchronously. In **every** reachable state, for a set
//! of probe bind keys, the checker demands:
//!
//! * **Total ownership** — a non-empty map owns every key, and the
//!   owner is in bounds.
//! * **Ladder shape** — `ladder(key)` is a permutation of the member
//!   indices whose first entry is the owner.
//! * **Failover consistency** — `owner_among(key, live)` (ownership
//!   as if the dead members had left) is exactly the first live rung
//!   of the ladder: breaker-driven descent lands where a shrunken map
//!   would have pointed.
//! * **One-hop convergence** — a non-owner redirects to the owner,
//!   the owner serves, and nobody redirects to themselves; following
//!   one redirect always terminates.
//! * **Install monotonicity** — the client's installed generation
//!   never runs ahead of the fleet's, never moves backwards, and
//!   `install` accepts exactly the strictly-newer generations.

use crate::explore::{explore_bfs, Model, Report};
use nexus_proxy::{member_tag, ShardMap, ShardRoute};

/// Candidate shard universe (membership masks fit in a `u8`).
const UNIVERSE: usize = 3;

/// Probe bind keys routed through the map in every state. Distinct
/// byte strings so the HRW weights differ per key.
const KEYS: [&[u8]; 4] = [b"etl-sun:7000", b"rwcp-sun:7001", b"c2:9", b"d:1024"];

/// Stable tag of candidate shard `i` (its control endpoint identity).
fn tag(i: usize) -> u64 {
    member_tag(format!("outer{i}:4097").as_bytes())
}

/// Build the real [`ShardMap`] for a membership mask.
fn map_of(gen: u8, members: u8) -> ShardMap {
    let tags = (0..UNIVERSE)
        .filter(|i| members & (1 << i) != 0)
        .map(tag)
        .collect();
    ShardMap::new(u64::from(gen), tags)
}

/// `live` closure over map indices for a membership + alive mask pair
/// (map index `idx` is the `idx`-th set bit of `members`).
fn member_bits(members: u8) -> Vec<usize> {
    (0..UNIVERSE).filter(|i| members & (1 << i) != 0).collect()
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShState {
    /// Fleet-map generation (bumped by every reconfiguration).
    gen: u8,
    /// Current membership, as a bitmask over the candidate universe.
    members: u8,
    /// Which candidates are up (crash/recovery; orthogonal to
    /// membership — the map does not shrink when a shard dies).
    alive: u8,
    /// Client's installed map.
    client_gen: u8,
    client_members: u8,
    /// History variable for the monotonicity invariant.
    prev_client_gen: u8,
}

#[derive(Clone, Debug)]
pub enum ShAction {
    /// Operator reconfigures the fleet to a new membership mask.
    Reconfigure(u8),
    /// Candidate shard `i` crashes or recovers.
    ToggleAlive(usize),
    /// The client hears the current map (a relayed `ShardSync`).
    ClientSync,
}

pub struct ShardModel {
    /// Reconfiguration budget (bounds the state space).
    pub max_gen: u8,
}

impl ShardModel {
    pub fn smoke() -> Self {
        ShardModel { max_gen: 3 }
    }

    pub fn deep() -> Self {
        ShardModel { max_gen: 5 }
    }
}

impl Model for ShardModel {
    type State = ShState;
    type Action = ShAction;

    fn name(&self) -> &'static str {
        "shard"
    }

    fn initial(&self) -> ShState {
        ShState {
            gen: 1,
            members: 0b111,
            alive: 0b111,
            client_gen: 1,
            client_members: 0b111,
            prev_client_gen: 1,
        }
    }

    fn actions(&self, s: &ShState, out: &mut Vec<ShAction>) {
        if s.gen < self.max_gen {
            for m in 1..(1u8 << UNIVERSE) {
                if m != s.members {
                    out.push(ShAction::Reconfigure(m));
                }
            }
        }
        for i in 0..UNIVERSE {
            out.push(ShAction::ToggleAlive(i));
        }
        if s.client_gen < s.gen {
            out.push(ShAction::ClientSync);
        }
    }

    fn apply(&self, s: &ShState, a: &ShAction) -> ShState {
        let mut t = *s;
        t.prev_client_gen = s.client_gen;
        match a {
            ShAction::Reconfigure(m) => {
                t.gen += 1;
                t.members = *m;
            }
            ShAction::ToggleAlive(i) => {
                t.alive ^= 1 << i;
            }
            ShAction::ClientSync => {
                // Drive the real install: it must accept exactly the
                // strictly-newer generation.
                let mut cm = map_of(s.client_gen, s.client_members);
                let next = map_of(s.gen, s.members);
                if cm.install(next.generation(), next.tags().to_vec()) {
                    t.client_gen = s.gen;
                    t.client_members = s.members;
                }
            }
        }
        t
    }

    fn invariant(&self, s: &ShState) -> Result<(), String> {
        let map = map_of(s.gen, s.members);
        let bits = member_bits(s.members);
        let n = bits.len();
        for key in KEYS {
            // Total ownership.
            let Some(owner) = map.owner(key) else {
                return Err(format!("non-empty map owns nobody for {key:?}"));
            };
            if owner >= n {
                return Err(format!("owner {owner} out of bounds (len {n})"));
            }
            // Ladder: a permutation of 0..n led by the owner.
            let ladder = map.ladder(key);
            let mut sorted = ladder.clone();
            sorted.sort_unstable();
            if sorted != (0..n).collect::<Vec<_>>() {
                return Err(format!("ladder {ladder:?} is not a permutation of 0..{n}"));
            }
            if ladder[0] != owner {
                return Err(format!(
                    "ladder head {} is not the owner {owner}",
                    ladder[0]
                ));
            }
            // Failover consistency: first live rung == shrunken-map owner.
            let live = |idx: usize| s.alive & (1 << bits[idx]) != 0;
            let first_live = ladder.iter().copied().find(|&i| live(i));
            if map.owner_among(key, live) != first_live {
                return Err(format!(
                    "owner_among {:?} disagrees with first live rung {first_live:?}",
                    map.owner_among(key, live)
                ));
            }
            // One-hop convergence, no self-redirect.
            for idx in 0..n {
                match map.route(idx, key) {
                    Some(ShardRoute::Own) if idx == owner => {}
                    Some(ShardRoute::Redirect(to)) if idx != owner => {
                        if to == idx {
                            return Err(format!("shard {idx} redirects to itself"));
                        }
                        if to != owner {
                            return Err(format!("shard {idx} redirects to non-owner {to}"));
                        }
                        if map.route(to, key) != Some(ShardRoute::Own) {
                            return Err(format!("redirect target {to} does not serve"));
                        }
                    }
                    other => {
                        return Err(format!("member {idx} routed {other:?} (owner {owner})"));
                    }
                }
            }
        }
        // Non-members must refuse, not guess.
        if map.route(n, KEYS[0]).is_some() {
            return Err("out-of-map shard answered a route".into());
        }
        // Install monotonicity (client side).
        if s.client_gen > s.gen {
            return Err(format!(
                "client generation {} ahead of fleet generation {}",
                s.client_gen, s.gen
            ));
        }
        if s.client_gen < s.prev_client_gen {
            return Err(format!(
                "client generation moved backwards: {} -> {}",
                s.prev_client_gen, s.client_gen
            ));
        }
        // A stale or equal generation must be refused outright.
        let mut cm = map_of(s.client_gen, s.client_members);
        let same_tags = cm.tags().to_vec();
        if cm.install(u64::from(s.client_gen), same_tags) {
            return Err("install accepted an equal generation".into());
        }
        Ok(())
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        ShardModel::deep()
    } else {
        ShardModel::smoke()
    };
    explore_bfs(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_routing_is_clean_exhaustively() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        assert!(r.states > 100, "state space suspiciously small: {r}");
    }

    #[test]
    fn deep_tier_still_terminates() {
        let r = verify(true);
        assert!(r.ok(), "{r}");
    }
}
