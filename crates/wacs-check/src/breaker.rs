//! Model of [`nexus_proxy::liveness::CircuitBreaker`].
//!
//! The real production type is driven through every interleaving of
//! clock ticks, `allow` probes, and (possibly stale) dial outcomes.
//! The state carries a one-step history variable — the breaker state,
//! `opened_at`, and failure run *before* the last action — so the
//! invariant can judge every transition against the allowlist:
//!
//! * `Open -> Closed` is forbidden outright: the breaker never closes
//!   without a half-open probe. (This is the invariant that caught
//!   the stale-success bug now fixed and documented on
//!   `CircuitBreaker::on_success`.)
//! * `Open -> HalfOpen` only via an admitted `allow` after the
//!   cooldown has elapsed.
//! * `Closed -> Open` only when a failure completes the threshold run.
//! * `HalfOpen` resolves only via the probe outcome: success closes,
//!   failure re-opens (restarting the cooldown).
//! * `allow` must admit exactly when Closed, or Open-with-elapsed-
//!   cooldown; it must hold dials while a probe is in flight.

use std::time::Duration;

use nexus_proxy::liveness::{BreakerConfig, BreakerState, CircuitBreaker};

use crate::explore::{explore_bfs, Model, Report};

/// What the last action was, for the transition judgement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum LastAct {
    None,
    Tick,
    AllowTrue,
    AllowFalse,
    Success,
    Fail,
}

#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BrState {
    brk: CircuitBreaker,
    clock: u64,
    /// Mirror of the consecutive-failure run while Closed (the real
    /// counter is private; the mirror lets the invariant check trip
    /// timing).
    fails: u32,
    // One-step history.
    before: BreakerState,
    before_opened: u64,
    before_fails: u32,
    last: LastAct,
}

#[derive(Clone, Debug)]
pub enum BrAction {
    Tick,
    Allow,
    Success,
    Fail,
}

pub struct BreakerModel {
    pub horizon: u64,
    pub threshold: u32,
    pub cooldown_ticks: u64,
}

impl BreakerModel {
    pub fn smoke() -> Self {
        BreakerModel {
            horizon: 6,
            threshold: 2,
            cooldown_ticks: 2,
        }
    }

    pub fn deep() -> Self {
        BreakerModel {
            horizon: 10,
            threshold: 3,
            cooldown_ticks: 3,
        }
    }
}

impl Model for BreakerModel {
    type State = BrState;
    type Action = BrAction;

    fn name(&self) -> &'static str {
        "breaker"
    }

    fn initial(&self) -> BrState {
        let brk = CircuitBreaker::new(BreakerConfig {
            threshold: self.threshold,
            cooldown: Duration::from_nanos(self.cooldown_ticks),
        });
        BrState {
            before: brk.state(),
            before_opened: brk.opened_at(),
            before_fails: 0,
            brk,
            clock: 0,
            fails: 0,
            last: LastAct::None,
        }
    }

    fn actions(&self, s: &BrState, out: &mut Vec<BrAction>) {
        if s.clock < self.horizon {
            out.push(BrAction::Tick);
        }
        out.push(BrAction::Allow);
        // Dial outcomes can arrive in any state — including a stale
        // success landing while Open (the race the fix closes).
        out.push(BrAction::Success);
        out.push(BrAction::Fail);
    }

    fn apply(&self, s: &BrState, a: &BrAction) -> BrState {
        let mut t = s.clone();
        t.before = s.brk.state();
        t.before_opened = s.brk.opened_at();
        t.before_fails = s.fails;
        match a {
            BrAction::Tick => {
                t.clock += 1;
                t.last = LastAct::Tick;
            }
            BrAction::Allow => {
                let admitted = t.brk.allow(t.clock);
                t.last = if admitted {
                    LastAct::AllowTrue
                } else {
                    LastAct::AllowFalse
                };
            }
            BrAction::Success => {
                t.brk.on_success();
                if t.brk.state() == BreakerState::Closed {
                    t.fails = 0;
                }
                t.last = LastAct::Success;
            }
            BrAction::Fail => {
                t.brk.on_failure(t.clock);
                t.fails = match s.brk.state() {
                    BreakerState::Closed => s.fails + 1,
                    _ => 0,
                };
                t.last = LastAct::Fail;
            }
        }
        t
    }

    fn invariant(&self, s: &BrState) -> Result<(), String> {
        use BreakerState::{Closed, HalfOpen, Open};
        let after = s.brk.state();
        let cooled = s.clock.saturating_sub(s.before_opened) >= self.cooldown_ticks;
        match (s.before, after) {
            (Open, Closed) => {
                return Err("breaker closed without a half-open probe".to_string());
            }
            (Open, HalfOpen) => {
                if s.last != LastAct::AllowTrue {
                    return Err(format!(
                        "Open -> HalfOpen via {:?}, not an admitted allow",
                        s.last
                    ));
                }
                if !cooled {
                    return Err(format!(
                        "half-open probe admitted {} tick(s) into a {}-tick cooldown",
                        s.clock.saturating_sub(s.before_opened),
                        self.cooldown_ticks
                    ));
                }
            }
            (Closed, Open) if s.last != LastAct::Fail || s.before_fails + 1 < self.threshold => {
                return Err(format!(
                    "breaker tripped after {} failure(s), threshold {}",
                    s.before_fails + 1,
                    self.threshold
                ));
            }
            (Closed, HalfOpen) => {
                return Err("Closed -> HalfOpen is not a legal transition".to_string());
            }
            (HalfOpen, Closed) if s.last != LastAct::Success => {
                return Err(format!("probe closed the breaker via {:?}", s.last));
            }
            (HalfOpen, Open) if s.last != LastAct::Fail => {
                return Err(format!("probe re-opened the breaker via {:?}", s.last));
            }
            _ => {}
        }
        // `allow` admission must match the spec exactly: after an
        // admitted allow the state is Closed (was closed) or HalfOpen
        // (was open past cooldown) — never Open.
        match s.last {
            LastAct::AllowTrue if after == Open => {
                return Err("allow admitted a dial while Open".to_string());
            }
            LastAct::AllowFalse => {
                if s.before == Closed {
                    return Err("allow refused a dial while Closed".to_string());
                }
                if s.before == Open && cooled {
                    return Err("allow refused the probe after cooldown elapsed".to_string());
                }
            }
            _ => {}
        }
        Ok(())
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        BreakerModel::deep()
    } else {
        BreakerModel::smoke()
    };
    explore_bfs(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bfs;

    #[test]
    fn real_breaker_holds_all_invariants_exhaustively() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        assert!(r.states > 50, "state space suspiciously small: {r}");
    }

    /// Spec-level reimplementation with the pre-fix bug:
    /// `on_success` snapped straight to Closed regardless of state,
    /// so a stale success from a dial admitted before the trip
    /// short-circuited the half-open probe.
    struct BuggyBreakerModel;

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    struct BuggyState {
        state: BreakerState,
        fails: u32,
        before: BreakerState,
    }

    #[derive(Clone, Debug)]
    enum BuggyAction {
        Success,
        Fail,
    }

    impl Model for BuggyBreakerModel {
        type State = BuggyState;
        type Action = BuggyAction;

        fn name(&self) -> &'static str {
            "breaker-buggy"
        }
        fn initial(&self) -> BuggyState {
            BuggyState {
                state: BreakerState::Closed,
                fails: 0,
                before: BreakerState::Closed,
            }
        }
        fn actions(&self, _s: &BuggyState, out: &mut Vec<BuggyAction>) {
            out.push(BuggyAction::Success);
            out.push(BuggyAction::Fail);
        }
        fn apply(&self, s: &BuggyState, a: &BuggyAction) -> BuggyState {
            let mut t = *s;
            t.before = s.state;
            match a {
                // The bug: unconditional close.
                BuggyAction::Success => {
                    t.state = BreakerState::Closed;
                    t.fails = 0;
                }
                BuggyAction::Fail => {
                    if s.state == BreakerState::Closed {
                        t.fails = s.fails + 1;
                        if t.fails >= 2 {
                            t.state = BreakerState::Open;
                        }
                    }
                }
            }
            t
        }
        fn invariant(&self, s: &BuggyState) -> Result<(), String> {
            if s.before == BreakerState::Open && s.state == BreakerState::Closed {
                Err("breaker closed without a half-open probe".to_string())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn checker_finds_the_stale_success_bug_minimally() {
        let r = explore_bfs(&BuggyBreakerModel, 100_000);
        let cx = r.violation.expect("bug must be found");
        // Minimal: Fail, Fail (trip), stale Success.
        assert_eq!(cx.trace.len(), 3, "{:?}", cx.trace);
        assert!(cx.reason.contains("without a half-open probe"));
    }
}
