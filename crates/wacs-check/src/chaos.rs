//! Model of the chaos layer's retry/recovery discipline against the
//! real [`wacs_chaos::ChaosProfile`] fault schedule.
//!
//! The orchestrator's fatal-fault cells run a simple loop: attempt an
//! op; a faulted attempt fails and opens a *failure episode*; the next
//! success closes the episode and records exactly one recovery sample.
//! This model drives that discipline — with the production
//! `ChaosProfile::decide` supplying the fault schedule — through every
//! interleaving of scheduled faults and a bounded budget of *spurious*
//! (environmental) failures, and checks:
//!
//! * **Schedule purity** — `decide(leg, seq)` fires exactly on the
//!   periodic pattern (`seq % period == phase`), every time, for every
//!   reachable `seq`; re-querying never disagrees (the property the
//!   ci.sh determinism gate measures at the snapshot level).
//! * **Exactly-once recovery** — a recovery sample is recorded iff a
//!   success closes an open failure episode: `recoveries` equals
//!   closed episodes in every state, and never exceeds failures.
//! * **Convergence** — with an attempt budget of
//!   `period * (ops + spurious budget)`, every terminal state has
//!   reached the op target: the retry loop cannot be starved by the
//!   worst-case schedule.

use wacs_chaos::{ChaosProfile, FaultClass, FaultRule};

use crate::explore::{explore_bfs, Model, Report};
use nexus_proxy::DialLeg;

/// Retry-loop state; a pure function of the action history.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ChaosState {
    /// Next attempt's per-leg sequence number.
    seq: u64,
    successes: u64,
    failures: u64,
    /// Spurious failures consumed (bounded by the model).
    spurious: u64,
    /// An open failure episode awaiting its closing success.
    pending: bool,
    /// Closed episodes == recovery samples recorded.
    recoveries: u64,
    /// History: did the last action record a recovery?
    last_recorded: bool,
}

#[derive(Clone, Debug)]
pub enum ChaosAction {
    /// Run the next attempt; the schedule decides success or failure.
    Attempt,
    /// Run the next attempt and have the environment fail it even
    /// though no fault was scheduled (only enabled within budget).
    SpuriousFail,
}

pub struct ChaosModel {
    profile: ChaosProfile,
    period: u64,
    phase: u64,
    /// Target successful ops.
    ops: u64,
    /// Spurious-failure budget.
    max_spurious: u64,
}

impl ChaosModel {
    fn new(seed: u64, period: u64, ops: u64, max_spurious: u64) -> ChaosModel {
        let profile = ChaosProfile::new(seed).with_rule(FaultRule::every(
            DialLeg::ClientCtrl,
            FaultClass::Rst,
            period,
        ));
        ChaosModel {
            profile,
            period,
            phase: 0,
            ops,
            max_spurious,
        }
    }

    pub fn smoke() -> ChaosModel {
        ChaosModel::new(42, 2, 4, 2)
    }

    pub fn deep() -> ChaosModel {
        ChaosModel::new(1337, 3, 8, 4)
    }

    fn budget(&self) -> u64 {
        // Worst case every success needs a clean slot and each clean
        // slot comes once per period; spurious failures burn clean
        // slots too. `period * (ops + spurious)` always suffices for
        // `period >= 2`.
        self.period * (self.ops + self.max_spurious)
    }

    fn scheduled(&self, seq: u64) -> bool {
        self.profile.decide(DialLeg::ClientCtrl, seq).is_some()
    }

    fn done(&self, s: &ChaosState) -> bool {
        s.successes >= self.ops || s.seq >= self.budget()
    }
}

impl Model for ChaosModel {
    type State = ChaosState;
    type Action = ChaosAction;

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn initial(&self) -> ChaosState {
        ChaosState {
            seq: 0,
            successes: 0,
            failures: 0,
            spurious: 0,
            pending: false,
            recoveries: 0,
            last_recorded: false,
        }
    }

    fn actions(&self, s: &ChaosState, out: &mut Vec<ChaosAction>) {
        if self.done(s) {
            return;
        }
        out.push(ChaosAction::Attempt);
        if !self.scheduled(s.seq) && s.spurious < self.max_spurious {
            out.push(ChaosAction::SpuriousFail);
        }
    }

    fn apply(&self, s: &ChaosState, a: &ChaosAction) -> ChaosState {
        let mut next = s.clone();
        next.seq += 1;
        next.last_recorded = false;
        let fails = match a {
            ChaosAction::Attempt => self.scheduled(s.seq),
            ChaosAction::SpuriousFail => {
                next.spurious += 1;
                true
            }
        };
        if fails {
            next.failures += 1;
            next.pending = true;
        } else {
            next.successes += 1;
            if next.pending {
                next.pending = false;
                next.recoveries += 1;
                next.last_recorded = true;
            }
        }
        next
    }

    fn invariant(&self, s: &ChaosState) -> Result<(), String> {
        // Schedule purity: every decided seq so far matches the
        // periodic pattern, and a second query agrees with the first.
        for seq in 0..s.seq.min(self.budget()) {
            let fired = self.scheduled(seq);
            let expected = seq % self.period == self.phase % self.period;
            if fired != expected {
                return Err(format!(
                    "schedule impurity at seq {seq}: decide fired={fired}, pattern says {expected}"
                ));
            }
            if fired != self.scheduled(seq) {
                return Err(format!("decide({seq}) disagrees with itself"));
            }
        }
        // Exactly-once recovery accounting: every closed or open
        // episode contains at least one failure.
        let open = u64::from(s.pending);
        if s.recoveries > s.failures {
            return Err(format!(
                "{} recoveries recorded for only {} failures",
                s.recoveries, s.failures
            ));
        }
        if s.recoveries + open > s.failures {
            return Err(format!(
                "episode accounting broken: {} closed + {open} open > {} failures",
                s.recoveries, s.failures
            ));
        }
        if s.last_recorded && s.pending {
            return Err("recovery recorded while an episode is still open".into());
        }
        if s.failures == 0 && s.recoveries != 0 {
            return Err("recovery recorded with no failure ever seen".into());
        }
        // Convergence: a terminal state must have met the op target.
        if self.done(s) && s.successes < self.ops {
            return Err(format!(
                "retry budget exhausted at seq {} with {}/{} ops",
                s.seq, s.successes, self.ops
            ));
        }
        Ok(())
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        ChaosModel::deep()
    } else {
        ChaosModel::smoke()
    };
    explore_bfs(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_schedule_converges_with_exactly_once_recoveries() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        assert!(r.states > 20, "state space suspiciously small: {r}");
        let r = verify(true);
        assert!(r.ok(), "{r}");
    }

    /// Spec-level bug the checker must catch: a runner that records a
    /// recovery sample on *every* success, not just the one closing a
    /// failure episode — the double-count that would silently deflate
    /// RTO percentiles.
    struct DoubleCountModel(ChaosModel);

    impl Model for DoubleCountModel {
        type State = ChaosState;
        type Action = ChaosAction;

        fn name(&self) -> &'static str {
            "chaos-doublecount"
        }

        fn initial(&self) -> ChaosState {
            self.0.initial()
        }

        fn actions(&self, s: &ChaosState, out: &mut Vec<ChaosAction>) {
            self.0.actions(s, out);
        }

        fn apply(&self, s: &ChaosState, a: &ChaosAction) -> ChaosState {
            let mut next = self.0.apply(s, a);
            // The bug: every success "recovers".
            if next.successes > s.successes && !next.last_recorded {
                next.recoveries += 1;
                next.last_recorded = true;
            }
            next
        }

        fn invariant(&self, s: &ChaosState) -> Result<(), String> {
            self.0.invariant(s)
        }
    }

    #[test]
    fn checker_catches_double_counted_recoveries() {
        // Phase-shift the schedule so the first attempt is clean: a
        // success with no open episode is exactly where the bug
        // manufactures a phantom recovery.
        let mut m = ChaosModel::smoke();
        m.profile.rules[0].phase = 1;
        m.phase = 1;
        let r = explore_bfs(&DoubleCountModel(m), 2_000_000);
        assert!(r.violation.is_some(), "double-count bug not caught: {r}");
    }

    /// Spec-level bug: an under-provisioned retry budget (the loop
    /// gives up after `ops` attempts flat) starves under a period-2
    /// schedule — convergence must flag it.
    struct StingyBudgetModel(ChaosModel);

    impl Model for StingyBudgetModel {
        type State = ChaosState;
        type Action = ChaosAction;

        fn name(&self) -> &'static str {
            "chaos-stingy"
        }

        fn initial(&self) -> ChaosState {
            self.0.initial()
        }

        fn actions(&self, s: &ChaosState, out: &mut Vec<ChaosAction>) {
            if s.successes >= self.0.ops || s.seq >= self.0.ops {
                return;
            }
            out.push(ChaosAction::Attempt);
        }

        fn apply(&self, s: &ChaosState, a: &ChaosAction) -> ChaosState {
            self.0.apply(s, a)
        }

        fn invariant(&self, s: &ChaosState) -> Result<(), String> {
            // The stingy loop's own terminal condition, judged by the
            // real convergence requirement.
            if s.seq >= self.0.ops && s.successes < self.0.ops {
                return Err(format!(
                    "stingy budget starved: {}/{} ops after {} attempts",
                    s.successes, self.0.ops, s.seq
                ));
            }
            self.0.invariant(s)
        }
    }

    #[test]
    fn checker_catches_starved_retry_budget() {
        let r = explore_bfs(&StingyBudgetModel(ChaosModel::smoke()), 2_000_000);
        assert!(r.violation.is_some(), "starvation not caught: {r}");
    }
}
