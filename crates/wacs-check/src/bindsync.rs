//! Model of the generation-counted bind-table synchronisation
//! (`OuterServer::sync_binds` against the rendezvous generation
//! counter).
//!
//! The real code snapshots the inner server's bind table while
//! clients keep rebinding concurrently. Staleness is made detectable
//! by a generation counter: the syncer must read the generation
//! **before** snapshotting the table, so that any concurrent change
//! makes the recorded generation *older* than the table it shipped —
//! an honest "I may be stale" marker that triggers a follow-up sync.
//! Reading in the opposite order lets a sync claim the *newest*
//! generation for a *stale* table, and the staleness is never
//! repaired.
//!
//! The model abstracts the table to its generation number (table
//! content == generation at which it was last changed) and checks:
//!
//! * **Honesty**: whenever the synced generation equals the live
//!   generation, the synced table is the live table.
//! * **Monotonicity**: the synced generation never moves backwards.
//!
//! `read_gen_first: false` reproduces the buggy ordering; the checker
//! finds the classic 3-step interleaving `[StartSync, Change,
//! FinishSync]`.

use crate::explore::{explore_bfs, Model, Report};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BsState {
    /// Live generation on the rendezvous side (bumped by rebinds).
    gen: u8,
    /// Live table content, abstracted to the generation that wrote it.
    table: u8,
    /// In-flight sync: the value read by `StartSync`.
    inflight: Option<u8>,
    /// Outer server's installed snapshot.
    synced_gen: u8,
    synced_table: u8,
    /// History variable for the monotonicity invariant.
    prev_synced_gen: u8,
}

#[derive(Clone, Debug)]
pub enum BsAction {
    /// A client rebinds: the table changes and the generation bumps.
    Change,
    /// The syncer performs its first read.
    StartSync,
    /// The syncer performs its second read and installs the snapshot.
    FinishSync,
}

pub struct BindSyncModel {
    pub max_gen: u8,
    /// `true` is the shipped ordering (generation before table);
    /// `false` is the inversion the checker must catch.
    pub read_gen_first: bool,
}

impl BindSyncModel {
    pub fn smoke() -> Self {
        BindSyncModel {
            max_gen: 4,
            read_gen_first: true,
        }
    }

    pub fn deep() -> Self {
        BindSyncModel {
            max_gen: 8,
            read_gen_first: true,
        }
    }
}

impl Model for BindSyncModel {
    type State = BsState;
    type Action = BsAction;

    fn name(&self) -> &'static str {
        "bindsync"
    }

    fn initial(&self) -> BsState {
        BsState {
            gen: 0,
            table: 0,
            inflight: None,
            synced_gen: 0,
            synced_table: 0,
            prev_synced_gen: 0,
        }
    }

    fn actions(&self, s: &BsState, out: &mut Vec<BsAction>) {
        if s.gen < self.max_gen {
            out.push(BsAction::Change);
        }
        if s.inflight.is_none() {
            out.push(BsAction::StartSync);
        } else {
            out.push(BsAction::FinishSync);
        }
    }

    fn apply(&self, s: &BsState, a: &BsAction) -> BsState {
        let mut t = *s;
        t.prev_synced_gen = s.synced_gen;
        match a {
            BsAction::Change => {
                t.gen += 1;
                t.table = t.gen;
            }
            BsAction::StartSync => {
                t.inflight = Some(if self.read_gen_first { s.gen } else { s.table });
            }
            BsAction::FinishSync => {
                if let Some(first) = s.inflight {
                    if self.read_gen_first {
                        // Shipped order: gen was read first; the table
                        // is read now (possibly newer — honest).
                        t.synced_gen = first;
                        t.synced_table = s.table;
                    } else {
                        // Inverted order: table was read first; the
                        // gen read now may be newer than the table.
                        t.synced_gen = s.gen;
                        t.synced_table = first;
                    }
                    t.inflight = None;
                }
            }
        }
        t
    }

    fn invariant(&self, s: &BsState) -> Result<(), String> {
        if s.synced_gen == s.gen && s.synced_table != s.table {
            return Err(format!(
                "sync claims generation {} (current) but shipped table from generation {}",
                s.synced_gen, s.synced_table
            ));
        }
        if s.synced_gen < s.prev_synced_gen {
            return Err(format!(
                "synced generation moved backwards: {} -> {}",
                s.prev_synced_gen, s.synced_gen
            ));
        }
        if s.synced_gen > s.gen {
            return Err(format!(
                "synced generation {} is ahead of the live generation {}",
                s.synced_gen, s.gen
            ));
        }
        Ok(())
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        BindSyncModel::deep()
    } else {
        BindSyncModel::smoke()
    };
    explore_bfs(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bfs;

    #[test]
    fn shipped_read_order_is_honest_exhaustively() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        assert!(r.states > 30, "state space suspiciously small: {r}");
    }

    #[test]
    fn checker_finds_the_inverted_read_order_minimally() {
        let m = BindSyncModel {
            max_gen: 4,
            read_gen_first: false,
        };
        let r = explore_bfs(&m, 100_000);
        let cx = r.violation.expect("inverted order must be caught");
        // Minimal: StartSync (reads table 0), Change (gen 1),
        // FinishSync (claims gen 1 with table 0).
        assert_eq!(cx.trace.len(), 3, "{:?}", cx.trace);
        assert!(cx.reason.contains("claims generation"));
    }
}
