//! Model of the `wacs_sync::channel` bounded MPMC channel's
//! monitor discipline (mutex + two condvars, `notify_one` on each
//! side).
//!
//! Queue operations are monitor-atomic in the real implementation, so
//! the model treats each send/recv as one atomic action and focuses
//! on what the monitor *cannot* make atomic: who gets woken, and
//! whether every state that must make progress can. The
//! `notify_one` choice is the nondeterminism — a `Send`/`Recv`
//! action is split per wake target (one successor per blocked waiter
//! on the notified condvar).
//!
//! The **no lost wakeup** property is exactly the explorer's wedge
//! check: a state where some thread still has work, every runnable
//! action is exhausted, and the run is not accepting, is a deadlock —
//! some blocked thread missed the notification that should have
//! re-enabled it. The real channel notifies `not_empty` on every
//! send and `not_full` on every pop ([`wacs_sync::channel`]); the
//! `recv_notifies: false` variant models the classic
//! "only notify when the queue *was* full" optimisation, which this
//! model shows loses wakeups under two producers.

use crate::explore::{explore_bfs, Model, Report};

/// One thread's progress: items left to move, and whether it is
/// parked on its condvar.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Thread {
    remaining: u8,
    blocked: bool,
}

#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ChState {
    queue: u8,
    producers: Vec<Thread>,
    consumers: Vec<Thread>,
}

#[derive(Clone, Debug)]
pub enum ChAction {
    /// Producer `t` pushes; `wake` is the blocked consumer chosen by
    /// `notify_one(not_empty)`, if any are parked.
    Send { t: usize, wake: Option<usize> },
    /// Producer `t` finds the queue full and parks on `not_full`.
    SendBlock { t: usize },
    /// Consumer `t` pops; `wake` is the blocked producer chosen by
    /// `notify_one(not_full)`, if any are parked.
    Recv { t: usize, wake: Option<usize> },
    /// Consumer `t` finds the queue empty and parks on `not_empty`.
    RecvBlock { t: usize },
}

pub struct ChannelModel {
    pub cap: u8,
    pub producers: usize,
    pub consumers: usize,
    pub per_producer: u8,
    /// Does a pop notify `not_full`? The real channel always does.
    pub recv_notifies: bool,
    /// Does a push notify `not_empty`? The real channel always does.
    pub send_notifies: bool,
}

impl ChannelModel {
    pub fn smoke() -> Self {
        ChannelModel {
            cap: 1,
            producers: 2,
            consumers: 2,
            per_producer: 2,
            recv_notifies: true,
            send_notifies: true,
        }
    }

    pub fn deep() -> Self {
        ChannelModel {
            cap: 2,
            producers: 3,
            consumers: 2,
            per_producer: 2,
            recv_notifies: true,
            send_notifies: true,
        }
    }

    fn total_items(&self) -> u16 {
        self.producers as u16 * u16::from(self.per_producer)
    }
}

impl Model for ChannelModel {
    type State = ChState;
    type Action = ChAction;

    fn name(&self) -> &'static str {
        "channel"
    }

    fn initial(&self) -> ChState {
        let total = self.total_items();
        let per_consumer = total / self.consumers as u16;
        let mut consumers: Vec<Thread> = (0..self.consumers)
            .map(|_| Thread {
                remaining: per_consumer as u8,
                blocked: false,
            })
            .collect();
        // Distribute any remainder so consumers drain everything.
        let mut rem = total - per_consumer * self.consumers as u16;
        for c in &mut consumers {
            if rem == 0 {
                break;
            }
            c.remaining += 1;
            rem -= 1;
        }
        ChState {
            queue: 0,
            producers: (0..self.producers)
                .map(|_| Thread {
                    remaining: self.per_producer,
                    blocked: false,
                })
                .collect(),
            consumers,
        }
    }

    fn actions(&self, s: &ChState, out: &mut Vec<ChAction>) {
        for (t, p) in s.producers.iter().enumerate() {
            if p.remaining == 0 || p.blocked {
                continue;
            }
            if s.queue < self.cap {
                if self.send_notifies {
                    let parked: Vec<usize> = s
                        .consumers
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.blocked)
                        .map(|(i, _)| i)
                        .collect();
                    if parked.is_empty() {
                        out.push(ChAction::Send { t, wake: None });
                    } else {
                        for w in parked {
                            out.push(ChAction::Send { t, wake: Some(w) });
                        }
                    }
                } else {
                    out.push(ChAction::Send { t, wake: None });
                }
            } else {
                out.push(ChAction::SendBlock { t });
            }
        }
        for (t, c) in s.consumers.iter().enumerate() {
            if c.remaining == 0 || c.blocked {
                continue;
            }
            if s.queue > 0 {
                if self.recv_notifies {
                    let parked: Vec<usize> = s
                        .producers
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.blocked)
                        .map(|(i, _)| i)
                        .collect();
                    if parked.is_empty() {
                        out.push(ChAction::Recv { t, wake: None });
                    } else {
                        for w in parked {
                            out.push(ChAction::Recv { t, wake: Some(w) });
                        }
                    }
                } else {
                    out.push(ChAction::Recv { t, wake: None });
                }
            } else {
                out.push(ChAction::RecvBlock { t });
            }
        }
    }

    fn apply(&self, s: &ChState, a: &ChAction) -> ChState {
        let mut t = s.clone();
        match a {
            ChAction::Send { t: i, wake } => {
                t.queue += 1;
                t.producers[*i].remaining -= 1;
                if let Some(w) = wake {
                    t.consumers[*w].blocked = false;
                }
            }
            ChAction::SendBlock { t: i } => t.producers[*i].blocked = true,
            ChAction::Recv { t: i, wake } => {
                t.queue -= 1;
                t.consumers[*i].remaining -= 1;
                if let Some(w) = wake {
                    t.producers[*w].blocked = false;
                }
            }
            ChAction::RecvBlock { t: i } => t.consumers[*i].blocked = true,
        }
        t
    }

    fn invariant(&self, s: &ChState) -> Result<(), String> {
        if s.queue > self.cap {
            return Err(format!("queue {} over capacity {}", s.queue, self.cap));
        }
        for (i, p) in s.producers.iter().enumerate() {
            if p.blocked && p.remaining == 0 {
                return Err(format!("producer {i} parked with nothing left to send"));
            }
        }
        for (i, c) in s.consumers.iter().enumerate() {
            if c.blocked && c.remaining == 0 {
                return Err(format!("consumer {i} parked with nothing left to receive"));
            }
        }
        Ok(())
    }

    /// A run may stop only when every thread has finished its quota.
    /// Anything else with no enabled action is a wedge — a lost
    /// wakeup.
    fn accepting(&self, s: &ChState) -> bool {
        s.producers.iter().all(|p| p.remaining == 0) && s.consumers.iter().all(|c| c.remaining == 0)
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        ChannelModel::deep()
    } else {
        ChannelModel::smoke()
    };
    explore_bfs(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bfs;

    #[test]
    fn real_notify_discipline_has_no_lost_wakeups() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        assert!(r.states > 50, "state space suspiciously small: {r}");
    }

    #[test]
    fn deep_config_also_clean() {
        let r = verify(true);
        assert!(r.ok(), "{r}");
    }

    #[test]
    fn checker_finds_the_lost_wakeup_when_recv_stops_notifying() {
        let m = ChannelModel {
            recv_notifies: false,
            ..ChannelModel::smoke()
        };
        let r = explore_bfs(&m, 2_000_000);
        let cx = r
            .violation
            .expect("dropping the not_full notification must wedge");
        assert!(cx.reason.contains("wedge"), "{}", cx.reason);
        // The trace must end with some producer parked forever.
        assert!(
            cx.trace.iter().any(|a| a.contains("SendBlock")),
            "{:?}",
            cx.trace
        );
    }

    #[test]
    fn checker_finds_the_lost_wakeup_when_send_stops_notifying() {
        let m = ChannelModel {
            send_notifies: false,
            ..ChannelModel::smoke()
        };
        let r = explore_bfs(&m, 2_000_000);
        let cx = r
            .violation
            .expect("dropping the not_empty notification must wedge");
        assert!(cx.reason.contains("wedge"), "{}", cx.reason);
        assert!(
            cx.trace.iter().any(|a| a.contains("RecvBlock")),
            "{:?}",
            cx.trace
        );
    }
}
