//! Model of [`nexus_proxy::liveness::HeartbeatMonitor`].
//!
//! Drives the *real* production type through every interleaving of
//! clock ticks, (possibly stale) proof-of-life deliveries, and ping
//! sequencing, up to a bounded horizon.
//!
//! Invariants:
//! * `last_seen` is monotone — a stale observation (delivery of an
//!   old frame after a newer one) never moves it backwards.
//! * `last_seen` never exceeds the clock (no proof of life from the
//!   future).
//! * `expired(now)` agrees with the definitional
//!   `now - last_seen > timeout` at every reachable state.
//! * ping sequence numbers are strictly increasing within the bound.

use std::time::Duration;

use nexus_proxy::liveness::{HeartbeatConfig, HeartbeatMonitor};

use crate::explore::{explore_bfs, Model, Report};

#[derive(Clone, PartialEq, Eq, Hash)]
pub struct HbState {
    mon: HeartbeatMonitor,
    clock: u64,
    /// `last_seen` of the *previous* state — the history variable the
    /// monotonicity invariant compares against.
    prev_seen: u64,
    pings: u32,
    prev_seq: u32,
}

#[derive(Clone, Debug)]
pub enum HbAction {
    /// Advance the wall clock one tick.
    Tick,
    /// Deliver proof of life that was generated at time `at`
    /// (`at <= clock`, so stale deliveries are exercised).
    Observe { at: u64 },
    /// Emit a ping (exercises `next_seq`).
    Ping,
}

pub struct HeartbeatModel {
    pub horizon: u64,
    pub timeout_ticks: u64,
    pub max_pings: u32,
}

impl HeartbeatModel {
    pub fn smoke() -> Self {
        HeartbeatModel {
            horizon: 5,
            timeout_ticks: 2,
            max_pings: 2,
        }
    }

    pub fn deep() -> Self {
        HeartbeatModel {
            horizon: 9,
            timeout_ticks: 3,
            max_pings: 3,
        }
    }
}

impl Model for HeartbeatModel {
    type State = HbState;
    type Action = HbAction;

    fn name(&self) -> &'static str {
        "heartbeat"
    }

    fn initial(&self) -> HbState {
        let cfg = HeartbeatConfig {
            interval: Duration::from_nanos(1),
            timeout: Duration::from_nanos(self.timeout_ticks),
        };
        HbState {
            mon: HeartbeatMonitor::new(cfg, 0),
            clock: 0,
            prev_seen: 0,
            pings: 0,
            prev_seq: 0,
        }
    }

    fn actions(&self, s: &HbState, out: &mut Vec<HbAction>) {
        if s.clock < self.horizon {
            out.push(HbAction::Tick);
        }
        for at in 0..=s.clock {
            out.push(HbAction::Observe { at });
        }
        if s.pings < self.max_pings {
            out.push(HbAction::Ping);
        }
    }

    fn apply(&self, s: &HbState, a: &HbAction) -> HbState {
        let mut t = s.clone();
        t.prev_seen = s.mon.last_seen();
        t.prev_seq = 0;
        match a {
            HbAction::Tick => t.clock += 1,
            HbAction::Observe { at } => t.mon.observe(*at),
            HbAction::Ping => {
                t.prev_seq = t.mon.next_seq();
                t.pings += 1;
            }
        }
        t
    }

    fn invariant(&self, s: &HbState) -> Result<(), String> {
        let seen = s.mon.last_seen();
        if seen < s.prev_seen {
            return Err(format!(
                "last_seen moved backwards: {} -> {} (stale observation accepted)",
                s.prev_seen, seen
            ));
        }
        if seen > s.clock {
            return Err(format!(
                "last_seen {} is ahead of the clock {}",
                seen, s.clock
            ));
        }
        let def = s.clock.saturating_sub(seen) > self.timeout_ticks;
        if s.mon.expired(s.clock) != def {
            return Err(format!(
                "expired({}) = {} but now-last_seen = {} vs timeout {}",
                s.clock,
                s.mon.expired(s.clock),
                s.clock.saturating_sub(seen),
                self.timeout_ticks
            ));
        }
        if s.prev_seq != 0 && s.prev_seq != s.pings {
            return Err(format!(
                "ping seq {} does not match ping count {}",
                s.prev_seq, s.pings
            ));
        }
        Ok(())
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        HeartbeatModel::deep()
    } else {
        HeartbeatModel::smoke()
    };
    explore_bfs(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bfs;

    #[test]
    fn real_monitor_holds_all_invariants_exhaustively() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        assert!(r.states > 100, "state space suspiciously small: {r}");
    }

    /// Spec-level reimplementation with the classic bug: `observe`
    /// assigns instead of taking the max, so a stale delivery rewinds
    /// `last_seen`. The checker must find it with a minimal trace.
    struct BuggyMonitorModel;

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct BuggyState {
        last_seen: u64,
        clock: u64,
        prev_seen: u64,
    }

    #[derive(Clone, Debug)]
    enum BuggyAction {
        Tick,
        Observe { at: u64 },
    }

    impl Model for BuggyMonitorModel {
        type State = BuggyState;
        type Action = BuggyAction;

        fn name(&self) -> &'static str {
            "heartbeat-buggy"
        }
        fn initial(&self) -> BuggyState {
            BuggyState {
                last_seen: 0,
                clock: 0,
                prev_seen: 0,
            }
        }
        fn actions(&self, s: &BuggyState, out: &mut Vec<BuggyAction>) {
            if s.clock < 4 {
                out.push(BuggyAction::Tick);
            }
            for at in 0..=s.clock {
                out.push(BuggyAction::Observe { at });
            }
        }
        fn apply(&self, s: &BuggyState, a: &BuggyAction) -> BuggyState {
            let mut t = s.clone();
            t.prev_seen = s.last_seen;
            match a {
                BuggyAction::Tick => t.clock += 1,
                // The bug: plain assignment, not `max`.
                BuggyAction::Observe { at } => t.last_seen = *at,
            }
            t
        }
        fn invariant(&self, s: &BuggyState) -> Result<(), String> {
            if s.last_seen < s.prev_seen {
                Err(format!(
                    "last_seen moved backwards: {} -> {}",
                    s.prev_seen, s.last_seen
                ))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn checker_finds_the_stale_observation_bug_minimally() {
        let r = explore_bfs(&BuggyMonitorModel, 100_000);
        let cx = r.violation.expect("bug must be found");
        // Minimal: Tick, Observe{1}, Observe{0}.
        assert_eq!(cx.trace.len(), 3, "{:?}", cx.trace);
        assert!(cx.reason.contains("moved backwards"));
    }
}
