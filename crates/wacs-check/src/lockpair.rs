//! Model of nested `wacs_sync::OrderedMutex` acquisition.
//!
//! Each thread runs a straight-line program: acquire its locks in a
//! fixed order, then release them in reverse. The only rule the
//! workspace imposes (statically by the `lock-order` xtask rule,
//! dynamically by `wacs_sync`'s lockdep graph) is that every thread
//! nests labels in one global order — this model is the semantic
//! justification for that rule: consistent order is deadlock-free
//! across *all* interleavings, and a single inverted pair deadlocks.
//!
//! Deadlock detection is the explorer's wedge check: all threads
//! either done or waiting on a held lock, and not every thread done.
//!
//! This is the one model verified with the sleep-set DFS engine:
//! steps of different threads on different locks commute, and the
//! pruning pays off as thread count grows. The test suite
//! cross-checks the verdict against plain BFS.

use crate::explore::{explore_dfs_sleep, Model, Report};

#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LpState {
    /// Program counter per thread: `0..n` acquires, `n..2n` releases.
    pc: Vec<u8>,
    /// Lock owners by lock index.
    owner: Vec<Option<u8>>,
}

#[derive(Clone, Debug)]
pub struct LpStep {
    pub thread: usize,
    pub lock: usize,
    pub acquire: bool,
}

pub struct LockPairModel {
    /// Per-thread acquisition order (released in reverse).
    pub programs: Vec<Vec<usize>>,
    pub locks: usize,
}

impl LockPairModel {
    /// Both threads nest a -> b: the shipped discipline.
    pub fn smoke() -> Self {
        LockPairModel {
            programs: vec![vec![0, 1], vec![0, 1]],
            locks: 2,
        }
    }

    /// Three threads, three locks, one global order.
    pub fn deep() -> Self {
        LockPairModel {
            programs: vec![vec![0, 1, 2], vec![0, 1, 2], vec![1, 2], vec![0, 2]],
            locks: 3,
        }
    }

    /// The classic inversion: thread 1 nests b -> a.
    pub fn inverted() -> Self {
        LockPairModel {
            programs: vec![vec![0, 1], vec![1, 0]],
            locks: 2,
        }
    }

    /// The step thread `t` would take in `s`, if any is enabled.
    fn step_of(&self, s: &LpState, t: usize) -> Option<LpStep> {
        let prog = &self.programs[t];
        let n = prog.len() as u8;
        let pc = s.pc[t];
        if pc < n {
            let lock = prog[pc as usize];
            // Acquire: enabled only when free.
            if s.owner[lock].is_none() {
                return Some(LpStep {
                    thread: t,
                    lock,
                    acquire: true,
                });
            }
            None
        } else if pc < 2 * n {
            let lock = prog[(2 * n - 1 - pc) as usize];
            Some(LpStep {
                thread: t,
                lock,
                acquire: false,
            })
        } else {
            None
        }
    }
}

impl Model for LockPairModel {
    type State = LpState;
    type Action = LpStep;

    fn name(&self) -> &'static str {
        "lockpair"
    }

    fn initial(&self) -> LpState {
        LpState {
            pc: vec![0; self.programs.len()],
            owner: vec![None; self.locks],
        }
    }

    fn actions(&self, s: &LpState, out: &mut Vec<LpStep>) {
        for t in 0..self.programs.len() {
            if let Some(step) = self.step_of(s, t) {
                out.push(step);
            }
        }
    }

    fn apply(&self, s: &LpState, a: &LpStep) -> LpState {
        let mut t = s.clone();
        t.pc[a.thread] += 1;
        t.owner[a.lock] = if a.acquire {
            Some(a.thread as u8)
        } else {
            None
        };
        t
    }

    fn invariant(&self, s: &LpState) -> Result<(), String> {
        // Mutual exclusion is structural here; check ownership sanity:
        // a lock is held iff its owner's pc is inside the hold window.
        for (l, o) in s.owner.iter().enumerate() {
            if let Some(t) = o {
                let prog = &self.programs[*t as usize];
                let n = prog.len() as u8;
                let pc = s.pc[*t as usize];
                let pos = prog.iter().position(|&x| x == l).map(|p| p as u8);
                let held = match pos {
                    Some(p) => pc > p && pc < 2 * n - p,
                    None => false,
                };
                if !held {
                    return Err(format!(
                        "lock {l} owned by thread {t} outside its hold window (pc {pc})"
                    ));
                }
            }
        }
        Ok(())
    }

    /// A run may stop only when every thread ran to completion;
    /// otherwise a state with no enabled steps is a deadlock.
    fn accepting(&self, s: &LpState) -> bool {
        s.pc.iter()
            .zip(&self.programs)
            .all(|(pc, prog)| *pc == 2 * prog.len() as u8)
    }

    /// Steps of different threads on different locks commute.
    fn independent(&self, a: &LpStep, b: &LpStep) -> bool {
        a.thread != b.thread && a.lock != b.lock
    }
}

pub fn verify(deep: bool) -> Report {
    let m = if deep {
        LockPairModel::deep()
    } else {
        LockPairModel::smoke()
    };
    explore_dfs_sleep(&m, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bfs;

    #[test]
    fn consistent_order_is_deadlock_free_exhaustively() {
        let r = verify(false);
        assert!(r.ok(), "{r}");
        let r = verify(true);
        assert!(r.ok(), "{r}");
    }

    #[test]
    fn bfs_and_dfs_sleep_agree_on_both_verdicts() {
        let clean = LockPairModel::smoke();
        assert!(explore_bfs(&clean, 2_000_000).ok());
        assert!(explore_dfs_sleep(&clean, 2_000_000).ok());
        let bad = LockPairModel::inverted();
        assert!(explore_bfs(&bad, 2_000_000).violation.is_some());
        assert!(explore_dfs_sleep(&bad, 2_000_000).violation.is_some());
    }

    #[test]
    fn checker_finds_the_abba_deadlock() {
        let r = explore_bfs(&LockPairModel::inverted(), 2_000_000);
        let cx = r.violation.expect("ABBA must deadlock");
        assert!(cx.reason.contains("wedge"), "{}", cx.reason);
        // Minimal wedge: each thread acquires its first lock.
        assert_eq!(cx.trace.len(), 2, "{:?}", cx.trace);
    }

    /// Fidelity: the runtime lockdep in `wacs_sync` flags the same
    /// inversion the model deadlocks on, and stays quiet on the
    /// order the model proves safe.
    #[test]
    fn runtime_lockdep_agrees_with_the_model() {
        use wacs_sync::{lock_order, OrderedMutex};

        let a = OrderedMutex::new("wc.pair.a", 0u8);
        let b = OrderedMutex::new("wc.pair.b", 0u8);
        // The safe discipline, twice: a -> b.
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        assert!(
            lock_order::check_clean("wc.pair.").is_ok(),
            "consistent nesting must stay clean"
        );
        // The inversion the model deadlocks on: b -> a.
        let gb = b.lock();
        let ga = a.lock();
        drop(ga);
        drop(gb);
        let v = lock_order::violations_mentioning("wc.pair.");
        assert!(
            !v.is_empty(),
            "runtime lockdep must flag the inversion the model deadlocks on"
        );
    }
}
