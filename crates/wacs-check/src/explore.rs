//! Explicit-state exploration engines.
//!
//! Two strategies over the same [`Model`] trait:
//!
//! * [`explore_bfs`] — breadth-first with a visited set and a parent
//!   map. Exhaustive over the reachable state space; when an
//!   invariant fails (or a non-accepting state has no enabled
//!   actions — a wedge: deadlock or lost wakeup), the reported
//!   counterexample trace is *minimal* in actions by BFS order.
//! * [`explore_dfs_sleep`] — depth-first with sleep sets, a
//!   DPOR-style pruning: after exploring action `a` from a state,
//!   siblings that are independent of `a` (per
//!   [`Model::independent`]) inherit `a` in their sleep set and the
//!   redundant interleaving is skipped. Combined with full state
//!   caching this is a pruning *accelerator*, not a proof of
//!   minimality — the test suite pins that both engines agree on
//!   every model's verdict, and DESIGN.md documents the caveat.
//!
//! Both engines are bounded by `max_states`; a run that hits the
//! bound reports `exhausted: false` and the caller treats that as a
//! failure (the documented depths must fit).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

/// A finite-state model: a pure transition system plus its safety
/// properties.
pub trait Model {
    type State: Clone + Eq + Hash;
    type Action: Clone + fmt::Debug;

    fn name(&self) -> &'static str;
    fn initial(&self) -> Self::State;
    /// Enabled actions in `s`, pushed into `out` (cleared by caller).
    fn actions(&self, s: &Self::State, out: &mut Vec<Self::Action>);
    fn apply(&self, s: &Self::State, a: &Self::Action) -> Self::State;
    /// Safety property; `Err(reason)` is a violation.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;
    /// May a run legally stop here? A non-accepting state with no
    /// enabled actions is a wedge (deadlock / lost wakeup).
    fn accepting(&self, _s: &Self::State) -> bool {
        true
    }
    /// May `a` and `b` be commuted without changing the result?
    /// Conservative default: never. Only used by the sleep-set
    /// engine.
    fn independent(&self, _a: &Self::Action, _b: &Self::Action) -> bool {
        false
    }
}

/// A violation with its replayable action trace from the initial
/// state.
#[derive(Debug, Clone)]
pub struct Counterexample {
    pub reason: String,
    pub trace: Vec<String>,
}

/// Outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Report {
    pub model: &'static str,
    pub mode: &'static str,
    pub states: usize,
    pub transitions: usize,
    pub max_depth: usize,
    pub exhausted: bool,
    pub violation: Option<Counterexample>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.exhausted && self.violation.is_none()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} [{}] states={} transitions={} depth={} {}",
            self.model,
            self.mode,
            self.states,
            self.transitions,
            self.max_depth,
            match (&self.violation, self.exhausted) {
                (Some(v), _) => format!("VIOLATION: {}", v.reason),
                (None, false) => "INCOMPLETE (state bound hit)".to_string(),
                (None, true) => "ok: exhaustive, all invariants hold".to_string(),
            }
        )
    }
}

/// Breadth-first exhaustive exploration with minimal counterexamples.
pub fn explore_bfs<M: Model>(m: &M, max_states: usize) -> Report {
    let init = m.initial();
    let mut arena: Vec<M::State> = vec![init.clone()];
    let mut meta: Vec<(usize, String, usize)> = vec![(0, String::new(), 0)]; // parent, action, depth
    let mut index: HashMap<M::State, usize> = HashMap::new();
    index.insert(init, 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut transitions = 0usize;
    let mut max_depth = 0usize;
    let mut exhausted = true;
    let mut acts: Vec<M::Action> = Vec::new();

    while let Some(i) = queue.pop_front() {
        let s = arena[i].clone();
        let depth = meta[i].2;
        max_depth = max_depth.max(depth);
        if let Err(reason) = m.invariant(&s) {
            return finish(
                m,
                "bfs",
                &arena,
                &meta,
                transitions,
                max_depth,
                true,
                i,
                reason,
            );
        }
        acts.clear();
        m.actions(&s, &mut acts);
        if acts.is_empty() && !m.accepting(&s) {
            let reason = "wedge: no enabled actions in a non-accepting state \
                          (deadlock / lost wakeup)"
                .to_string();
            return finish(
                m,
                "bfs",
                &arena,
                &meta,
                transitions,
                max_depth,
                true,
                i,
                reason,
            );
        }
        for a in &acts {
            transitions += 1;
            let t = m.apply(&s, a);
            if index.contains_key(&t) {
                continue;
            }
            if arena.len() >= max_states {
                exhausted = false;
                continue;
            }
            let j = arena.len();
            arena.push(t.clone());
            meta.push((i, format!("{a:?}"), depth + 1));
            index.insert(t, j);
            queue.push_back(j);
        }
    }

    Report {
        model: m.name(),
        mode: "bfs",
        states: arena.len(),
        transitions,
        max_depth,
        exhausted,
        violation: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn finish<M: Model>(
    m: &M,
    mode: &'static str,
    arena: &[M::State],
    meta: &[(usize, String, usize)],
    transitions: usize,
    max_depth: usize,
    exhausted: bool,
    at: usize,
    reason: String,
) -> Report {
    let mut trace = Vec::new();
    let mut i = at;
    while i != 0 {
        let (parent, action, _) = &meta[i];
        trace.push(action.clone());
        i = *parent;
    }
    trace.reverse();
    Report {
        model: m.name(),
        mode,
        states: arena.len(),
        transitions,
        max_depth,
        exhausted,
        violation: Some(Counterexample { reason, trace }),
    }
}

/// Depth-first exploration with sleep-set pruning and state caching.
pub fn explore_dfs_sleep<M: Model>(m: &M, max_states: usize) -> Report {
    struct Frame<A> {
        state_ix: usize,
        acts: Vec<A>,
        next: usize,
        sleep: Vec<String>,
    }

    let init = m.initial();
    let mut seen: HashMap<M::State, usize> = HashMap::new();
    seen.insert(init.clone(), 0);
    let mut arena: Vec<M::State> = vec![init];
    let mut transitions = 0usize;
    let mut max_depth = 0usize;
    let mut exhausted = true;
    // The DFS path itself is the counterexample trace.
    let mut path: Vec<String> = Vec::new();

    let mut stack: Vec<Frame<M::Action>> = Vec::new();
    let open = |state_ix: usize,
                sleep: Vec<String>,
                stack: &mut Vec<Frame<M::Action>>,
                arena: &Vec<M::State>|
     -> Result<(), String> {
        let s = &arena[state_ix];
        m.invariant(s)?;
        let mut acts = Vec::new();
        m.actions(s, &mut acts);
        if acts.is_empty() && !m.accepting(s) {
            return Err("wedge: no enabled actions in a non-accepting state \
                        (deadlock / lost wakeup)"
                .to_string());
        }
        stack.push(Frame {
            state_ix,
            acts,
            next: 0,
            sleep,
        });
        Ok(())
    };

    if let Err(reason) = open(0, Vec::new(), &mut stack, &arena) {
        return Report {
            model: m.name(),
            mode: "dfs-sleep",
            states: 1,
            transitions: 0,
            max_depth: 0,
            exhausted: true,
            violation: Some(Counterexample {
                reason,
                trace: Vec::new(),
            }),
        };
    }

    while let Some(top) = stack.last_mut() {
        if top.next >= top.acts.len() {
            stack.pop();
            path.pop();
            continue;
        }
        let a = top.acts[top.next].clone();
        top.next += 1;
        let a_str = format!("{a:?}");
        if top.sleep.contains(&a_str) {
            continue;
        }
        // Sleep set for the child: inherited + earlier siblings, kept
        // only when independent of `a`.
        let mut child_sleep: Vec<String> = Vec::new();
        for (k, prev) in top.acts.iter().enumerate() {
            if k >= top.next - 1 {
                break;
            }
            if m.independent(prev, &a) {
                child_sleep.push(format!("{prev:?}"));
            }
        }
        for slept in &top.sleep {
            // Inherited sleepers stay asleep only if independent of
            // `a`; we compare by description against current acts.
            if top
                .acts
                .iter()
                .any(|x| format!("{x:?}") == *slept && m.independent(x, &a))
            {
                child_sleep.push(slept.clone());
            }
        }
        let parent_state = arena[top.state_ix].clone();
        transitions += 1;
        let t = m.apply(&parent_state, &a);
        if seen.contains_key(&t) {
            continue;
        }
        if arena.len() >= max_states {
            exhausted = false;
            continue;
        }
        let ix = arena.len();
        arena.push(t.clone());
        seen.insert(t, ix);
        path.push(a_str);
        max_depth = max_depth.max(path.len());
        if let Err(reason) = open(ix, child_sleep, &mut stack, &arena) {
            return Report {
                model: m.name(),
                mode: "dfs-sleep",
                states: arena.len(),
                transitions,
                max_depth,
                exhausted,
                violation: Some(Counterexample {
                    reason,
                    trace: path,
                }),
            };
        }
    }

    Report {
        model: m.name(),
        mode: "dfs-sleep",
        states: arena.len(),
        transitions,
        max_depth,
        exhausted,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two independent counters to a bound; invariant optionally
    /// broken at a target corner.
    struct TwoCounters {
        bound: u8,
        poison: Option<(u8, u8)>,
    }

    impl Model for TwoCounters {
        type State = (u8, u8);
        type Action = (&'static str, u8);

        fn name(&self) -> &'static str {
            "two-counters"
        }
        fn initial(&self) -> (u8, u8) {
            (0, 0)
        }
        fn actions(&self, s: &(u8, u8), out: &mut Vec<(&'static str, u8)>) {
            if s.0 < self.bound {
                out.push(("incx", 0));
            }
            if s.1 < self.bound {
                out.push(("incy", 1));
            }
        }
        fn apply(&self, s: &(u8, u8), a: &(&'static str, u8)) -> (u8, u8) {
            if a.1 == 0 {
                (s.0 + 1, s.1)
            } else {
                (s.0, s.1 + 1)
            }
        }
        fn invariant(&self, s: &(u8, u8)) -> Result<(), String> {
            if self.poison == Some(*s) {
                Err(format!("poison state {s:?}"))
            } else {
                Ok(())
            }
        }
        fn independent(&self, a: &(&'static str, u8), b: &(&'static str, u8)) -> bool {
            a.1 != b.1
        }
    }

    #[test]
    fn bfs_exhausts_the_grid() {
        let m = TwoCounters {
            bound: 4,
            poison: None,
        };
        let r = explore_bfs(&m, 10_000);
        assert!(r.ok(), "{r}");
        assert_eq!(r.states, 25); // (bound+1)^2
        assert_eq!(r.max_depth, 8);
    }

    #[test]
    fn bfs_counterexample_is_minimal() {
        let m = TwoCounters {
            bound: 4,
            poison: Some((2, 1)),
        };
        let r = explore_bfs(&m, 10_000);
        let cx = r.violation.expect("must find the poison state");
        assert_eq!(cx.trace.len(), 3, "{:?}", cx.trace);
        assert_eq!(
            cx.trace.iter().filter(|a| a.contains("incx")).count(),
            2,
            "{:?}",
            cx.trace
        );
    }

    #[test]
    fn dfs_sleep_agrees_and_prunes() {
        let clean = TwoCounters {
            bound: 4,
            poison: None,
        };
        let r = explore_dfs_sleep(&clean, 10_000);
        assert!(r.ok(), "{r}");
        assert_eq!(r.states, 25, "caching still visits every state");
        // Pruning: fewer transitions than the unpruned BFS.
        let b = explore_bfs(&clean, 10_000);
        assert!(
            r.transitions <= b.transitions,
            "sleep sets must not explore more: {} vs {}",
            r.transitions,
            b.transitions
        );
        let dirty = TwoCounters {
            bound: 4,
            poison: Some((2, 1)),
        };
        let rd = explore_dfs_sleep(&dirty, 10_000);
        assert!(rd.violation.is_some(), "dfs must agree on the verdict");
    }

    #[test]
    fn state_bound_reports_incomplete() {
        let m = TwoCounters {
            bound: 40,
            poison: None,
        };
        let r = explore_bfs(&m, 100);
        assert!(!r.exhausted);
        assert!(!r.ok());
    }

    /// A model whose only terminal state is non-accepting: the wedge
    /// must be reported with its trace.
    struct Wedge;
    impl Model for Wedge {
        type State = u8;
        type Action = &'static str;
        fn name(&self) -> &'static str {
            "wedge"
        }
        fn initial(&self) -> u8 {
            0
        }
        fn actions(&self, s: &u8, out: &mut Vec<&'static str>) {
            if *s < 2 {
                out.push("step");
            }
        }
        fn apply(&self, s: &u8, _a: &&'static str) -> u8 {
            s + 1
        }
        fn invariant(&self, _s: &u8) -> Result<(), String> {
            Ok(())
        }
        fn accepting(&self, s: &u8) -> bool {
            *s != 2
        }
    }

    #[test]
    fn wedges_are_violations_with_traces() {
        let r = explore_bfs(&Wedge, 100);
        let cx = r.violation.expect("wedge must be reported");
        assert!(cx.reason.contains("wedge"));
        assert_eq!(cx.trace.len(), 2);
        let r = explore_dfs_sleep(&Wedge, 100);
        assert!(r.violation.is_some());
    }
}
