//! `wacs-check` — exhaustive model checking for the workspace's
//! liveness and concurrency state machines.
//!
//! Where `xtask lint` reasons about the *source* (token-level rules,
//! the static lock-order graph), this crate reasons about the
//! *semantics*: it drives the real production types — and faithful
//! abstractions where the real code is I/O-bound — through **every**
//! reachable state under bounded interleaving, and checks safety
//! invariants in each one. Violations come back as minimal
//! replayable action traces (see EXPERIMENTS.md for how to read
//! them).
//!
//! Models and their headline invariants:
//!
//! * [`heartbeat`] — `HeartbeatMonitor`: `last_seen` monotone under
//!   stale deliveries; `expired` definitionally consistent.
//! * [`breaker`] — `CircuitBreaker`: never closes without a
//!   half-open probe; trips exactly at the threshold; cooldown
//!   gates the probe.
//! * [`admission`] — `AdmissionGate`: capacity conservation (ghost
//!   releases are no-ops); bounds respected; no admission after
//!   drain.
//! * [`bindsync`] — generation-counted bind-table sync: the
//!   read-generation-first ordering never claims a current
//!   generation for a stale table; synced generations are monotone.
//! * [`channel`] — the `wacs_sync` bounded channel's monitor
//!   discipline: no lost wakeups (wedge-freedom) under the
//!   notify-one-on-every-operation protocol.
//! * [`lockpair`] — nested `OrderedMutex` acquisition: one global
//!   nesting order is deadlock-free across all interleavings
//!   (verified with the sleep-set DFS engine).
//! * [`shard`] — the outer-fleet `ShardMap`: total ownership, the
//!   failover ladder is a permutation, breaker-driven descent lands
//!   on the shrunken-map owner, redirects converge in one hop, and
//!   installs are strictly generation-monotone.
//! * [`stripe`] — striped-transfer reassembly (`Reassembler`): under
//!   every arrival interleaving, completion is reported exactly once
//!   iff every offset is covered, duplicates are absorbed without
//!   state change, corrupted duplicates are typed `Conflict` errors,
//!   and a whole-stripe failover replay converges.
//! * [`chaos`] — the chaos layer's retry/recovery discipline against
//!   the real `wacs_chaos::ChaosProfile` schedule: fault decisions
//!   are pure and periodic, recovery samples are recorded exactly
//!   once per failure episode, and the retry budget converges under
//!   the worst-case schedule plus bounded spurious failures.
//!
//! Two of these invariants began life as counterexamples: the
//! breaker's stale-success close and the admission gate's
//! ghost-release capacity leak were found by these models, fixed in
//! `nexus_proxy::liveness`, and pinned there by regression tests.
//! The buggy variants live on in this crate's test suite as
//! spec-level models the checker must still catch.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod admission;
pub mod bindsync;
pub mod breaker;
pub mod channel;
pub mod chaos;
pub mod explore;
pub mod heartbeat;
pub mod lockpair;
pub mod shard;
pub mod stripe;

pub use explore::{explore_bfs, explore_dfs_sleep, Counterexample, Model, Report};

/// Run every model at the smoke (`deep = false`, < 30 s total, CI
/// tier) or deep (`deep = true`) bound. Callers treat a report with
/// a violation or `exhausted == false` as failure.
pub fn run_all(deep: bool) -> Vec<Report> {
    vec![
        heartbeat::verify(deep),
        breaker::verify(deep),
        admission::verify(deep),
        bindsync::verify(deep),
        channel::verify(deep),
        lockpair::verify(deep),
        shard::verify(deep),
        stripe::verify(deep),
        chaos::verify(deep),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_is_exhaustive_and_clean() {
        for r in run_all(false) {
            assert!(r.ok(), "{r}");
        }
    }
}
