//! Minimal benchmark harness for the `harness = false` bench targets.
//!
//! `cargo bench` invokes each bench binary with `--bench` (plus an
//! optional name filter); this module gives those binaries a
//! criterion-shaped surface — groups, per-iteration timing, throughput
//! annotation — without an external dependency, which matters because
//! the workspace must build offline. It measures wall-clock medians
//! over fixed sample batches; it is a smoke-and-trend tool, not a
//! statistics engine.

use std::time::{Duration, Instant};

/// Re-export point for preventing the optimizer from deleting the
/// benchmarked computation.
pub use std::hint::black_box;

/// What one iteration processes, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level driver: parses the argv conventions `cargo bench` uses
/// (`--bench`, optional substring filter) and runs matching benches.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    pub fn from_env() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Start a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            samples: 20,
            throughput: None,
        }
    }

    /// One-off benchmark without group settings.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        self.group(name).run("", f);
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing sample-count and throughput settings.
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f`, printing a one-line summary. Warms up briefly, then
    /// takes `samples` timed runs and reports the median.
    pub fn run(&mut self, name: &str, mut f: impl FnMut()) {
        let full = if name.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{name}", self.name)
        };
        if !self.harness.matches(&full) {
            return;
        }
        // Warm-up: run until ~50ms spent or 5 iterations, whichever first.
        let warm_start = Instant::now();
        for _ in 0..5 {
            f();
            if warm_start.elapsed() > Duration::from_millis(50) {
                break;
            }
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let rate = self.throughput.map(|t| {
            let secs = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / secs),
                Throughput::Bytes(n) => format!(", {:.2} MB/s", n as f64 / secs / 1e6),
            }
        });
        println!(
            "bench {full:<44} median {:>12} ({} samples{})",
            fmt_duration(median),
            times.len(),
            rate.unwrap_or_default(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut h = Harness { filter: None };
        let mut calls = 0u32;
        h.group("g").sample_size(3).run("case", || calls += 1);
        // 3 samples + up to 5 warm-up calls.
        assert!((4..=8).contains(&calls));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("other".into()),
        };
        let mut calls = 0u32;
        h.group("g").run("case", || calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn durations_format_by_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
