//! Ablation: cross-traffic on the 1.5 Mbps IMnet link.
//!
//! The paper measured a quiet research WAN. This study injects
//! competing bulk flows on the shared gateway↔ETL segment and re-runs
//! the Table 2 WAN cells, showing how the direct/indirect comparison
//! degrades under contention — the per-link FIFO queueing model at
//! work. (The proxy's verdict is contention-robust: both paths share
//! the same bottleneck.)

use netsim::prelude::*;
use nexus_proxy::sim::{NxClient, NxEvent, NxHandled, SimInnerServer, SimOuterServer, SimProxyEnv};
use std::sync::Arc;
use wacs_bench::{fmt_bw, fmt_ms};
use wacs_core::calibration as cal;
use wacs_core::testbed::{FirewallMode, PaperTestbed, NXPORT, OUTER_CTRL_PORT};
use wacs_sync::Mutex;

/// Fires a bulk message across the WAN every `period`, forever.
struct CrossTraffic {
    dst: (NodeId, u16),
    size: u64,
    period: SimDuration,
    flow: Option<FlowId>,
}

impl Actor for CrossTraffic {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.connect(self.dst, 0);
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        if let FlowEvent::Connected { flow, .. } = ev {
            self.flow = Some(flow);
            ctx.set_timer(SimDuration::ZERO, 1);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if let Some(flow) = self.flow {
            let _ = ctx.send(flow, self.size, ());
            ctx.set_timer(self.period, 1);
        }
    }
}

/// Sink for cross-traffic.
struct Sink {
    port: u16,
}

impl Actor for Sink {
    // A taken port here is a typo in this harness; abort with context.
    #[allow(clippy::expect_used)]
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.port).expect("sink port in use"); // lint:allow(unwrap-panic)
    }
}

/// A ping-pong measurement with optional WAN cross-traffic, built on
/// the same actors as the Table 2 harness but assembled here so the
/// background load can be injected.
fn measure(indirect: bool, size: u64, load_fraction: f64) -> (SimDuration, f64) {
    // Reuse wacs-core's harness when unloaded; otherwise rebuild with
    // cross traffic.
    let mode = if indirect {
        FirewallMode::DenyInWithNxport
    } else {
        FirewallMode::TemporarilyOpen
    };
    let tb = PaperTestbed::build(mode);
    let mut sim = Simulator::new(tb.topo.clone(), NetConfig::default(), 3);
    if indirect {
        sim.spawn(
            tb.rwcp_outer,
            Box::new(SimOuterServer::new(
                OUTER_CTRL_PORT,
                Some((tb.rwcp_inner, NXPORT)),
                cal::relay_model(),
            )),
        );
        sim.spawn(
            tb.rwcp_inner,
            Box::new(SimInnerServer::new(NXPORT, cal::relay_model())),
        );
    }
    // Cross traffic: bulk messages etl-o2k → rwcp-outer sized so the
    // long-run WAN load is `load_fraction` of capacity. (The outer host
    // sits outside the firewall, so this traffic is firewall-neutral.)
    if load_fraction > 0.0 {
        let chunk = 64 * 1024u64;
        let period =
            SimDuration::from_secs_f64(chunk as f64 / (cal::WAN_BANDWIDTH * load_fraction));
        sim.spawn(tb.rwcp_outer, Box::new(Sink { port: 9100 }));
        sim.spawn(
            tb.etl_o2k,
            Box::new(CrossTraffic {
                dst: (tb.rwcp_outer, 9100),
                size: chunk,
                period,
                flow: None,
            }),
        );
    }

    // The measured pair (same roles as the Table 2 harness).
    let shared: Shared = Arc::default();
    let env_server = if indirect {
        SimProxyEnv::via((tb.rwcp_outer, OUTER_CTRL_PORT))
    } else {
        SimProxyEnv::direct()
    };
    sim.spawn(
        tb.rwcp_sun,
        Box::new(PpServer {
            nx: NxClient::new(env_server),
            shared: shared.clone(),
            size,
            pong_flow: None,
        }),
    );
    sim.spawn(
        tb.etl_sun,
        Box::new(PpClient {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            size,
            rounds_left: 10,
            flow: None,
            t0: None,
        }),
    );
    sim.run_until(SimTime(SimDuration::from_secs(300).nanos()));
    let st = shared.lock();
    // The run above either finishes the ping-pong or the harness is
    // broken; abort rather than chart a bogus number.
    #[allow(clippy::expect_used)]
    let one_way = st.result.expect("measurement incomplete"); // lint:allow(unwrap-panic)
    (one_way, size as f64 / one_way.as_secs_f64())
}

#[derive(Default)]
struct PpState {
    server_adv: Option<(NodeId, u16)>,
    result: Option<SimDuration>,
}
type Shared = Arc<Mutex<PpState>>;

struct PpServer {
    nx: NxClient,
    shared: Shared,
    size: u64,
    pong_flow: Option<FlowId>,
}

impl PpServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.shared.lock().server_adv = Some(advertised);
            }
            NxHandled::Event(NxEvent::Accepted { flow }) => {
                self.pong_flow = Some(flow);
            }
            NxHandled::Data(d) => {
                let flow = self.pong_flow.unwrap_or(d.flow);
                let size = self.size;
                let _ = self.nx.send_data(ctx, flow, size, ());
            }
            _ => {}
        }
    }
}

impl Actor for PpServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().server_adv = Some(adv);
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, m: Delivery) {
        let h = self.nx.on_message(ctx, m);
        self.handle(ctx, h);
    }
}

struct PpClient {
    nx: NxClient,
    shared: Shared,
    size: u64,
    rounds_left: u32,
    flow: Option<FlowId>,
    t0: Option<SimTime>,
}

impl PpClient {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                self.flow = Some(flow);
                self.t0 = Some(ctx.now());
                let size = self.size;
                let _ = self.nx.send_data(ctx, flow, size, ());
            }
            NxHandled::Data(d) => {
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    // t0 is stamped when the flow connects, before the
                    // first ping can complete a round.
                    #[allow(clippy::expect_used)]
                    let elapsed = ctx.now().since(self.t0.expect("t0 set at start")); // lint:allow(unwrap-panic)
                    self.shared.lock().result = Some(SimDuration(elapsed.nanos() / 20)); // 10 RTTs
                    ctx.stop_simulation();
                    return;
                }
                let (flow, size) = (d.flow, self.size);
                let _ = self.nx.send_data(ctx, flow, size, ());
            }
            _ => {}
        }
    }
}

impl Actor for PpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 7);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if self.flow.is_none() {
            let adv = self.shared.lock().server_adv;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 0),
                None => ctx.set_timer(SimDuration::from_millis(1), 7),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, m: Delivery) {
        let h = self.nx.on_message(ctx, m);
        self.handle(ctx, h);
    }
}

fn main() {
    println!("Ablation: WAN cross-traffic vs the Table 2 WAN cells\n");
    println!(
        "{:>10} | {:>12} {:>12} | {:>14} {:>14}",
        "WAN load", "direct lat", "proxied lat", "direct bw(64K)", "proxied bw(64K)"
    );
    for load in [0.0, 0.3, 0.6, 0.9] {
        let (dl, _) = measure(false, 1, load);
        let (il, _) = measure(true, 1, load);
        let (_, dbw) = measure(false, 65536, load);
        let (_, ibw) = measure(true, 65536, load);
        println!(
            "{:>9.0}% | {:>12} {:>12} | {:>14} {:>14}",
            load * 100.0,
            fmt_ms(dl.as_millis_f64()),
            fmt_ms(il.as_millis_f64()),
            fmt_bw(dbw),
            fmt_bw(ibw)
        );
    }
    println!("\nBoth paths share the congested bottleneck: contention inflates them");
    println!("together, so the paper's direct-vs-proxied verdict is load-robust.");
}
