//! `proxy_bench` — the committed perf-trajectory harness for the relay
//! data plane (thread-pair pump vs multiplexed reactor).
//!
//! Four named scenarios, each run under **both** pump modes against a
//! real-socket outer server on the loopback [`firewall::vnet`], plus a
//! virtual-time fleet-scaling scenario:
//!
//! | scenario | shape |
//! |---|---|
//! | `bulk_throughput` | a concurrent transfer storm: 256 relays opened and driven at once through the outer server, relay establishment included in the timed region, median of 5 trials after a warmup |
//! | `fanin` | many concurrent relays to one sink, small echoes |
//! | `latency` | one relay, small-message echo round trips |
//! | `chaos` | schema v2: the `wacs-chaos` suite runs one real-path cell per fault class (RST, stall, throttle, blackhole, delayed FIN, split/merge, rolling outer restarts, inner kill) and reports measured recovery-time p50/p95/p99 per cell |
//! | `shard_scaling` | virtual-time (netsim) fan-in cells over a sharded outer fleet: the same cell workload at 1/2/4 shards (Table 2's fan-in shape, relay service queues per shard), plus a kill-one-shard chaos cell that must finish with zero lost sequence numbers |
//! | `stripe_scaling` | virtual-time striped bulk transfer over the fleet: one multi-megabyte staging payload a single relay cannot saturate, moved at 1/2/4/8 parallel stripe lanes (GridFTP-style), plus a 1%-loss WAN cell and a kill-one-stripe chaos cell that must reassemble byte-exactly |
//!
//! Seeds are fixed, payloads derive from [`netsim::SimRng`], and each
//! run emits a schema-versioned `BENCH_<scenario>.json` (integer-only,
//! via `wacs_obs::json`) with p50/p95/p99 and bytes/sec per mode, plus
//! the merged relay counters from the server's `wacs-obs` registry.
//! Absolute numbers reflect the machine that ran it; the committed
//! files give every future change a visible perf trajectory in git.
//!
//! Usage:
//!   proxy_bench [--scenario NAME|all] [--smoke] [--out DIR]
//!   proxy_bench --check FILE...     # validate existing BENCH files
//!   proxy_bench --check --against-git [--allow-regression] FILE...
//!       # additionally diff per-mode p99_ns against the version of
//!       # each file committed at git HEAD; fail if one regressed by
//!       # more than 20% (--allow-regression downgrades to a warning)

use firewall::vnet::VNet;
use firewall::{NXPORT, OUTER_PORT};
use netsim::prelude::*;
use nexus_proxy::sim::{
    stripe_cell, NxClient, NxEvent, NxHandled, RelayModel, SimOuterServer, SimProxyEnv, StripeCell,
    StripeSenderActor, StripeSinkActor,
};
use nexus_proxy::{
    nx_proxy_bind, nx_proxy_connect, AdmissionLimits, InnerConfig, InnerServer, OuterConfig,
    OuterServer, ProxyEnv, ProxySnapshot, PumpMode, ShardStats, StripePlan, StripeStats,
};
use std::io::{self, Read, Write};
use std::net::Shutdown;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use wacs_chaos::{CellOutcome, ChaosSuite, FaultClass, SuiteConfig};
use wacs_obs::json::JsonWriter;
use wacs_obs::{Histogram, Registry};
use wacs_sync::Mutex;

/// Bumped whenever the emitted JSON shape changes.
const SCHEMA_VERSION: u64 = 1;

/// The chaos document's own schema: v2 replaced the seeded-kill bulk
/// run with per-fault-class recovery-time cells from `wacs-chaos`.
const CHAOS_SCHEMA_VERSION: u64 = 2;

const SCENARIOS: &[&str] = &[
    "bulk_throughput",
    "fanin",
    "latency",
    "chaos",
    "shard_scaling",
    "stripe_scaling",
];

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("proxy_bench: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> io::Result<()> {
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let against_git = args.iter().any(|a| a == "--against-git");
        let allow_regression = args.iter().any(|a| a == "--allow-regression");
        let files: Vec<&String> = args[pos + 1..]
            .iter()
            .filter(|a| !a.starts_with("--"))
            .collect();
        if files.is_empty() {
            return Err(io::Error::other("--check requires at least one file"));
        }
        let mut regressed = false;
        for f in files {
            check_file(f)?;
            if against_git {
                regressed |= check_against_git(f, allow_regression)?;
            }
            println!("ok: {f}");
        }
        if regressed {
            return Err(io::Error::other(format!(
                "p99 regressed by more than {P99_REGRESSION_PCT}% vs the committed \
                 baseline; investigate, or re-run with --allow-regression to \
                 accept the new trajectory"
            )));
        }
        return Ok(());
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let scenario = arg_value(args, "--scenario").unwrap_or("all");
    let out_dir = arg_value(args, "--out").unwrap_or(".");
    let wanted: Vec<&str> = if scenario == "all" {
        SCENARIOS.to_vec()
    } else if SCENARIOS.contains(&scenario) {
        vec![scenario]
    } else {
        return Err(io::Error::other(format!(
            "unknown scenario {scenario:?}; expected one of {SCENARIOS:?} or \"all\""
        )));
    };

    std::fs::create_dir_all(out_dir)?;
    for name in wanted {
        let t0 = Instant::now();
        let json = run_scenario(name, smoke)?;
        validate(&json, name).map_err(io::Error::other)?;
        let path = format!("{out_dir}/BENCH_{name}.json");
        std::fs::write(&path, format!("{json}\n"))?;
        println!("{name}: wrote {path} ({:.1}s)", t0.elapsed().as_secs_f64());
    }
    Ok(())
}

fn arg_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

// ---------------------------------------------------------------------
// World plumbing.
// ---------------------------------------------------------------------

struct World {
    net: VNet,
    outer: OuterServer,
    inner: Option<InnerServer>,
    env: ProxyEnv,
}

/// `indirect` adds an inner server (same pump mode) and routes passive
/// relays through it — the paper's two-hop firewall topology.
fn world(
    mode: PumpMode,
    limits: AdmissionLimits,
    idle_timeout: Option<Duration>,
    indirect: bool,
) -> io::Result<World> {
    let net = VNet::new();
    let site = net.add_site("bench", None);
    net.add_host("client", site);
    net.add_host("outer-host", site);
    net.add_host("inner-host", site);
    net.add_host("sink", site);
    let mut cfg = OuterConfig::new("outer-host")
        .with_pump_mode(mode)
        .with_limits(limits);
    if indirect {
        cfg = cfg.with_inner("inner-host", NXPORT);
    }
    if let Some(t) = idle_timeout {
        cfg = cfg.with_idle_timeout(t);
    }
    let inner = if indirect {
        Some(InnerServer::start(
            net.clone(),
            InnerConfig::new("inner-host").with_pump_mode(mode),
        )?)
    } else {
        None
    };
    let outer = OuterServer::start(net.clone(), cfg)?;
    Ok(World {
        net,
        outer,
        inner,
        env: ProxyEnv::via("outer-host", OUTER_PORT),
    })
}

impl World {
    /// Combined data-plane counters across both relay daemons.
    fn obs(&self) -> ProxySnapshot {
        let mut snap = self.outer.stats();
        if let Some(inner) = &self.inner {
            let i = inner.stats();
            snap.relayed_bytes += i.relayed_bytes;
            snap.pump_segments += i.pump_segments;
            snap.pump_coalesced_writes += i.pump_coalesced_writes;
            snap.pool_hits += i.pool_hits;
            snap.pool_misses += i.pool_misses;
            snap.idle_reaped += i.idle_reaped;
            snap.busy_rejected += i.busy_rejected;
        }
        snap
    }
}

fn pump_threads_for(mode: PumpMode, relays: u64) -> u64 {
    match mode {
        PumpMode::ThreadPair => 2 * relays,
        // Default reactor config: one multiplexing thread.
        PumpMode::Reactor => 1,
    }
}

fn mode_name(mode: PumpMode) -> &'static str {
    match mode {
        PumpMode::ThreadPair => "thread_pair",
        PumpMode::Reactor => "reactor",
    }
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) -> io::Result<()> {
    let end = Instant::now() + timeout;
    while !cond() {
        if Instant::now() >= end {
            return Err(io::Error::other(format!("timed out waiting: {what}")));
        }
        thread::sleep(Duration::from_millis(2));
    }
    Ok(())
}

/// A deterministic pseudo-random payload derived from the scenario seed.
fn seeded_payload(seed: u64, len: usize) -> Arc<Vec<u8>> {
    let mut rng = SimRng::seed_from_u64(seed);
    let block: Vec<u8> = (0..8192).map(|_| rng.below(256) as u8).collect();
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let take = block.len().min(len - out.len());
        out.extend_from_slice(&block[..take]);
    }
    Arc::new(out)
}

fn join_u64(h: thread::JoinHandle<io::Result<u64>>) -> io::Result<u64> {
    h.join().map_err(|_| io::Error::other("worker panicked"))?
}

// ---------------------------------------------------------------------
// Per-mode measurement record.
// ---------------------------------------------------------------------

struct ModeStats {
    elapsed_ns: u64,
    bytes: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    pump_threads: u64,
    relays: u64,
    completed: u64,
    killed: u64,
    reaped: u64,
    obs: ProxySnapshot,
}

impl ModeStats {
    fn bytes_per_sec(&self) -> u64 {
        ((u128::from(self.bytes) * 1_000_000_000) / u128::from(self.elapsed_ns.max(1))) as u64
    }

    fn relays_per_thread_x1000(&self) -> u64 {
        self.relays * 1000 / self.pump_threads.max(1)
    }

    fn to_json(&self) -> String {
        let mut obs = JsonWriter::object();
        obs.field_u64("relayed_bytes", self.obs.relayed_bytes)
            .field_u64("pump_segments", self.obs.pump_segments)
            .field_u64("pump_coalesced_writes", self.obs.pump_coalesced_writes)
            .field_u64("pool_hits", self.obs.pool_hits)
            .field_u64("pool_misses", self.obs.pool_misses)
            .field_u64("idle_reaped", self.obs.idle_reaped)
            .field_u64("busy_rejected", self.obs.busy_rejected);
        let mut w = JsonWriter::object();
        w.field_u64("elapsed_ns", self.elapsed_ns)
            .field_u64("bytes", self.bytes)
            .field_u64("bytes_per_sec", self.bytes_per_sec())
            .field_u64("p50_ns", self.p50_ns)
            .field_u64("p95_ns", self.p95_ns)
            .field_u64("p99_ns", self.p99_ns)
            .field_u64("pump_threads", self.pump_threads)
            .field_u64("relays", self.relays)
            .field_u64("relays_per_thread_x1000", self.relays_per_thread_x1000())
            .field_u64("completed", self.completed)
            .field_u64("killed", self.killed)
            .field_u64("reaped", self.reaped)
            .field_raw("obs", &obs.finish());
        w.finish()
    }
}

fn percentiles(h: &Histogram) -> (u64, u64, u64) {
    (
        h.quantile(0.50).unwrap_or(0),
        h.quantile(0.95).unwrap_or(0),
        h.quantile(0.99).unwrap_or(0),
    )
}

// ---------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------

/// A scenario body: runs one pump mode and reports its measurements.
type ScenarioRunner = fn(&ScenarioCfg, PumpMode) -> io::Result<ModeStats>;

struct ScenarioCfg {
    seed: u64,
    relays: u64,
    bytes_per_relay: u64,
    rounds: u64,
    msg_bytes: u64,
    /// Timed repetitions; the median trial's elapsed time is reported.
    trials: u64,
}

fn run_scenario(name: &str, smoke: bool) -> io::Result<String> {
    if name == "shard_scaling" {
        return shard_scaling(smoke);
    }
    if name == "stripe_scaling" {
        return stripe_scaling(smoke);
    }
    if name == "chaos" {
        return chaos_scenario(smoke);
    }
    let (cfg, runner): (ScenarioCfg, ScenarioRunner) = match name {
        "bulk_throughput" => (
            ScenarioCfg {
                seed: 0xb011c,
                relays: if smoke { 8 } else { 256 },
                bytes_per_relay: if smoke { 256 << 10 } else { 512 << 10 },
                rounds: 0,
                msg_bytes: 0,
                trials: if smoke { 1 } else { 5 },
            },
            bulk,
        ),
        "fanin" => (
            ScenarioCfg {
                seed: 0xfa111,
                relays: if smoke { 16 } else { 128 },
                bytes_per_relay: 0,
                rounds: 2,
                msg_bytes: 32,
                trials: 1,
            },
            fanin,
        ),
        "latency" => (
            ScenarioCfg {
                seed: 0x1a7e,
                relays: 1,
                bytes_per_relay: 0,
                rounds: if smoke { 100 } else { 2000 },
                msg_bytes: 64,
                trials: 1,
            },
            latency,
        ),
        other => return Err(io::Error::other(format!("no such scenario: {other}"))),
    };

    let tp = runner(&cfg, PumpMode::ThreadPair)?;
    let rx = runner(&cfg, PumpMode::Reactor)?;

    let mut config = JsonWriter::object();
    config
        .field_u64("n_relays", cfg.relays)
        .field_u64("bytes_per_relay", cfg.bytes_per_relay)
        .field_u64("rounds", cfg.rounds)
        .field_u64("msg_bytes", cfg.msg_bytes)
        .field_u64("trials", cfg.trials);
    let mut modes = JsonWriter::object();
    modes
        .field_raw(mode_name(PumpMode::ThreadPair), &tp.to_json())
        .field_raw(mode_name(PumpMode::Reactor), &rx.to_json());

    // Headline ratio, scenario-appropriate, in integer thousandths.
    let speedup_x1000 = match name {
        // Relays one thread can carry, reactor vs thread-pair.
        "fanin" => rx.relays_per_thread_x1000() * 1000 / tp.relays_per_thread_x1000().max(1),
        // Round-trip p50, thread-pair over reactor (>1000 = reactor faster).
        "latency" => tp.p50_ns * 1000 / rx.p50_ns.max(1),
        // Relayed throughput, reactor over thread-pair.
        _ => rx.bytes_per_sec() * 1000 / tp.bytes_per_sec().max(1),
    };

    let mut w = JsonWriter::object();
    w.field_u64("schema_version", SCHEMA_VERSION)
        .field_str("scenario", name)
        .field_u64("seed", cfg.seed)
        .field_u64("smoke", u64::from(smoke))
        .field_raw("config", &config.finish())
        .field_raw("modes", &modes.finish())
        .field_u64("speedup_x1000", speedup_x1000);
    Ok(w.finish())
}

/// Bulk throughput under a concurrent transfer storm: `relays`
/// transfers of `bytes_per_relay` are opened and driven at once
/// through the outer server to a bound (passive-open) sink. Relay
/// establishment is *inside* the timed region — this is the cluster
/// job-launch shape, where the thread-pair plane pays two thread
/// spawns per relay that then contend with every pump already moving
/// data, while the reactor only appends to its relay table. The sink
/// acks the byte count it saw, so every trial also verifies
/// end-to-end integrity. One untimed warmup round faults in sockets
/// and pool segments, then the median of `trials` timed rounds is
/// reported.
fn bulk(cfg: &ScenarioCfg, mode: PumpMode) -> io::Result<ModeStats> {
    let w = world(
        mode,
        AdmissionLimits {
            max_total: 4096,
            max_per_peer: 4096,
        },
        None,
        false,
    )?;
    // The bound sink: read each relay to EOF, ack the total (BE u64).
    // One nonblocking sweep thread serves every connection, so the
    // harness adds a fixed thread count regardless of relay count and
    // the only thread-census difference between modes is the data
    // plane under test.
    let listener = nx_proxy_bind(&w.net, &w.env, "sink")?;
    let adv = listener.advertised.clone();
    thread::spawn(move || {
        while let Ok(mut s) = listener.accept() {
            // lint:allow(deadline-io)
            thread::spawn(move || {
                let mut buf = vec![0u8; 1 << 16];
                let mut total = 0u64;
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => total += n as u64,
                    }
                }
                let _ = s.write_all(&total.to_be_bytes());
            });
        }
    });

    let payload = seeded_payload(cfg.seed, cfg.bytes_per_relay as usize);
    let hist = Registry::new().histogram("transfer_ns");
    if cfg.trials > 1 {
        // Warmup: small, untimed, not recorded.
        let warm = seeded_payload(cfg.seed, 256 << 10);
        bulk_round(&w, &adv, 2, &warm, &Registry::new().histogram("warmup"))?;
    }
    let mut elapsed = Vec::new();
    for _ in 0..cfg.trials {
        elapsed.push(bulk_round(&w, &adv, cfg.relays, &payload, &hist)?);
    }
    // Median trial: a storm either completes cleanly (~0.2 s here) or
    // eats a kernel SYN-retransmit stall when the accept loop falls
    // behind and the listen backlog drops connections (~1 s more), so
    // the median reports each mode's *typical* storm outcome instead
    // of its lucky or unlucky extreme.
    elapsed.sort_unstable();
    let elapsed_ns = elapsed[elapsed.len() / 2];
    let (p50_ns, p95_ns, p99_ns) = percentiles(&hist);
    Ok(ModeStats {
        elapsed_ns,
        bytes: cfg.relays * cfg.bytes_per_relay,
        p50_ns,
        p95_ns,
        p99_ns,
        // One hop: the thread-pair plane spends 2 threads per relay;
        // the reactor holds the whole storm on a single thread.
        pump_threads: match mode {
            PumpMode::ThreadPair => 2 * cfg.relays,
            PumpMode::Reactor => 1,
        },
        relays: cfg.relays,
        completed: cfg.relays,
        killed: 0,
        reaped: 0,
        obs: w.obs(),
    })
}

/// One timed bulk round: one client thread per relay (independent
/// peers, as in a wide-area cluster) dials, streams its payload,
/// half-closes, and waits for the sink's byte-count ack. Relay setup
/// is deliberately part of the timed region (see [`bulk`]). Waits for
/// the relay table to drain before returning the elapsed nanoseconds.
fn bulk_round(
    w: &World,
    adv: &(String, u16),
    relays: u64,
    payload: &Arc<Vec<u8>>,
    hist: &Histogram,
) -> io::Result<u64> {
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for _ in 0..relays {
        let (net, adv, payload, hist) = (w.net.clone(), adv.clone(), payload.clone(), hist.clone());
        workers.push(thread::spawn(move || -> io::Result<u64> {
            let t = Instant::now();
            let mut s = net.dial("client", &adv.0, adv.1)?;
            s.write_all(&payload)?;
            s.shutdown(Shutdown::Write)?;
            let mut ack = [0u8; 8];
            s.read_exact(&mut ack)?; // lint:allow(deadline-io)
            if u64::from_be_bytes(ack) != payload.len() as u64 {
                return Err(io::Error::other("sink byte-count mismatch"));
            }
            hist.record(t.elapsed().as_nanos() as u64);
            Ok(payload.len() as u64)
        }));
    }
    for h in workers {
        join_u64(h)?;
    }
    let elapsed = t0.elapsed().as_nanos() as u64;
    wait_until("bulk relay drain", Duration::from_secs(30), || {
        w.outer.active_relays() == 0
    })?;
    // Settle: let the previous round's pump threads finish exiting so
    // trials are hermetic rather than inheriting teardown churn.
    thread::sleep(Duration::from_millis(300));
    eprintln!("  trial: {relays} relays in {} ms", elapsed / 1_000_000);
    Ok(elapsed)
}

/// Echo sink: every accepted connection is served by a thread that
/// echoes whatever arrives until EOF.
fn spawn_echo_sink(net: &VNet) -> io::Result<u16> {
    let l = net.bind("sink", 0)?;
    let port = l.logical_port();
    thread::spawn(move || {
        while let Ok((mut s, _)) = l.accept() {
            // lint:allow(deadline-io)
            thread::spawn(move || {
                let mut buf = [0u8; 4096];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    Ok(port)
}

/// Many-idle-connections fan-in: hold `relays` concurrent relays to one
/// sink, then run a few small echo rounds over each. The headline
/// number is relays per pump thread — the reactor holds the whole fan
/// on one thread where the thread-pair pump spends two per relay.
fn fanin(cfg: &ScenarioCfg, mode: PumpMode) -> io::Result<ModeStats> {
    let w = world(
        mode,
        AdmissionLimits {
            max_total: 4096,
            max_per_peer: 4096,
        },
        None,
        false,
    )?;
    let port = spawn_echo_sink(&w.net)?;
    let t0 = Instant::now();
    let mut streams = Vec::new();
    for _ in 0..cfg.relays {
        streams.push(nx_proxy_connect(&w.net, &w.env, "client", ("sink", port))?);
    }
    wait_until("fan-in relays tracked", Duration::from_secs(30), || {
        w.outer.active_relays() as u64 == cfg.relays
    })?;

    let hist = Registry::new().histogram("echo_rtt_ns");
    let msg = vec![0x5Au8; cfg.msg_bytes as usize];
    let mut back = vec![0u8; cfg.msg_bytes as usize];
    for _ in 0..cfg.rounds {
        for s in &mut streams {
            let t = Instant::now();
            s.write_all(&msg)?;
            s.read_exact(&mut back)?; // lint:allow(deadline-io)
            hist.record(t.elapsed().as_nanos() as u64);
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let bytes = cfg.relays * cfg.rounds * cfg.msg_bytes * 2;
    let (p50_ns, p95_ns, p99_ns) = percentiles(&hist);
    drop(streams);
    wait_until("fan-in relay drain", Duration::from_secs(30), || {
        w.outer.active_relays() == 0
    })?;
    Ok(ModeStats {
        elapsed_ns,
        bytes,
        p50_ns,
        p95_ns,
        p99_ns,
        pump_threads: pump_threads_for(mode, cfg.relays),
        relays: cfg.relays,
        completed: cfg.relays,
        killed: 0,
        reaped: 0,
        obs: w.obs(),
    })
}

/// Small-message latency: one relay, `rounds` echo round trips.
fn latency(cfg: &ScenarioCfg, mode: PumpMode) -> io::Result<ModeStats> {
    let w = world(mode, AdmissionLimits::default(), None, false)?;
    let port = spawn_echo_sink(&w.net)?;
    let mut s = nx_proxy_connect(&w.net, &w.env, "client", ("sink", port))?;
    let msg = vec![0xA5u8; cfg.msg_bytes as usize];
    let mut back = vec![0u8; cfg.msg_bytes as usize];
    let hist = Registry::new().histogram("rtt_ns");
    let t0 = Instant::now();
    for _ in 0..cfg.rounds {
        let t = Instant::now();
        s.write_all(&msg)?;
        s.read_exact(&mut back)?; // lint:allow(deadline-io)
        hist.record(t.elapsed().as_nanos() as u64);
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let bytes = cfg.rounds * cfg.msg_bytes * 2;
    let (p50_ns, p95_ns, p99_ns) = percentiles(&hist);
    Ok(ModeStats {
        elapsed_ns,
        bytes,
        p50_ns,
        p95_ns,
        p99_ns,
        pump_threads: pump_threads_for(mode, cfg.relays),
        relays: cfg.relays,
        completed: cfg.relays,
        killed: 0,
        reaped: 0,
        obs: w.obs(),
    })
}

/// Chaos scenario, schema v2: the `wacs-chaos` suite runs one cell
/// per fault class against the real-socket proxy stack — six
/// socket-level interposer faults (mid-stream RST, partial-write
/// stall, byte-rate throttle, connect blackhole, delayed FIN,
/// split/merged writes) plus rolling restarts of the two-shard outer
/// fleet mid-striped-transfer and an inner-daemon kill under live
/// relays. Each cell reports its measured recovery times as the
/// mode's top-level p50/p95/p99. That placement is deliberate: the
/// `--check --against-git` guard walks per-mode top-level `p99_ns`
/// fields by name, so committed recovery-time objectives get the same
/// 20% regression budget as data-plane latency.
///
/// The suite's deterministic drill snapshot (fault decisions, op
/// counts, invariant verdicts — the part ci.sh diffs byte-for-byte
/// across same-seed runs) is embedded under `"drill"` for the record.
fn chaos_scenario(smoke: bool) -> io::Result<String> {
    let seed = 0xc405;
    let suite = ChaosSuite::new(if smoke {
        SuiteConfig::smoke(seed)
    } else {
        SuiteConfig::full(seed)
    });
    let cells = suite.run_all();
    for c in &cells {
        eprintln!(
            "  {}: {} ops / {} attempts, {} faults, {} recoveries, rto p99 {} ns",
            c.class.name(),
            c.ops,
            c.attempts,
            c.faults,
            c.recoveries,
            c.p99_ns
        );
        if !c.completed {
            return Err(io::Error::other(format!(
                "chaos cell {} did not complete",
                c.class.name()
            )));
        }
    }
    if !suite.ledger().ok() {
        return Err(io::Error::other(format!(
            "chaos invariant violations: {}",
            suite.ledger().violations().join("; ")
        )));
    }

    let cfg = suite.config();
    let mut config = JsonWriter::object();
    config
        .field_u64("ops", cfg.ops)
        .field_u64("payload_bytes", cfg.payload as u64)
        .field_u64("stripe_payload_bytes", cfg.stripe_payload as u64)
        .field_u64("lane_rate_bps", cfg.lane_rate)
        .field_u64("cells", cells.len() as u64);
    let mut modes = JsonWriter::object();
    for c in &cells {
        modes.field_raw(c.class.name(), &chaos_cell_json(c));
    }
    let mut w = JsonWriter::object();
    w.field_u64("schema_version", CHAOS_SCHEMA_VERSION)
        .field_str("scenario", "chaos")
        .field_u64("seed", seed)
        .field_u64("smoke", u64::from(smoke))
        .field_raw("config", &config.finish())
        .field_raw("modes", &modes.finish())
        .field_raw("drill", &suite.drill_snapshot().to_json());
    Ok(w.finish())
}

/// One chaos cell as a mode object. Recovery percentiles sit at the
/// top level so `mode_p99s` (the p99 guard's parser) picks them up.
fn chaos_cell_json(c: &CellOutcome) -> String {
    let mut w = JsonWriter::object();
    w.field_u64("p50_ns", c.p50_ns)
        .field_u64("p95_ns", c.p95_ns)
        .field_u64("p99_ns", c.p99_ns)
        .field_u64("ops", c.ops)
        .field_u64("attempts", c.attempts)
        .field_u64("faults_injected", c.faults)
        .field_u64("recoveries", c.recoveries)
        .field_u64("bytes", c.bytes)
        .field_u64("completed", u64::from(c.completed))
        .field_u64("payload_ok", u64::from(c.payload_ok))
        .field_u64("leaked_relays", c.leaked_relays)
        .field_u64("leaked_admission", c.leaked_admission);
    w.finish()
}

// ---------------------------------------------------------------------
// shard_scaling: virtual-time fan-in cells over a sharded outer fleet.
// ---------------------------------------------------------------------
//
// This scenario runs on the netsim virtual clock, not wall time: a
// relay shard is one select-loop process, so each shard serializes its
// messages through one service queue (`RelayModel`). Fan-in cells
// (one bound sink + one sender each) HRW-distribute across the fleet,
// so the same workload at 1/2/4 shards measures how the fleet divides
// the relay service bottleneck — the Table 2 shape, per shard count.
// The `killshard` cell reuses the netsim fault layer to crash the
// shard serving cell 0 mid-run; stop-and-wait sequence numbers with
// exactly-once accept at the sink prove the breaker-driven failover
// loses nothing.

/// Control port of every sim shard (same port, distinct hosts).
const SHARD_CTRL: u16 = 4097;

/// App-level poll timer token for the cell senders.
const CELL_POLL: u64 = 3;

#[derive(Default)]
struct CellState {
    advertised: Option<(NodeId, u16)>,
    received: u64,
    done_at_ns: Option<u64>,
}

type CellRef = Arc<Mutex<CellState>>;

/// Fleet-bound sink of one fan-in cell: counts relayed messages,
/// records per-message relay latency, and stamps the virtual
/// completion time. In echo mode (the kill cell) it accepts sequence
/// numbers exactly once (expected-next rule) and echoes every one.
struct CellSink {
    nx: NxClient,
    cell: CellRef,
    expect: u64,
    echo: bool,
    hist: Histogram,
}

impl CellSink {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.cell.lock().advertised = Some(advertised);
            }
            NxHandled::Event(NxEvent::BindLost) => {
                self.cell.lock().advertised = None;
            }
            NxHandled::Data(d) => {
                let flow = d.flow;
                self.hist.record(ctx.now().since(d.sent_at).nanos());
                if self.echo {
                    let seq = d.expect::<u64>();
                    {
                        let mut c = self.cell.lock();
                        if seq == c.received {
                            c.received += 1;
                            if c.received == self.expect {
                                c.done_at_ns = Some(ctx.now().nanos());
                            }
                        }
                    }
                    let _ = ctx.send(flow, 64, seq);
                } else {
                    let mut c = self.cell.lock();
                    c.received += 1;
                    if c.received == self.expect {
                        c.done_at_ns = Some(ctx.now().nanos());
                    }
                }
            }
            _ => {}
        }
    }
}

impl Actor for CellSink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.cell.lock().advertised = Some(adv);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: netsim::prelude::Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Throughput sender: once the cell's sink is bound, connect and blast
/// every message at once — the shard's relay queue serializes them.
struct CellBlaster {
    nx: NxClient,
    cell: CellRef,
    start_at: SimDuration,
    msgs: u64,
    msg_bytes: u64,
}

impl CellBlaster {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                for _ in 0..self.msgs {
                    let _ = ctx.send(flow, self.msg_bytes, ());
                }
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                ctx.set_timer(SimDuration::from_millis(10), CELL_POLL);
            }
            _ => {}
        }
    }
}

impl Actor for CellBlaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_at, CELL_POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == CELL_POLL {
            let adv = self.cell.lock().advertised;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 11),
                None => ctx.set_timer(SimDuration::from_millis(10), CELL_POLL),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: netsim::prelude::Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Chaos-cell sender: stop-and-wait sequence numbers, each echoed by
/// the sink before the next goes out. A torn connection (the shard
/// crash) re-dials the current advertised address and retransmits the
/// unacknowledged number; the sink's exactly-once accept absorbs the
/// duplicates.
struct CellSeqSender {
    nx: NxClient,
    cell: CellRef,
    start_at: SimDuration,
    msgs: u64,
    msg_bytes: u64,
    next: u64,
    flow: Option<FlowId>,
}

impl CellSeqSender {
    fn poll_soon(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(20), CELL_POLL);
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                self.flow = Some(flow);
                let _ = ctx.send(flow, self.msg_bytes, self.next);
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                self.poll_soon(ctx);
            }
            NxHandled::Data(d) => {
                let seq = d.expect::<u64>();
                if seq == self.next {
                    self.next += 1;
                    if self.next < self.msgs {
                        if let Some(f) = self.flow {
                            let _ = ctx.send(f, self.msg_bytes, self.next);
                        }
                    }
                }
            }
            NxHandled::Flow(FlowEvent::Closed { flow, .. }) if Some(flow) == self.flow => {
                self.flow = None;
                if self.next < self.msgs {
                    self.poll_soon(ctx);
                }
            }
            _ => {}
        }
    }
}

impl Actor for CellSeqSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_at, CELL_POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == CELL_POLL && self.flow.is_none() && self.next < self.msgs {
            let adv = self.cell.lock().advertised;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 11),
                None => self.poll_soon(ctx),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: netsim::prelude::Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Per-cell measurement record for `shard_scaling`.
struct ShardCellStats {
    elapsed_ns: u64,
    bytes: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    shards: u64,
    cells: u64,
    messages: u64,
    completed: u64,
    killed: u64,
    binds_owned: u64,
    redirects_sent: u64,
    redirects_followed: u64,
    failovers: u64,
    map_syncs: u64,
}

impl ShardCellStats {
    fn bytes_per_sec(&self) -> u64 {
        ((u128::from(self.bytes) * 1_000_000_000) / u128::from(self.elapsed_ns.max(1))) as u64
    }

    fn to_json(&self) -> String {
        let mut obs = JsonWriter::object();
        obs.field_u64("binds_owned", self.binds_owned)
            .field_u64("redirects_sent", self.redirects_sent)
            .field_u64("redirects_followed", self.redirects_followed)
            .field_u64("failovers", self.failovers)
            .field_u64("map_syncs", self.map_syncs);
        let mut w = JsonWriter::object();
        w.field_u64("elapsed_ns", self.elapsed_ns)
            .field_u64("bytes", self.bytes)
            .field_u64("bytes_per_sec", self.bytes_per_sec())
            .field_u64("p50_ns", self.p50_ns)
            .field_u64("p95_ns", self.p95_ns)
            .field_u64("p99_ns", self.p99_ns)
            .field_u64("shards", self.shards)
            .field_u64("cells", self.cells)
            .field_u64("messages", self.messages)
            .field_u64("completed", self.completed)
            .field_u64("killed", self.killed)
            .field_raw("obs", &obs.finish());
        w.finish()
    }
}

/// One shard-count cell run in virtual time. `kill` runs the chaos
/// variant: stop-and-wait sequence traffic, and the shard serving
/// cell 0 is crashed mid-run via the netsim fault layer.
fn shard_cell(
    seed: u64,
    shards: usize,
    cells: u64,
    msgs: u64,
    msg_bytes: u64,
    kill: bool,
) -> io::Result<ShardCellStats> {
    let start_at = SimDuration::from_millis(300);
    let mut topo = Topology::new();
    let site = topo.add_site("bench", None);
    let sw = topo.add_switch("sw", site);
    let shard_hosts: Vec<NodeId> = (0..shards)
        .map(|i| topo.add_host(format!("shard{i}"), site))
        .collect();
    let srv_hosts: Vec<NodeId> = (0..cells)
        .map(|i| topo.add_host(format!("srv{i}"), site))
        .collect();
    let snd_hosts: Vec<NodeId> = (0..cells)
        .map(|i| topo.add_host(format!("snd{i}"), site))
        .collect();
    let lan = 6.5e6;
    for h in shard_hosts.iter().chain(&srv_hosts).chain(&snd_hosts) {
        topo.add_link(*h, sw, SimDuration::from_micros(100), lan);
    }
    let members: Vec<(NodeId, u16)> = shard_hosts.iter().map(|h| (*h, SHARD_CTRL)).collect();

    let registry = Registry::new();
    let hist = registry.histogram("bench.shard.relay_ns");
    let mut sim = Simulator::new(topo, NetConfig::default(), seed);
    let shard_ids: Vec<ActorId> = (0..shards)
        .map(|i| {
            sim.spawn(
                shard_hosts[i],
                Box::new(
                    SimOuterServer::new(SHARD_CTRL, None, RelayModel::default())
                        .with_fleet(members.clone(), i)
                        .with_obs(&registry),
                ),
            )
        })
        .collect();
    let cell_refs: Vec<CellRef> = (0..cells).map(|_| CellRef::default()).collect();
    for i in 0..cells as usize {
        sim.spawn(
            srv_hosts[i],
            Box::new(CellSink {
                nx: NxClient::new(SimProxyEnv::direct())
                    .with_fleet(members.clone())
                    .with_obs(&registry),
                cell: cell_refs[i].clone(),
                expect: msgs,
                echo: kill,
                hist: hist.clone(),
            }),
        );
        if kill {
            sim.spawn(
                snd_hosts[i],
                Box::new(CellSeqSender {
                    nx: NxClient::new(SimProxyEnv::direct()),
                    cell: cell_refs[i].clone(),
                    start_at,
                    msgs,
                    msg_bytes,
                    next: 0,
                    flow: None,
                }),
            );
        } else {
            sim.spawn(
                snd_hosts[i],
                Box::new(CellBlaster {
                    nx: NxClient::new(SimProxyEnv::direct()),
                    cell: cell_refs[i].clone(),
                    start_at,
                    msgs,
                    msg_bytes,
                }),
            );
        }
    }

    let killed = if kill {
        // Let the streams get going, then crash whichever shard is
        // serving cell 0's bind (discovered mid-run, like an operator
        // losing a random DMZ box).
        let crash_at = start_at + SimDuration::from_millis(25 * msgs);
        sim.run_until(SimTime(crash_at.nanos()));
        let serving = cell_refs[0]
            .lock()
            .advertised
            .ok_or_else(|| io::Error::other("cell 0 did not bind before the chaos point"))?
            .0;
        let victim = shard_hosts
            .iter()
            .position(|h| *h == serving)
            .ok_or_else(|| io::Error::other("advertised host is not a shard"))?;
        sim.install_faults(
            FaultPlan::new(seed).crash(shard_ids[victim], SimDuration::from_millis(1)),
        );
        1
    } else {
        0
    };
    sim.run_until(SimTime(SimDuration::from_secs(600).nanos()));

    let done: Vec<u64> = cell_refs
        .iter()
        .filter_map(|c| c.lock().done_at_ns)
        .collect();
    let completed = done.len() as u64;
    if completed != cells {
        return Err(io::Error::other(format!(
            "shard_scaling: only {completed}/{cells} cells completed (shards={shards}, kill={kill})"
        )));
    }
    let elapsed_ns = done
        .iter()
        .max()
        .copied()
        .unwrap_or(0)
        .saturating_sub(start_at.nanos());
    let (p50_ns, p95_ns, p99_ns) = percentiles(&hist);
    // Every fleet party shares this registry; counter handles are
    // get-or-create by name, so these read the merged fleet totals.
    let s = ShardStats::in_registry(&registry);
    Ok(ShardCellStats {
        elapsed_ns,
        // Echo traffic crosses the relay queue twice per message.
        bytes: cells * msgs * msg_bytes * if kill { 2 } else { 1 },
        p50_ns,
        p95_ns,
        p99_ns,
        shards: shards as u64,
        cells,
        messages: msgs,
        completed,
        killed,
        binds_owned: s.binds_owned.get(),
        redirects_sent: s.redirects_sent.get(),
        redirects_followed: s.redirects_followed.get(),
        failovers: s.failovers.get(),
        map_syncs: s.map_syncs.get(),
    })
}

fn shard_scaling(smoke: bool) -> io::Result<String> {
    let seed = 0x54a2d;
    let cells: u64 = if smoke { 6 } else { 12 };
    let msgs: u64 = if smoke { 8 } else { 25 };
    let msg_bytes: u64 = 4096;

    let mut modes = JsonWriter::object();
    let mut per_shard = Vec::new();
    for shards in [1usize, 2, 4] {
        let st = shard_cell(seed, shards, cells, msgs, msg_bytes, false)?;
        eprintln!(
            "  shards{shards}: {} bytes/s over {} ms (virtual)",
            st.bytes_per_sec(),
            st.elapsed_ns / 1_000_000
        );
        modes.field_raw(&format!("shards{shards}"), &st.to_json());
        per_shard.push(st);
    }
    let kill = shard_cell(seed, 4, cells, msgs, msg_bytes, true)?;
    eprintln!(
        "  killshard: {} cells completed, {} failovers",
        kill.completed, kill.failovers
    );
    modes.field_raw("killshard", &kill.to_json());

    let speedup_x1000 = per_shard[2].bytes_per_sec() * 1000 / per_shard[0].bytes_per_sec().max(1);
    let mut config = JsonWriter::object();
    config
        .field_u64("cells", cells)
        .field_u64("msgs_per_cell", msgs)
        .field_u64("msg_bytes", msg_bytes);
    let mut w = JsonWriter::object();
    w.field_u64("schema_version", SCHEMA_VERSION)
        .field_str("scenario", "shard_scaling")
        .field_u64("seed", seed)
        .field_u64("smoke", u64::from(smoke))
        .field_raw("config", &config.finish())
        .field_raw("modes", &modes.finish())
        .field_u64("speedup_x1000", speedup_x1000);
    Ok(w.finish())
}

// ---------------------------------------------------------------------
// stripe_scaling: striped bulk transfer over the sharded relay fleet.
// ---------------------------------------------------------------------

/// Per-cell measurement record for `stripe_scaling`.
struct StripeCellStats {
    elapsed_ns: u64,
    bytes: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    streams: u64,
    shards: u64,
    chunks: u64,
    chunk_bytes: u64,
    completed: u64,
    killed: u64,
    drop_ppm: u64,
    failovers: u64,
    dup_chunks: u64,
    resent_chunks: u64,
    conflicts: u64,
}

impl StripeCellStats {
    fn bytes_per_sec(&self) -> u64 {
        ((u128::from(self.bytes) * 1_000_000_000) / u128::from(self.elapsed_ns.max(1))) as u64
    }

    /// Goodput as a fraction (×1000) of the aggregate relay-copy
    /// bandwidth the lanes *could* use (`streams` relay queues at
    /// [`RelayModel::default`]'s copy rate): how close striping gets
    /// to saturating the parallel service capacity.
    fn utilization_x1000(&self) -> u64 {
        let capacity = (RelayModel::default().bandwidth as u64).max(1) * self.streams.max(1);
        self.bytes_per_sec() * 1000 / capacity
    }

    fn to_json(&self) -> String {
        let mut obs = JsonWriter::object();
        obs.field_u64("failovers", self.failovers)
            .field_u64("dup_chunks", self.dup_chunks)
            .field_u64("resent_chunks", self.resent_chunks)
            .field_u64("conflicts", self.conflicts);
        let mut w = JsonWriter::object();
        w.field_u64("elapsed_ns", self.elapsed_ns)
            .field_u64("bytes", self.bytes)
            .field_u64("bytes_per_sec", self.bytes_per_sec())
            .field_u64("utilization_x1000", self.utilization_x1000())
            .field_u64("p50_ns", self.p50_ns)
            .field_u64("p95_ns", self.p95_ns)
            .field_u64("p99_ns", self.p99_ns)
            .field_u64("streams", self.streams)
            .field_u64("shards", self.shards)
            .field_u64("chunks", self.chunks)
            .field_u64("chunk_bytes", self.chunk_bytes)
            .field_u64("completed", self.completed)
            .field_u64("killed", self.killed)
            .field_u64("drop_ppm", self.drop_ppm)
            .field_raw("obs", &obs.finish());
        w.finish()
    }
}

/// One striped-transfer cell in virtual time: `streams` lanes over a
/// fleet of `shards` relay shards, each lane pinned to its own shard
/// (`with_bind_lane`). `drop_ppm` injects per-traversal chunk loss
/// (sim-TCP retransmits keep flows reliable, so loss costs time, not
/// bytes). `kill` crashes the shard serving stripe 0 mid-transfer.
fn stripe_cell_run(
    seed: u64,
    shards: usize,
    streams: u16,
    total_len: u64,
    chunk: u32,
    drop_ppm: u64,
    kill: bool,
) -> io::Result<StripeCellStats> {
    let start_at = SimDuration::from_millis(300);
    let mut topo = Topology::new();
    let site = topo.add_site("bench", None);
    let sw = topo.add_switch("sw", site);
    let shard_hosts: Vec<NodeId> = (0..shards)
        .map(|i| topo.add_host(format!("shard{i}"), site))
        .collect();
    let rx_host = topo.add_host("rx", site);
    let tx_host = topo.add_host("tx", site);
    let lan = 6.5e6;
    for h in shard_hosts.iter().chain([&rx_host, &tx_host]) {
        topo.add_link(*h, sw, SimDuration::from_micros(100), lan);
    }
    let members: Vec<(NodeId, u16)> = shard_hosts.iter().map(|h| (*h, SHARD_CTRL)).collect();

    let registry = Registry::new();
    let lane_hist = registry.histogram("wacs.stripe.stripe_ns");
    let mut sim = Simulator::new(topo, NetConfig::default(), seed);
    let shard_ids: Vec<ActorId> = (0..shards)
        .map(|i| {
            sim.spawn(
                shard_hosts[i],
                Box::new(
                    SimOuterServer::new(SHARD_CTRL, None, RelayModel::default())
                        .with_fleet(members.clone(), i)
                        .with_obs(&registry),
                ),
            )
        })
        .collect();
    let plan = StripePlan::new(total_len, streams, chunk).map_err(io::Error::from)?;
    let data: Arc<Vec<u8>> = Arc::new(
        (0..total_len as usize)
            .map(|i| ((i * 131 + 17) % 251) as u8)
            .collect(),
    );
    let stats = StripeStats::in_registry(&registry);
    let cell: StripeCell = stripe_cell(streams);
    for stripe in 0..streams {
        sim.spawn(
            rx_host,
            Box::new(
                StripeSinkActor::new(
                    NxClient::new(SimProxyEnv::direct())
                        .with_fleet(members.clone())
                        .with_bind_lane(stripe)
                        .with_obs(&registry),
                    stripe,
                    cell.clone(),
                )
                .with_stats(stats.clone()),
            ),
        );
        sim.spawn(
            tx_host,
            Box::new(
                StripeSenderActor::new(
                    NxClient::new(SimProxyEnv::direct()),
                    stripe,
                    cell.clone(),
                    data.clone(),
                    plan,
                    7,
                    start_at,
                )
                .with_stats(stats.clone()),
            ),
        );
    }

    if drop_ppm > 0 {
        sim.install_faults(FaultPlan::new(seed).drop_messages(drop_ppm as f64 / 1e6, false));
    }
    let killed = if kill {
        // Let the lanes get going, then crash whichever shard is
        // carrying stripe 0 (discovered mid-run, like the killshard
        // cell one layer down).
        let crash_at = start_at + SimDuration::from_millis(300);
        sim.run_until(SimTime(crash_at.nanos()));
        let serving = cell
            .lock()
            .advertised
            .first()
            .copied()
            .flatten()
            .ok_or_else(|| io::Error::other("stripe 0 did not bind before the chaos point"))?
            .0;
        let victim = shard_hosts
            .iter()
            .position(|h| *h == serving)
            .ok_or_else(|| io::Error::other("advertised host is not a shard"))?;
        sim.install_faults(
            FaultPlan::new(seed).crash(shard_ids[victim], SimDuration::from_millis(1)),
        );
        1
    } else {
        0
    };
    sim.run_until(SimTime(SimDuration::from_secs(600).nanos()));

    let c = cell.lock();
    let Some((_, got)) = c.receiver.result() else {
        return Err(io::Error::other(format!(
            "stripe_scaling: transfer incomplete (streams={streams}, drop_ppm={drop_ppm}, \
             kill={kill})"
        )));
    };
    if got != **data {
        return Err(io::Error::other(
            "stripe_scaling: reassembled payload differs from the staged bytes",
        ));
    }
    if !c.errors.is_empty() {
        return Err(io::Error::other(format!(
            "stripe_scaling: {} typed reassembly errors",
            c.errors.len()
        )));
    }
    let elapsed_ns = c
        .done_at_ns
        .unwrap_or(0)
        .saturating_sub(start_at.nanos())
        .max(1);
    let (p50_ns, p95_ns, p99_ns) = percentiles(&lane_hist);
    Ok(StripeCellStats {
        elapsed_ns,
        bytes: total_len,
        p50_ns,
        p95_ns,
        p99_ns,
        streams: u64::from(streams),
        shards: shards as u64,
        chunks: plan.chunk_count(),
        chunk_bytes: u64::from(chunk),
        completed: 1,
        killed,
        drop_ppm,
        failovers: c.failovers,
        dup_chunks: stats.dup_chunks.get(),
        resent_chunks: stats.resent_chunks.get(),
        conflicts: stats.conflicts.get(),
    })
}

fn stripe_scaling(smoke: bool) -> io::Result<String> {
    let seed = 0x57a1e;
    let total_len: u64 = if smoke { 1 << 20 } else { 8 << 20 };
    let chunk: u32 = 64 * 1024;
    let shards = 8;

    let mut modes = JsonWriter::object();
    let mut sweep = Vec::new();
    for streams in [1u16, 2, 4, 8] {
        let st = stripe_cell_run(seed, shards, streams, total_len, chunk, 0, false)?;
        eprintln!(
            "  streams{streams}: {} bytes/s, utilization {}/1000, over {} ms (virtual)",
            st.bytes_per_sec(),
            st.utilization_x1000(),
            st.elapsed_ns / 1_000_000
        );
        modes.field_raw(&format!("streams{streams}"), &st.to_json());
        sweep.push(st);
    }
    let lossy = stripe_cell_run(seed, shards, 4, total_len, chunk, 10_000, false)?;
    eprintln!(
        "  lossy4 (1% loss): {} bytes/s over {} ms (virtual)",
        lossy.bytes_per_sec(),
        lossy.elapsed_ns / 1_000_000
    );
    modes.field_raw("lossy4", &lossy.to_json());
    let kill = stripe_cell_run(seed, shards, 4, total_len, chunk, 0, true)?;
    eprintln!(
        "  killstripe: reassembled exactly, {} lane failovers, {} resent chunks",
        kill.failovers, kill.resent_chunks
    );
    modes.field_raw("killstripe", &kill.to_json());

    let speedup_x1000 = sweep[2].bytes_per_sec() * 1000 / sweep[0].bytes_per_sec().max(1);
    let mut config = JsonWriter::object();
    config
        .field_u64("total_len", total_len)
        .field_u64("chunk_bytes", u64::from(chunk))
        .field_u64("shards", shards as u64);
    let mut w = JsonWriter::object();
    w.field_u64("schema_version", SCHEMA_VERSION)
        .field_str("scenario", "stripe_scaling")
        .field_u64("seed", seed)
        .field_u64("smoke", u64::from(smoke))
        .field_raw("config", &config.finish())
        .field_raw("modes", &modes.finish())
        .field_u64("speedup_x1000", speedup_x1000);
    Ok(w.finish())
}

// ---------------------------------------------------------------------
// Schema validation (used after every run and by `--check`).
// ---------------------------------------------------------------------

/// Budget for the `--against-git` p99 guard: a freshly generated
/// BENCH file whose per-mode `p99_ns` exceeds the committed (git
/// HEAD) version by more than this many percent fails the check.
const P99_REGRESSION_PCT: u64 = 20;

/// The balanced-brace span starting at `s[0] == '{'` (inclusive).
fn brace_span(s: &str) -> Option<&str> {
    let b = s.as_bytes();
    if b.first() != Some(&b'{') {
        return None;
    }
    let mut depth = 0u32;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Per-mode `p99_ns` values keyed by mode name, parsed from the
/// `modes` object (document order preserved). A mode object without a
/// `p99_ns` field is skipped.
fn mode_p99s(json: &str) -> Vec<(String, u64)> {
    let Some(pos) = json.find("\"modes\":{") else {
        return Vec::new();
    };
    let Some(body) = brace_span(&json[pos + "\"modes\":".len()..]) else {
        return Vec::new();
    };
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 1; // past the opening brace
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(name_len) = body[i + 1..].find('"') else {
            break;
        };
        let name = body[i + 1..i + 1 + name_len].to_string();
        let after_key = i + 1 + name_len + 1; // past the closing quote
                                              // The value must be `:{...}`; skip the whole object span so
                                              // nested keys (percentiles, obs counters) are never mistaken
                                              // for mode names.
        let Some(span) = body
            .get(after_key..)
            .and_then(|rest| rest.strip_prefix(':'))
            .and_then(brace_span)
        else {
            break;
        };
        if let Some(p99) = top_level_u64(span, "p99_ns") {
            out.push((name, p99));
        }
        i = after_key + 1 + span.len();
    }
    out
}

/// The value of `"key":<digits>` at the **top level** of one
/// brace-span object. Nested objects (a mode's `obs` counters) are
/// skipped wholesale, never searched — they may carry keys that shadow
/// the mode's own fields.
fn top_level_u64(obj: &str, key: &str) -> Option<u64> {
    let bytes = obj.as_bytes();
    let mut i = 1; // past the opening brace
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let name_len = obj[i + 1..].find('"')?;
        let name = &obj[i + 1..i + 1 + name_len];
        let mut j = i + 1 + name_len + 1;
        if bytes.get(j) != Some(&b':') {
            // A string value, not a key; keep walking.
            i = j;
            continue;
        }
        j += 1;
        if bytes.get(j) == Some(&b'{') {
            j += brace_span(obj.get(j..)?)?.len();
        } else if name == key {
            let digits = obj[j..]
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap_or("");
            return digits.parse().ok();
        }
        i = j;
    }
    None
}

/// Compare per-mode `p99_ns` of `new_json` against the committed
/// `old_json`. Pure; returns one message per regressed mode.
///
/// Modes are paired **by name**, not by position: a committed file
/// with a different mode set (a scenario that grew a mode, or a
/// single-mode run) compares only the modes both documents share.
fn p99_regressions(old_json: &str, new_json: &str) -> Vec<String> {
    let old = mode_p99s(old_json);
    let mut out = Vec::new();
    for (mode, n) in mode_p99s(new_json) {
        let Some((_, o)) = old.iter().find(|(m, _)| *m == mode) else {
            continue;
        };
        let o = *o;
        if o > 0 && n.saturating_mul(100) > o.saturating_mul(100 + P99_REGRESSION_PCT) {
            out.push(format!(
                "{mode}: p99 {n} ns vs committed {o} ns \
                 (+{}%, budget {P99_REGRESSION_PCT}%)",
                (n.saturating_mul(100) / o).saturating_sub(100),
            ));
        }
    }
    out
}

/// The `--against-git` guard for one file: diff its p99s against the
/// version committed at git HEAD. Returns whether the file regressed
/// (always `false` under `--allow-regression`, which only warns).
/// A file with no committed baseline (new scenario, or no repo) is
/// skipped with a note.
fn check_against_git(path: &str, allow_regression: bool) -> io::Result<bool> {
    let rel = path.strip_prefix("./").unwrap_or(path);
    let out = std::process::Command::new("git")
        .args(["show", &format!("HEAD:{rel}")])
        .output()?;
    if !out.status.success() {
        println!("  (no committed baseline for {path}; skipping p99 guard)");
        return Ok(false);
    }
    let committed = String::from_utf8_lossy(&out.stdout).into_owned();
    let current = std::fs::read_to_string(path)?;
    let regressions = p99_regressions(&committed, &current);
    for r in &regressions {
        if allow_regression {
            println!("  warning: {path}: {r} (accepted via --allow-regression)");
        } else {
            eprintln!("  {path}: {r}");
        }
    }
    Ok(!allow_regression && !regressions.is_empty())
}

fn check_file(path: &str) -> io::Result<()> {
    let json = std::fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_name()
        .and_then(std::ffi::OsStr::to_str)
        .and_then(|f| f.strip_prefix("BENCH_"))
        .and_then(|f| f.strip_suffix(".json"))
        .ok_or_else(|| io::Error::other(format!("{path}: not a BENCH_<scenario>.json name")))?;
    validate(&json, name).map_err(|e| io::Error::other(format!("{path}: {e}")))
}

/// Every `"key":<digits>` occurrence, in document order.
fn extract_all(json: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let start = from + pos + needle.len();
        let digits: String = json[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(v) = digits.parse() {
            out.push(v);
        }
        from = start;
    }
    out
}

fn validate(json: &str, scenario: &str) -> Result<(), String> {
    // The chaos document is schema v2 (recovery-time cells); every
    // other scenario still emits v1.
    let want = if scenario == "chaos" {
        CHAOS_SCHEMA_VERSION
    } else {
        SCHEMA_VERSION
    };
    if extract_all(json, "schema_version") != vec![want] {
        return Err(format!("schema_version != {want}"));
    }
    if !json.contains(&format!("\"scenario\":\"{scenario}\"")) {
        return Err(format!("scenario field is not {scenario:?}"));
    }
    if scenario == "chaos" {
        return validate_chaos(json);
    }
    for key in ["seed", "smoke", "speedup_x1000"] {
        if extract_all(json, key).len() != 1 {
            return Err(format!("missing top-level field {key:?}"));
        }
    }
    if scenario == "shard_scaling" {
        return validate_shard_scaling(json);
    }
    if scenario == "stripe_scaling" {
        return validate_stripe_scaling(json);
    }
    for key in ["\"thread_pair\":{", "\"reactor\":{"] {
        if !json.contains(key) {
            return Err(format!("missing mode object {key}"));
        }
    }
    for key in [
        "elapsed_ns",
        "bytes",
        "bytes_per_sec",
        "pump_threads",
        "relays",
        "relays_per_thread_x1000",
        "relayed_bytes",
        "pump_segments",
        "pool_hits",
        "pool_misses",
    ] {
        if extract_all(json, key).len() != 2 {
            return Err(format!("field {key:?} must appear once per mode"));
        }
    }
    validate_percentile_order(json, 2)
}

/// p50 ≤ p95 ≤ p99 in each of the `modes` mode objects.
fn validate_percentile_order(json: &str, modes: usize) -> Result<(), String> {
    let (p50, p95, p99) = (
        extract_all(json, "p50_ns"),
        extract_all(json, "p95_ns"),
        extract_all(json, "p99_ns"),
    );
    if p50.len() != modes || p95.len() != modes || p99.len() != modes {
        return Err("p50/p95/p99 must appear once per mode".to_string());
    }
    for i in 0..modes {
        if !(p50[i] <= p95[i] && p95[i] <= p99[i]) {
            return Err(format!(
                "percentile ordering violated in mode {i}: p50={} p95={} p99={}",
                p50[i], p95[i], p99[i]
            ));
        }
    }
    Ok(())
}

/// The `shard_scaling` document: four cells (`shards1`, `shards2`,
/// `shards4`, `killshard`), zero lost work everywhere, at least one
/// breaker-driven failover in the chaos cell, and — for full
/// (non-smoke) runs — the headline ≥1.5× fan-in speedup at 4 shards.
fn validate_shard_scaling(json: &str) -> Result<(), String> {
    // Scope the per-cell checks to the modes object: the run config
    // also carries a "cells" field at the top level.
    let modes = json
        .find("\"modes\":{")
        .and_then(|p| brace_span(&json[p + "\"modes\":".len()..]))
        .ok_or_else(|| "missing modes object".to_string())?;
    for key in [
        "\"shards1\":{",
        "\"shards2\":{",
        "\"shards4\":{",
        "\"killshard\":{",
    ] {
        if !modes.contains(key) {
            return Err(format!("missing mode object {key}"));
        }
    }
    for key in [
        "elapsed_ns",
        "bytes",
        "bytes_per_sec",
        "shards",
        "cells",
        "messages",
        "completed",
        "killed",
        "failovers",
        "redirects_sent",
        "binds_owned",
    ] {
        if extract_all(modes, key).len() != 4 {
            return Err(format!("field {key:?} must appear once per cell"));
        }
    }
    if extract_all(modes, "killed") != vec![0, 0, 0, 1] {
        return Err("exactly the killshard cell must kill one shard".to_string());
    }
    // Zero lost work: every cell completed its full fan-in, chaos
    // included (the kill cell counts exactly-once accepted sequences).
    let (cells, completed) = (extract_all(modes, "cells"), extract_all(modes, "completed"));
    if cells != completed {
        return Err(format!("incomplete cells: {completed:?} of {cells:?}"));
    }
    let failovers = extract_all(modes, "failovers");
    if failovers[3] < 1 {
        return Err("killshard cell recorded no breaker-driven failover".to_string());
    }
    validate_percentile_order(modes, 4)?;
    // The acceptance ratio only binds on full runs; smoke runs are CI
    // plumbing checks with tiny workloads.
    if extract_all(json, "smoke") == vec![0] {
        let speedup = extract_all(json, "speedup_x1000");
        if speedup.first().is_none_or(|&s| s < 1500) {
            return Err(format!(
                "4-shard fan-in speedup {speedup:?} below the 1500 (×1000) floor"
            ));
        }
    }
    Ok(())
}

/// The `stripe_scaling` document: six cells (`streams1`, `streams2`,
/// `streams4`, `streams8`, `lossy4`, `killstripe`), every transfer
/// reassembled byte-exactly (a cell that doesn't errors out before
/// emission, so `completed` is structural), loss confined to the lossy
/// cell, a kill confined to the chaos cell with at least one lane
/// failover, and — for full runs — the headline ≥2× bulk-throughput
/// speedup at 4 stripes.
fn validate_stripe_scaling(json: &str) -> Result<(), String> {
    let modes = json
        .find("\"modes\":{")
        .and_then(|p| brace_span(&json[p + "\"modes\":".len()..]))
        .ok_or_else(|| "missing modes object".to_string())?;
    for key in [
        "\"streams1\":{",
        "\"streams2\":{",
        "\"streams4\":{",
        "\"streams8\":{",
        "\"lossy4\":{",
        "\"killstripe\":{",
    ] {
        if !modes.contains(key) {
            return Err(format!("missing mode object {key}"));
        }
    }
    for key in [
        "elapsed_ns",
        "bytes",
        "bytes_per_sec",
        "utilization_x1000",
        "streams",
        "shards",
        "chunks",
        "chunk_bytes",
        "completed",
        "killed",
        "drop_ppm",
        "failovers",
        "dup_chunks",
        "resent_chunks",
    ] {
        if extract_all(modes, key).len() != 6 {
            return Err(format!("field {key:?} must appear once per cell"));
        }
    }
    if extract_all(modes, "completed") != vec![1; 6] {
        return Err("every stripe cell must reassemble to completion".to_string());
    }
    if extract_all(modes, "killed") != vec![0, 0, 0, 0, 0, 1] {
        return Err("exactly the killstripe cell must kill one shard".to_string());
    }
    let drops = extract_all(modes, "drop_ppm");
    if drops != vec![0, 0, 0, 0, 10_000, 0] {
        return Err(format!(
            "loss must be confined to the lossy4 cell: {drops:?}"
        ));
    }
    let failovers = extract_all(modes, "failovers");
    if failovers[5] < 1 {
        return Err("killstripe cell recorded no lane failover".to_string());
    }
    validate_percentile_order(modes, 6)?;
    if extract_all(json, "smoke") == vec![0] {
        let speedup = extract_all(json, "speedup_x1000");
        if speedup.first().is_none_or(|&s| s < 2000) {
            return Err(format!(
                "4-stripe bulk speedup {speedup:?} below the 2000 (×1000) floor"
            ));
        }
    }
    Ok(())
}

/// The chaos (schema v2) document: one recovery-time cell per fault
/// class, each complete, byte-exact, and leak-free, with at least one
/// injected fault and one measured recovery, and recovery percentiles
/// ordered. The per-cell `p99_ns` is the recovery-time p99, so the
/// `--against-git` guard prices RTO regressions exactly like
/// data-plane latency.
fn validate_chaos(json: &str) -> Result<(), String> {
    for key in ["seed", "smoke"] {
        if extract_all(json, key).len() != 1 {
            return Err(format!("missing top-level field {key:?}"));
        }
    }
    let modes = json
        .find("\"modes\":{")
        .and_then(|p| brace_span(&json[p + "\"modes\":".len()..]))
        .ok_or_else(|| "missing modes object".to_string())?;
    for class in FaultClass::ALL {
        if !modes.contains(&format!("\"{}\":{{", class.name())) {
            return Err(format!("missing chaos cell {:?}", class.name()));
        }
    }
    let n = FaultClass::ALL.len();
    for key in ["ops", "attempts", "bytes"] {
        if extract_all(modes, key).len() != n {
            return Err(format!("field {key:?} must appear once per cell"));
        }
    }
    if extract_all(modes, "completed") != vec![1; n] {
        return Err("every chaos cell must run to completion".to_string());
    }
    if extract_all(modes, "payload_ok") != vec![1; n] {
        return Err("every chaos cell must move its payloads byte-exactly".to_string());
    }
    if extract_all(modes, "leaked_relays") != vec![0; n] {
        return Err("a chaos cell leaked relay-table entries".to_string());
    }
    if extract_all(modes, "leaked_admission") != vec![0; n] {
        return Err("a chaos cell leaked admission slots".to_string());
    }
    let faults = extract_all(modes, "faults_injected");
    if faults.len() != n || faults.contains(&0) {
        return Err(format!(
            "every chaos cell must inject at least one fault: {faults:?}"
        ));
    }
    let recoveries = extract_all(modes, "recoveries");
    if recoveries.len() != n || recoveries.contains(&0) {
        return Err(format!(
            "every chaos cell must measure at least one recovery: {recoveries:?}"
        ));
    }
    validate_percentile_order(modes, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_all_finds_each_occurrence_in_order() {
        let json = r#"{"a":{"x":1},"b":{"x":22},"y":3}"#;
        assert_eq!(extract_all(json, "x"), vec![1, 22]);
        assert_eq!(extract_all(json, "y"), vec![3]);
        assert!(extract_all(json, "z").is_empty());
    }

    #[test]
    fn validate_accepts_a_wellformed_doc_and_rejects_breakage() {
        let mode = r#"{"elapsed_ns":10,"bytes":5,"bytes_per_sec":2,"p50_ns":1,"p95_ns":2,"p99_ns":3,"pump_threads":2,"relays":1,"relays_per_thread_x1000":500,"completed":1,"killed":0,"reaped":0,"obs":{"relayed_bytes":5,"pump_segments":1,"pump_coalesced_writes":0,"pool_hits":0,"pool_misses":1,"idle_reaped":0,"busy_rejected":0}}"#;
        let doc = format!(
            r#"{{"schema_version":1,"scenario":"latency","seed":7,"smoke":1,"config":{{}},"modes":{{"thread_pair":{mode},"reactor":{mode}}},"speedup_x1000":1000}}"#
        );
        assert_eq!(validate(&doc, "latency"), Ok(()));
        assert!(validate(&doc, "fanin").is_err());
        let broken = doc.replace("\"p95_ns\":2", "\"p95_ns\":9");
        assert!(validate(&broken, "latency").is_err());
    }

    fn two_mode_doc(tp_p99: u64, re_p99: u64) -> String {
        format!(
            r#"{{"modes":{{"thread_pair":{{"p99_ns":{tp_p99}}},"reactor":{{"p99_ns":{re_p99}}}}}}}"#
        )
    }

    #[test]
    fn p99_guard_passes_within_budget() {
        let old = two_mode_doc(1000, 2000);
        // Exactly +20% is within budget; only strictly-over fails.
        assert!(p99_regressions(&old, &two_mode_doc(1200, 2400)).is_empty());
        assert!(p99_regressions(&old, &two_mode_doc(900, 1500)).is_empty());
    }

    #[test]
    fn p99_guard_flags_each_regressed_mode() {
        let old = two_mode_doc(1000, 2000);
        let r = p99_regressions(&old, &two_mode_doc(1201, 2000));
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].starts_with("thread_pair:"), "{r:?}");
        let r = p99_regressions(&old, &two_mode_doc(1300, 5000));
        assert_eq!(r.len(), 2, "{r:?}");
        assert!(r[1].starts_with("reactor:"), "{r:?}");
    }

    #[test]
    fn p99_guard_tolerates_missing_or_zero_baselines() {
        // Old doc without p99s (schema drift) or with a zero p99
        // (degenerate) must not divide by zero or false-positive.
        assert!(p99_regressions("{}", &two_mode_doc(9999, 9999)).is_empty());
        let zero = two_mode_doc(0, 2000);
        let r = p99_regressions(&zero, &two_mode_doc(5000, 2000));
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn mode_p99s_keys_by_name_and_skips_nested_objects() {
        // The per-mode obs sub-object carries unrelated counters; the
        // parser must take the mode's own p99_ns, not one from inside
        // a nested object, and must survive modes with no p99 at all.
        let json = r#"{"modes":{"reactor":{"obs":{"p99_ns":77},"p99_ns":42},"bare":{"bytes":1},"thread_pair":{"p99_ns":9}}}"#;
        assert_eq!(
            mode_p99s(json),
            vec![("reactor".to_string(), 42), ("thread_pair".to_string(), 9)]
        );
        assert!(mode_p99s(r#"{"speedup_x1000":3}"#).is_empty());
    }

    #[test]
    fn p99_guard_keys_by_mode_name_not_position() {
        // Regression for the positional-pairing bug: a committed
        // baseline holding only one mode must pair that mode by NAME.
        // Under index pairing, old reactor(2000) would be compared
        // against new thread_pair(5000) — a false regression — while a
        // genuine reactor regression would slip through unpaired.
        let old = r#"{"modes":{"reactor":{"p99_ns":2000}}}"#;
        assert!(p99_regressions(old, &two_mode_doc(5000, 2000)).is_empty());
        let r = p99_regressions(old, &two_mode_doc(5000, 2401));
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].starts_with("reactor:"), "{r:?}");
    }

    fn shard_doc(killed: [u64; 4], failovers_kill: u64, smoke: u64, speedup: u64) -> String {
        let cell = |shards: u64, completed: u64, killed: u64, failovers: u64| {
            format!(
                r#"{{"elapsed_ns":10,"bytes":5,"bytes_per_sec":2,"p50_ns":1,"p95_ns":2,"p99_ns":3,"shards":{shards},"cells":6,"messages":8,"completed":{completed},"killed":{killed},"obs":{{"binds_owned":6,"redirects_sent":1,"redirects_followed":1,"failovers":{failovers},"map_syncs":0}}}}"#
            )
        };
        format!(
            r#"{{"schema_version":1,"scenario":"shard_scaling","seed":7,"smoke":{smoke},"config":{{"cells":6,"msgs_per_cell":8,"msg_bytes":4096}},"modes":{{"shards1":{},"shards2":{},"shards4":{},"killshard":{}}},"speedup_x1000":{speedup}}}"#,
            cell(1, 6, killed[0], 0),
            cell(2, 6, killed[1], 0),
            cell(4, 6, killed[2], 0),
            cell(4, 6, killed[3], failovers_kill),
        )
    }

    #[test]
    fn validate_shard_scaling_enforces_chaos_and_speedup_floors() {
        let ok = shard_doc([0, 0, 0, 1], 2, 1, 900);
        assert_eq!(validate(&ok, "shard_scaling"), Ok(()));
        // Non-smoke runs must clear the 1.5x fan-in speedup floor.
        assert!(validate(&shard_doc([0, 0, 0, 1], 2, 0, 1499), "shard_scaling").is_err());
        assert_eq!(
            validate(&shard_doc([0, 0, 0, 1], 2, 0, 1500), "shard_scaling"),
            Ok(())
        );
        // The chaos cell must actually kill a shard and fail over.
        assert!(validate(&shard_doc([0, 0, 0, 0], 2, 1, 900), "shard_scaling").is_err());
        assert!(validate(&shard_doc([0, 0, 0, 1], 0, 1, 900), "shard_scaling").is_err());
        // Lost work anywhere is fatal.
        let lossy =
            shard_doc([0, 0, 0, 1], 2, 1, 900).replacen("\"completed\":6", "\"completed\":5", 1);
        assert!(validate(&lossy, "shard_scaling").is_err());
    }

    fn stripe_doc(killed_last: u64, failovers_kill: u64, smoke: u64, speedup: u64) -> String {
        let cell = |streams: u64, killed: u64, drop_ppm: u64, failovers: u64| {
            format!(
                r#"{{"elapsed_ns":10,"bytes":5,"bytes_per_sec":2,"utilization_x1000":900,"p50_ns":1,"p95_ns":2,"p99_ns":3,"streams":{streams},"shards":8,"chunks":16,"chunk_bytes":65536,"completed":1,"killed":{killed},"drop_ppm":{drop_ppm},"obs":{{"failovers":{failovers},"dup_chunks":0,"resent_chunks":0,"conflicts":0}}}}"#
            )
        };
        format!(
            r#"{{"schema_version":1,"scenario":"stripe_scaling","seed":7,"smoke":{smoke},"config":{{"total_len":1048576,"chunk_bytes":65536,"shards":8}},"modes":{{"streams1":{},"streams2":{},"streams4":{},"streams8":{},"lossy4":{},"killstripe":{}}},"speedup_x1000":{speedup}}}"#,
            cell(1, 0, 0, 0),
            cell(2, 0, 0, 0),
            cell(4, 0, 0, 0),
            cell(8, 0, 0, 0),
            cell(4, 0, 10_000, 0),
            cell(4, killed_last, 0, failovers_kill),
        )
    }

    #[test]
    fn validate_stripe_scaling_enforces_chaos_and_speedup_floors() {
        let ok = stripe_doc(1, 2, 1, 900);
        assert_eq!(validate(&ok, "stripe_scaling"), Ok(()));
        // Non-smoke runs must clear the 2x bulk-throughput floor.
        assert!(validate(&stripe_doc(1, 2, 0, 1999), "stripe_scaling").is_err());
        assert_eq!(
            validate(&stripe_doc(1, 2, 0, 2000), "stripe_scaling"),
            Ok(())
        );
        // The chaos cell must actually kill a shard and fail over.
        assert!(validate(&stripe_doc(0, 2, 1, 900), "stripe_scaling").is_err());
        assert!(validate(&stripe_doc(1, 0, 1, 900), "stripe_scaling").is_err());
        // An incomplete reassembly anywhere is fatal.
        let torn = stripe_doc(1, 2, 1, 900).replacen("\"completed\":1", "\"completed\":0", 1);
        assert!(validate(&torn, "stripe_scaling").is_err());
        // Loss outside the lossy cell is a mislabeled experiment.
        let leaky = stripe_doc(1, 2, 1, 900).replacen("\"drop_ppm\":0", "\"drop_ppm\":5", 1);
        assert!(validate(&leaky, "stripe_scaling").is_err());
    }

    fn chaos_cell(p99: u64) -> String {
        format!(
            r#"{{"p50_ns":1,"p95_ns":2,"p99_ns":{p99},"ops":4,"attempts":6,"faults_injected":2,"recoveries":2,"bytes":65536,"completed":1,"payload_ok":1,"leaked_relays":0,"leaked_admission":0}}"#
        )
    }

    fn chaos_doc(p99s: [u64; 8], smoke: u64) -> String {
        let modes: Vec<String> = FaultClass::ALL
            .iter()
            .zip(p99s)
            .map(|(class, p99)| format!(r#""{}":{}"#, class.name(), chaos_cell(p99)))
            .collect();
        format!(
            r#"{{"schema_version":2,"scenario":"chaos","seed":7,"smoke":{smoke},"config":{{"ops":4,"cells":8}},"modes":{{{}}},"drill":{{"wacs.chaos.ops":32}}}}"#,
            modes.join(",")
        )
    }

    #[test]
    fn validate_chaos_v2_enforces_schema_and_cell_integrity() {
        let ok = chaos_doc([3; 8], 1);
        assert_eq!(validate(&ok, "chaos"), Ok(()));
        // The chaos document is the only v2 doc; a v1 stamp is stale.
        let stale = ok.replacen("\"schema_version\":2", "\"schema_version\":1", 1);
        assert!(validate(&stale, "chaos").is_err());
        // Any single-cell integrity breakage is fatal: a leaked relay
        // or admission slot, a torn payload, an incomplete cell, a
        // cell that measured nothing, or a cell that faulted nothing.
        for (from, to) in [
            ("\"leaked_relays\":0", "\"leaked_relays\":1"),
            ("\"leaked_admission\":0", "\"leaked_admission\":2"),
            ("\"payload_ok\":1", "\"payload_ok\":0"),
            ("\"completed\":1", "\"completed\":0"),
            ("\"recoveries\":2", "\"recoveries\":0"),
            ("\"faults_injected\":2", "\"faults_injected\":0"),
            ("\"p95_ns\":2", "\"p95_ns\":9"),
        ] {
            let broken = ok.replacen(from, to, 1);
            assert!(validate(&broken, "chaos").is_err(), "{to} not caught");
        }
        // A document missing a fault class is structurally incomplete.
        let missing = ok.replace("\"inner_restart\":{", "\"mystery\":{");
        assert!(validate(&missing, "chaos").is_err());
    }

    #[test]
    fn p99_guard_prices_chaos_recovery_cells_by_name() {
        // Schema-v2 chaos cells carry their recovery p99 at the top
        // level of each mode object, so the --against-git guard gives
        // committed RTOs the same name-paired 20% budget as data-plane
        // latency (--allow-regression stays the only escape hatch; it
        // downgrades the failure to a warning in check_against_git).
        let old = chaos_doc([1000; 8], 1);
        // Exactly +20% is within budget.
        assert!(p99_regressions(&old, &chaos_doc([1200; 8], 1)).is_empty());
        // One cell blowing its recovery budget is flagged by name.
        let mut p99s = [1000u64; 8];
        p99s[1] = 1201;
        let r = p99_regressions(&old, &chaos_doc(p99s, 1));
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].starts_with("stall:"), "{r:?}");
        // A baseline predating the v2 schema (or a new fault class)
        // pairs by name: only cells present in both documents are
        // compared, the rest are skipped rather than mispaired.
        let legacy = r#"{"modes":{"rolling_restart":{"p99_ns":500}}}"#;
        let mut p99s = [99_999u64; 8];
        p99s[6] = 601; // rolling_restart, the only paired cell
        let r = p99_regressions(legacy, &chaos_doc(p99s, 1));
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].starts_with("rolling_restart:"), "{r:?}");
    }
}
