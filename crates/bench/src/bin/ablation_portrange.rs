//! Ablation: the Nexus Proxy vs the Globus 1.1 port-range workaround.
//!
//! The paper argues that opening `TCP_MIN_PORT..TCP_MAX_PORT` inbound
//! "is basically the same as the allow based firewall and loses the
//! advantages of a deny based firewall". This harness quantifies both
//! sides of the trade on the same testbed:
//!
//! * **security** — the number of inbound ports the firewall must
//!   open (policy exposure);
//! * **performance** — wide-area knapsack time under each scheme.
//!
//! Usage: `ablation_portrange [--items N]`

use firewall::Policy;
use wacs_bench::arg_usize;
use wacs_core::calibration::TABLE4_ITEMS;
use wacs_core::{
    run_knapsack, run_knapsack_with_mode, sequential_baseline, FirewallMode, KnapsackRun, System,
};

fn main() {
    let items = arg_usize("--items", TABLE4_ITEMS);
    let seq = sequential_baseline(items).elapsed_secs;

    // Security axis: exposure of each policy.
    let proxy_policy = Policy::typical_with_nxport("RWCP", 0, firewall::NXPORT);
    // The sim's ephemeral listener range (every rank's endpoint must be
    // reachable, on every inside host).
    let (lo, hi) = (32768u16, 65535u16);
    let range_policy = Policy::typical_with_port_range("RWCP", lo, hi);

    println!("Ablation: Nexus Proxy vs TCP_MIN_PORT/TCP_MAX_PORT (n = {items})\n");
    println!(
        "{:<28} {:>16} {:>12} {:>9}",
        "Scheme", "inbound ports", "time (s)", "speedup"
    );

    let proxied = run_knapsack(&KnapsackRun::paper_default(System::WideArea, items));
    println!(
        "{:<28} {:>16} {:>12.1} {:>9.2}",
        "Nexus Proxy (deny-in)",
        proxy_policy.inbound_exposure(),
        proxied.elapsed_secs,
        seq / proxied.elapsed_secs
    );

    let mut cfg = KnapsackRun::paper_default(System::WideArea, items);
    cfg.use_proxy = false; // ranks bind directly; the opened range admits peers
    let ranged = run_knapsack_with_mode(&cfg, FirewallMode::PortRangeOpen { lo, hi });
    println!(
        "{:<28} {:>16} {:>12.1} {:>9.2}",
        "Port range (Globus 1.1)",
        range_policy.inbound_exposure(),
        ranged.elapsed_secs,
        seq / ranged.elapsed_secs
    );

    let mut open_cfg = KnapsackRun::paper_default(System::WideArea, items);
    open_cfg.use_proxy = false;
    let open = run_knapsack(&open_cfg);
    println!(
        "{:<28} {:>16} {:>12.1} {:>9.2}",
        "No firewall (baseline)",
        65535,
        open.elapsed_secs,
        seq / open.elapsed_secs
    );

    println!(
        "\nThe trade in one line: the proxy costs {:.1}% runtime to shrink the\ninbound attack surface from {} ports to 1.",
        100.0 * (proxied.elapsed_secs - ranged.elapsed_secs) / ranged.elapsed_secs,
        range_policy.inbound_exposure()
    );
}
