//! Regenerate the paper's figures as validated textual renderings.
//!
//! * Fig. 1 — the wide-area cluster concept;
//! * Fig. 2 — the RMF architecture + six-step job flow (executed live
//!   over the guarded network, trace printed);
//! * Figs. 3/4 — the proxy's active/passive connection mechanisms
//!   (executed live, steps narrated from observed server counters);
//! * Fig. 5 — the experimental environment (from the testbed data the
//!   simulations actually run on, with routing/firewall checks).

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use nexus_proxy::{
    nx_proxy_bind, nx_proxy_connect, InnerConfig, InnerServer, OuterConfig, OuterServer, ProxyEnv,
};
use rmf::{
    rmf_site_policy, submit_job, wait_job, ExecRegistry, FlowTrace, GassStore, Gatekeeper, QServer,
    ResourceAllocator, ResourceInfo, SelectPolicy,
};
use std::error::Error;
use std::io::{self, Read, Write};
use std::time::Duration;
use wacs_core::{FirewallMode, PaperTestbed};

type Render = Result<(), Box<dyn Error>>;

fn fig1() {
    println!("── Figure 1: Wide-area cluster system ──────────────────────");
    println!(
        "\
  Electrotechnical Laboratory          Tokyo Institute of Technology
    32-node Alpha cluster                 16-node SMP cluster
    32-node PC cluster            WAN
    64-node PC cluster         ───────   Real World Computing Partnership
                                           (LAN behind a firewall)\n"
    );
}

fn fig2() -> Render {
    println!("── Figure 2: The architecture of RMF (live run) ────────────");
    let net = VNet::new();
    let outside = net.add_site("outside", None);
    let inside = net.add_site("rwcp", None);
    net.add_host("user", outside);
    net.add_host("gk-host", outside);
    let a = net.add_host("alloc-host", inside);
    let q1 = net.add_host("clusterA-fe", inside);
    let q2 = net.add_host("clusterB-fe", inside);
    net.reload_policy(
        inside,
        rmf_site_policy(
            "rwcp",
            &[
                (a, rmf::ALLOCATOR_PORT),
                (q1, rmf::QSERVER_PORT),
                (q2, rmf::QSERVER_PORT),
            ],
        ),
    );
    let trace = FlowTrace::new();
    let gass = GassStore::new();
    let registry = ExecRegistry::new();
    registry.register("job", |_| 0);
    let alloc = ResourceAllocator::start(
        net.clone(),
        "alloc-host",
        SelectPolicy::LeastLoaded,
        trace.clone(),
    )?;
    alloc.state.register(ResourceInfo {
        name: "cluster A".into(),
        qserver_host: "clusterA-fe".into(),
        cpus: 8,
    });
    alloc.state.register(ResourceInfo {
        name: "cluster B".into(),
        qserver_host: "clusterB-fe".into(),
        cpus: 8,
    });
    let _qa = QServer::start(
        net.clone(),
        "clusterA-fe",
        "cluster A",
        registry.clone(),
        gass.clone(),
        "alloc-host",
        trace.clone(),
    )?;
    let _qb = QServer::start(
        net.clone(),
        "clusterB-fe",
        "cluster B",
        registry,
        gass.clone(),
        "alloc-host",
        trace.clone(),
    )?;
    let gk = Gatekeeper::start(
        net.clone(),
        "gk-host",
        vec!["/CN=user".into()],
        "alloc-host",
        gass,
        trace.clone(),
    )?;
    let addr = gk.addr();
    let job = submit_job(
        &net,
        "user",
        (&addr.0, addr.1),
        "/CN=user",
        "&(executable=job)(count=12)",
    )?;
    wait_job(
        &net,
        "user",
        (&addr.0, addr.1),
        job,
        Duration::from_secs(30),
    )?;
    println!("{}", trace.render());
    Ok(())
}

/// Join a helper thread that itself returns an io::Result.
fn join(t: std::thread::JoinHandle<io::Result<()>>) -> Render {
    t.join().map_err(|_| "helper thread panicked")??;
    Ok(())
}

fn figs34() -> Render {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", None);
    let dmz = net.add_site("dmz", None);
    let remote = net.add_site("remote", None);
    net.add_host("pa-host", rwcp); // PA: inside
    let inner_ref = net.add_host("inner-host", rwcp);
    net.add_host("outer-host", dmz);
    net.add_host("pb-host", remote); // PB: outside
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    let inner = InnerServer::start(net.clone(), InnerConfig::new("inner-host"))?;
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("outer-host").with_inner("inner-host", NXPORT),
    )?;
    let env = ProxyEnv::via("outer-host", OUTER_PORT);

    println!("── Figure 3: active connection via the Nexus Proxy ─────────");
    let l = net.bind("pb-host", 7000)?;
    let t = std::thread::spawn(move || -> io::Result<()> {
        // Demo flow: the writer side is joined right after, so these
        // blocking calls cannot outlive the figure.
        let (mut s, _) = l.accept()?; // lint:allow(deadline-io)
        let mut b = [0u8; 1];
        s.read_exact(&mut b) // lint:allow(deadline-io)
    });
    println!("  (1) PA calls NXProxyConnect() instead of connect()");
    let mut pa = nx_proxy_connect(&net, &env, "pa-host", ("pb-host", 7000))?;
    println!(
        "  (2) outer server received the request and connected to PB  [connects_ok = {}]",
        outer.stats().connects_ok
    );
    pa.write_all(b"!")?;
    join(t)?;
    println!("  (3) PB accepted; link established through the outer server [relayed ≥ 1 byte]\n");

    println!("── Figure 4: passive connection via the Nexus Proxy ────────");
    println!("  (1) PA calls NXProxyBind() instead of bind()");
    let listener = nx_proxy_bind(&net, &env, "pa-host")?;
    let adv = listener.advertised.clone();
    println!(
        "  (2) outer server bound rendezvous port {} and listens    [binds = {}]",
        adv.1,
        outer.stats().binds
    );
    let t = std::thread::spawn(move || -> io::Result<()> {
        println!("  (5) PA calls NXProxyAccept() on the returned endpoint");
        let mut s = listener.accept()?; // lint:allow(deadline-io)
        let mut b = [0u8; 1];
        s.read_exact(&mut b) // lint:allow(deadline-io)
    });
    println!("  (3) PB connects to the outer server instead of PA");
    let mut pb = net.dial("pb-host", &adv.0, adv.1)?;
    pb.write_all(b"!")?;
    join(t)?;
    println!(
        "  (4) outer connected to inner via nxport; inner connected to PA [outer relays = {}, inner relays = {}]\n",
        outer.stats().relays_ok,
        inner.stats().relays_ok
    );
    Ok(())
}

fn fig5() -> Render {
    println!("── Figure 5: experimental environment (validated testbed) ──");
    let tb = PaperTestbed::build(FirewallMode::DenyInWithNxport);
    println!("{}", tb.render());
    // Validation: routing + firewall behaviour hold on this data.
    let path = tb
        .topo
        .route(tb.rwcp_sun, tb.etl_sun)
        .ok_or("testbed is not connected")?;
    println!(
        "route rwcp-sun -> etl-sun: {} hops, {} one-way, bottleneck {:.0} B/s",
        path.len(),
        tb.topo.path_latency(&path),
        tb.topo.path_bandwidth(&path)
    );
    Ok(())
}

fn main() -> Render {
    fig1();
    fig2()?;
    figs34()?;
    fig5()
}
