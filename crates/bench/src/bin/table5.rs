//! Regenerate Table 5: number of steals — total handled by the
//! master, plus max/min/average per cluster — on the local- and
//! wide-area systems.
//!
//! Usage: `table5 [--items N]`

use wacs_bench::{arg_usize, group_row};
use wacs_core::calibration::TABLE4_ITEMS;
use wacs_core::{run_knapsack, KnapsackRun, System};

fn main() {
    let items = arg_usize("--items", TABLE4_ITEMS);
    println!("Table 5: Number of steals (n = {items})\n");
    let groups = ["RWCP-Sun", "COMPaS", "ETL-O2K"];
    let mut header = format!("{:<22} {:>10} ", "System", "Master");
    for g in &groups {
        header.push_str(&format!(
            "{:>10} {:>10} {:>10} ",
            format!("{g}:max"),
            "min",
            "avg"
        ));
    }
    println!("{header}");
    for system in [System::LocalArea, System::WideArea] {
        let rr = run_knapsack(&KnapsackRun::paper_default(system, items));
        println!(
            "{:<22} {}",
            system.name(),
            group_row(&rr, &groups, |r| r.steals)
        );
    }
    println!("\n(the paper: \"slaves frequently send a steal request to the master\")");
}
