//! Regenerate Table 4: execution time and speedup of the 0-1 knapsack
//! problem on the four systems, plus the wide-area cluster with and
//! without the Nexus Proxy (the paper's ≈3.5 % overhead result).
//!
//! Usage: `table4 [--items N]` (default: the calibrated Table-4 size).

use wacs_bench::arg_usize;
use wacs_core::calibration::TABLE4_ITEMS;
use wacs_core::{run_knapsack, sequential_baseline, KnapsackRun, System};

fn main() {
    let items = arg_usize("--items", TABLE4_ITEMS);
    println!("Table 4: Execution time for the 0-1 knapsack problem");
    println!(
        "(no-pruning instance, n = {items}, 2^{} nodes; virtual seconds)\n",
        items + 1
    );

    let seq = sequential_baseline(items);
    println!(
        "{:<38} {:>6} {:>14} {:>9}",
        "System", "procs", "time (s)", "speedup"
    );
    println!(
        "{:<38} {:>6} {:>14.1} {:>9.2}",
        "RWCP-Sun (sequential)", 1, seq.elapsed_secs, 1.0
    );

    for system in System::ALL {
        let cfg = KnapsackRun::paper_default(system, items);
        let rr = run_knapsack(&cfg);
        let label = if system == System::WideArea {
            format!("{} (use Nexus Proxy)", system.name())
        } else {
            system.name().to_string()
        };
        println!(
            "{:<38} {:>6} {:>14.1} {:>9.2}",
            label,
            rr.ranks.len(),
            rr.elapsed_secs,
            seq.elapsed_secs / rr.elapsed_secs
        );
        if system == System::WideArea {
            let mut no_proxy = cfg.clone();
            no_proxy.use_proxy = false;
            let rr2 = run_knapsack(&no_proxy);
            println!(
                "{:<38} {:>6} {:>14.1} {:>9.2}",
                "Wide-area Cluster (Not use Proxy)",
                rr2.ranks.len(),
                rr2.elapsed_secs,
                seq.elapsed_secs / rr2.elapsed_secs
            );
            println!(
                "\nNexus Proxy overhead on the wide-area run: {:.1}% (paper: ~3.5%)",
                100.0 * (rr.elapsed_secs - rr2.elapsed_secs) / rr2.elapsed_secs
            );
        }
    }
}
