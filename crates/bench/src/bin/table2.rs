//! Regenerate Table 2: communication latency and bandwidth, direct vs
//! indirect (through the Nexus Proxy), on the calibrated testbed.
//!
//! Paper values for reference:
//!
//! ```text
//!                                latency   bw(4096B)   bw(1MB)
//! RWCP-Sun <-> COMPaS (direct)   0.41 ms   3.29 MB/s   6.32 MB/s
//! RWCP-Sun <-> COMPaS (indirect) 25.0 ms   70.5 KB/s   (≈10x drop)
//! RWCP-Sun <-> ETL-Sun (direct)   3.9 ms   (lost)      (lost)
//! RWCP-Sun <-> ETL-Sun (indirect) 25.1 ms  (lost)      ≈ direct
//! ```

use wacs_bench::{fmt_bw, fmt_ms};
use wacs_core::{pingpong, Mode, Pair};

fn main() {
    println!("Table 2: Communication latency and bandwidth (simulated testbed)\n");
    println!(
        "{:<34} {:>12} {:>16} {:>16}",
        "", "latency", "bw (4096B)", "bw (1MB)"
    );
    for pair in [Pair::RwcpSunCompas, Pair::RwcpSunEtlSun] {
        for mode in [Mode::Direct, Mode::Indirect] {
            let lat = pingpong(pair, mode, 1).one_way;
            let bw4k = pingpong(pair, mode, 4096).bandwidth;
            let bw1m = pingpong(pair, mode, 1 << 20).bandwidth;
            println!(
                "{:<34} {:>12} {:>16} {:>16}",
                format!("{} ({})", pair.name(), mode.name()),
                fmt_ms(lat.as_millis_f64()),
                fmt_bw(bw4k),
                fmt_bw(bw1m)
            );
        }
    }
    println!("\npaper anchors: direct 0.41/3.9 ms; indirect 25.0/25.1 ms;");
    println!("LAN indirect ~order-of-magnitude bandwidth drop; WAN 1MB ≈ direct.");
}
