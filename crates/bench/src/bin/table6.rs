//! Regenerate Table 6: number of traversed nodes — master, plus
//! max/min/average per cluster — on the local- and wide-area systems.
//! (The paper reports these in billions at n = 50; our scaled runs
//! report raw counts plus the scale factor.)
//!
//! Usage: `table6 [--items N]`

use wacs_bench::{arg_usize, group_row};
use wacs_core::calibration::TABLE4_ITEMS;
use wacs_core::{run_knapsack, KnapsackRun, System};

fn main() {
    let items = arg_usize("--items", TABLE4_ITEMS);
    println!("Table 6: Number of traversed nodes (n = {items})");
    println!(
        "(paper ran n = 50, i.e. 2^{} / 2^{} = {:.1e}x our node count)\n",
        51,
        items + 1,
        (2f64).powi(51 - (items as i32 + 1))
    );
    let groups = ["RWCP-Sun", "COMPaS", "ETL-O2K"];
    let mut header = format!("{:<22} {:>10} ", "System", "Master");
    for g in &groups {
        header.push_str(&format!(
            "{:>10} {:>10} {:>10} ",
            format!("{g}:max"),
            "min",
            "avg"
        ));
    }
    println!("{header}");
    for system in [System::LocalArea, System::WideArea] {
        let rr = run_knapsack(&KnapsackRun::paper_default(system, items));
        println!(
            "{:<22} {}",
            system.name(),
            group_row(&rr, &groups, |r| r.traversed)
        );
        // Sanity line: totals must cover the tree exactly.
        println!(
            "{:<22} total traversed = {} (tree = {})",
            "",
            rr.total_traversed(),
            knapsack::Instance::full_tree_nodes(items)
        );
    }
    println!("\n(the paper: \"we obtained good load balance and reasonable performance\")");
}
