//! Ablation: sensitivity of the Table 2 reproduction to the relay cost
//! model.
//!
//! The two calibrated knobs are the per-message service cost (the
//! select-loop + kernel-crossing overhead that dominates small
//! messages) and the copy bandwidth (dominant for bulk). This harness
//! sweeps both and prints the four indirect cells, showing which paper
//! observation each knob controls:
//!
//! * `per_message` drives the ×60 / ×6 latency blowups;
//! * `bandwidth` drives the LAN bulk drop and the small-message
//!   LAN-below-WAN crossover;
//! * neither touches the WAN 1 MB parity as long as the relay outruns
//!   the 1.5 Mbps line.

use netsim::prelude::SimDuration;
use nexus_proxy::sim::RelayModel;
use wacs_bench::{fmt_bw, fmt_ms};
use wacs_core::{decompose_with_model, pingpong_with_model, Mode, Pair};

fn main() {
    println!("Ablation: relay cost model sensitivity (indirect cells only)\n");
    println!(
        "{:>8} {:>10} | {:>10} {:>10} | {:>12} {:>12} {:>12}",
        "per-msg", "copy bw", "LAN lat", "WAN lat", "LAN bw(4K)", "WAN bw(4K)", "WAN bw(1M)"
    );
    for per_ms in [2u64, 6, 12, 24] {
        for bw in [130e3f64, 260e3, 520e3, 2e6] {
            let model = RelayModel {
                per_message: SimDuration::from_millis(per_ms),
                bandwidth: bw,
            };
            let lan_lat = pingpong_with_model(Pair::RwcpSunCompas, Mode::Indirect, 1, model);
            let wan_lat = pingpong_with_model(Pair::RwcpSunEtlSun, Mode::Indirect, 1, model);
            let lan4k = pingpong_with_model(Pair::RwcpSunCompas, Mode::Indirect, 4096, model);
            let wan4k = pingpong_with_model(Pair::RwcpSunEtlSun, Mode::Indirect, 4096, model);
            let wan1m = pingpong_with_model(Pair::RwcpSunEtlSun, Mode::Indirect, 1 << 20, model);
            println!(
                "{:>6}ms {:>7}K/s | {:>10} {:>10} | {:>12} {:>12} {:>12}",
                per_ms,
                (bw / 1e3) as u64,
                fmt_ms(lan_lat.one_way.as_millis_f64()),
                fmt_ms(wan_lat.one_way.as_millis_f64()),
                fmt_bw(lan4k.bandwidth),
                fmt_bw(wan4k.bandwidth),
                fmt_bw(wan1m.bandwidth),
            );
        }
    }
    println!("\ncalibrated model: 12 ms / 260 KB/s (see wacs_core::calibration).");
    println!("paper anchors: 25.0 / 25.1 ms latency; 70.5 KB/s LAN 4K; WAN 1M ≈ 160 KB/s.");

    // Per-hop decomposition of the calibrated indirect cells, as JSON
    // (schema in EXPERIMENTS.md): each cell's components sum to its
    // end-to-end latency, so the sweep's latency columns are auditable
    // against the hop-level accounting.
    let model = wacs_core::calibration::relay_model();
    println!("\nper-hop decomposition (calibrated model, 1-byte probe):");
    for pair in [Pair::RwcpSunCompas, Pair::RwcpSunEtlSun] {
        println!(
            "{}",
            decompose_with_model(pair, Mode::Indirect, 1, model).to_json()
        );
    }
}
