//! Regenerate Table 3: the four experimental systems, their processor
//! layouts and communication devices — printed from the same testbed
//! data structures the experiments execute on.

use wacs_core::{FirewallMode, PaperTestbed, System};

fn main() {
    let tb = PaperTestbed::build(FirewallMode::DenyInWithNxport);
    println!("Table 3: Experimental testbed\n");
    println!("{:<22} {:>6}  Description", "Nickname", "procs");
    for system in System::ALL {
        let ranks = system.ranks(&tb);
        // Count ranks per distinct group, preserving order.
        let mut per_group: Vec<(String, usize)> = Vec::new();
        for r in &ranks {
            match per_group.iter_mut().find(|(g, _)| *g == r.group) {
                Some((_, n)) => *n += 1,
                None => per_group.push((r.group.clone(), 1)),
            }
        }
        let layout = per_group
            .iter()
            .map(|(g, n)| format!("{n} on {g}"))
            .collect::<Vec<_>>()
            .join(", ");
        let device = match system {
            System::Compas => "mpich ch_p4 device",
            System::EtlO2k => "vendor-provided MPI",
            System::LocalArea | System::WideArea => "mpich Globus device utilizing the Nexus Proxy",
        };
        println!(
            "{:<22} {:>6}  {} — {}",
            system.name(),
            ranks.len(),
            layout,
            device
        );
    }
}
