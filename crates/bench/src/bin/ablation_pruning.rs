//! Ablation: why the paper normalized to *no pruning*.
//!
//! "When solving the knapsack problem using branch-and-bound algorithm,
//! the execution time is heavily affected by the characteristics of
//! input data. In order to evaluate the performance characteristics of
//! the cluster system clear and normalize the problem, we used such
//! data as no branches were pruned."
//!
//! This study quantifies that variance across the Martello & Toth
//! instance classes (the paper's reference [10]): traversed-node counts
//! with the bound test on, over several seeds per class — exactly the
//! irregularity that would have confounded a scheduling measurement.

use knapsack::{seq_solve, Instance, SolveMode};

fn stats_for(make: impl Fn(u64) -> Instance, seeds: std::ops::Range<u64>) -> (u64, u64, f64, f64) {
    let mut counts = Vec::new();
    let mut prune_frac = Vec::new();
    for seed in seeds {
        let inst = make(seed).sorted_by_ratio();
        let (_, c) = seq_solve(&inst, SolveMode::Prune { sorted: true });
        counts.push(c.traversed);
        prune_frac.push(c.pruned as f64 / c.traversed.max(1) as f64);
    }
    let (mn, mx) = (
        counts.iter().copied().min().unwrap_or_default(),
        counts.iter().copied().max().unwrap_or_default(),
    );
    let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    let pf = prune_frac.iter().sum::<f64>() / prune_frac.len() as f64;
    (mn, mx, avg, pf)
}

fn main() {
    let n = 30usize;
    let r = 1000u64;
    let seeds = 0u64..12;
    println!("Ablation: instance-class variance under branch-and-bound");
    println!(
        "(n = {n}, coefficients up to {r}, {} seeds per class)\n",
        seeds.clone().count()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "class", "min nodes", "max nodes", "avg nodes", "max/min", "pruned"
    );
    type ClassGen = Box<dyn Fn(u64) -> Instance>;
    let classes: Vec<(&str, ClassGen)> = vec![
        (
            "uncorrelated",
            Box::new(move |s| Instance::uncorrelated(n, r, s)),
        ),
        (
            "weakly correlated",
            Box::new(move |s| Instance::weakly_correlated(n, r, s)),
        ),
        (
            "strongly correlated",
            Box::new(move |s| Instance::strongly_correlated(n, r, s)),
        ),
    ];
    for (name, make) in classes {
        let (mn, mx, avg, pf) = stats_for(make, seeds.clone());
        println!(
            "{:<22} {:>12} {:>12} {:>12.0} {:>9.1} {:>8.1}%",
            name,
            mn,
            mx,
            avg,
            mx as f64 / mn.max(1) as f64,
            pf * 100.0
        );
    }
    let full = Instance::full_tree_nodes(n);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "no-pruning (paper)", full, full, full, "1.0", "0.0%"
    );
    println!(
        "\nThe normalized instance is the only class with deterministic work —
the paper's prerequisite for measuring the *cluster*, not the *bound*."
    );
}
