//! Regenerate the paper's parameter tuning: "We varied a stealunit,
//! interval, and backunit and took the best combination."
//!
//! For each (interval, steal_unit) pair, run the wide-area cluster
//! with and without the proxy; report speedups and the proxy
//! overhead. The sweep exposes the grain trade-off: finer scheduling
//! improves direct-mode balance but multiplies relay traffic.
//!
//! Usage: `ablation_sweep [--items N]` (default 24 to keep the sweep
//! affordable; the calibrated winner at the Table-4 size is
//! `wacs_core::calibration::best_params`).

use knapsack::ParParams;
use wacs_bench::arg_usize;
use wacs_core::{run_knapsack, sequential_baseline, KnapsackRun, System};

fn main() {
    let items = arg_usize("--items", 24);
    let seq = sequential_baseline(items).elapsed_secs;
    println!("Ablation: interval × stealunit sweep (wide-area, n = {items})\n");
    println!(
        "{:>8} {:>6} | {:>10} {:>8} | {:>10} {:>8} | {:>9} {:>7}",
        "interval", "steal", "proxy t(s)", "speedup", "direct(s)", "speedup", "overhead", "steals"
    );
    let mut best: Option<(f64, u32, u32)> = None;
    for interval in [512u32, 1024, 2048, 4096, 8192, 16384] {
        for steal_unit in [4u32, 8, 32] {
            let params = ParParams {
                interval,
                steal_unit,
                ..ParParams::default()
            };
            let mut cfg = KnapsackRun::paper_default(System::WideArea, items);
            cfg.params = params;
            let with = run_knapsack(&cfg);
            let mut no = cfg.clone();
            no.use_proxy = false;
            let without = run_knapsack(&no);
            let overhead =
                100.0 * (with.elapsed_secs - without.elapsed_secs) / without.elapsed_secs;
            println!(
                "{:>8} {:>6} | {:>10.1} {:>8.2} | {:>10.1} {:>8.2} | {:>8.1}% {:>7}",
                interval,
                steal_unit,
                with.elapsed_secs,
                seq / with.elapsed_secs,
                without.elapsed_secs,
                seq / without.elapsed_secs,
                overhead,
                with.master().map_or(0, |m| m.steals)
            );
            if best.is_none_or(|(t, _, _)| with.elapsed_secs < t) {
                best = Some((with.elapsed_secs, interval, steal_unit));
            }
        }
    }
    if let Some((t, interval, steal)) = best {
        println!(
            "\nbest combination (proxied): interval = {interval}, stealunit = {steal} ({t:.1} s)"
        );
    }
}
