//! Ablation: fault rate vs. knapsack completion time.
//!
//! The paper measured a healthy testbed: no link loss, no proxy
//! restarts. This study re-runs the wide-area knapsack under the
//! fault-injection layer — a fixed outer-proxy crash/restart halfway
//! through the clean run plus a sweep of WAN chunk-drop rates — and
//! reports how completion time degrades as the retry/backoff stack
//! absorbs the faults. The optimum is asserted on every run: faults
//! may slow the system down, but they must never corrupt the answer.

use netsim::prelude::*;
use wacs_core::calibration as cal;
use wacs_core::experiments::{run_knapsack, run_knapsack_with_faults, FaultConfig, KnapsackRun};
use wacs_core::testbed::System;

fn main() {
    let cfg = KnapsackRun::paper_default(System::WideArea, cal::QUICK_ITEMS);
    let clean = run_knapsack(&cfg);
    let optimum = knapsack::Instance::no_pruning(cfg.items).total_profit();
    assert_eq!(clean.best, optimum, "clean run must find the optimum");
    // Crash the outer proxy halfway through the fault-free schedule —
    // deep enough that every rank has bound and is mid-workload.
    let crash_at = SimDuration::from_secs_f64(clean.elapsed_secs / 2.0);

    println!("Ablation: WAN fault rate vs wide-area knapsack completion");
    println!(
        "({} items, outer proxy crashed at {:.2}s virtual, restarted 250ms later)\n",
        cfg.items,
        crash_at.as_secs_f64()
    );
    println!(
        "{:>9} | {:>10} {:>9} | {:>8} {:>11} {:>10}",
        "WAN drop", "completion", "slowdown", "dropped", "retransmits", "nx retries"
    );
    for rate in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let faults = FaultConfig {
            wan_drop: rate,
            outer_crash_at: Some(crash_at),
            ..FaultConfig::default()
        };
        let fr = run_knapsack_with_faults(&cfg, &faults);
        assert_eq!(fr.result.best, optimum, "faulted run must find the optimum");
        assert_eq!(
            (fr.actor_crashes, fr.actor_restarts),
            (1, 1),
            "the planned crash/restart must have happened"
        );
        println!(
            "{:>8.1}% | {:>9.2}s {:>8.2}x | {:>8} {:>11} {:>10}",
            rate * 100.0,
            fr.result.elapsed_secs,
            fr.result.elapsed_secs / clean.elapsed_secs,
            fr.chunks_dropped,
            fr.retransmits,
            fr.nx_retries
        );
    }
    println!("\nEvery run recovers the exact optimum: the retry/backoff layer trades");
    println!("time for faults without ever trading away correctness.");
}
