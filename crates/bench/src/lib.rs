//! `wacs-bench` — shared helpers for the table-regeneration binaries.
//!
//! Each binary regenerates one table or figure of the paper:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table2` | latency/bandwidth, direct vs indirect |
//! | `table3` | the four experimental systems |
//! | `table4` | knapsack execution time + speedup (and proxy overhead) |
//! | `table5` | steal counts (master + per-cluster max/min/avg) |
//! | `table6` | traversed nodes (master + per-cluster max/min/avg) |
//! | `figures` | Figs. 1-5 as validated textual renderings |
//! | `ablation_sweep` | the paper's interval/stealunit/backunit tuning |
//! | `ablation_portrange` | proxy vs `TCP_MIN/MAX_PORT` exposure trade |
//! | `ablation_relay` | Table 2 sensitivity to the relay cost model |

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use knapsack::RunResult;

pub mod harness;

/// Pretty-print a bytes/second figure the way the paper does
/// (KB/sec or MB/sec).
pub fn fmt_bw(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1.0e6 {
        format!("{:.2} MB/sec", bytes_per_sec / 1.0e6)
    } else {
        format!("{:.1} KB/sec", bytes_per_sec / 1.0e3)
    }
}

/// Pretty-print milliseconds.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{ms:.2} msec")
    } else {
        format!("{ms:.1} msec")
    }
}

/// Render one Table 5/6-style row: master value + per-group
/// max/min/avg.
pub fn group_row(
    rr: &RunResult,
    groups: &[&str],
    metric: impl Fn(&knapsack::RankStats) -> u64 + Copy,
) -> String {
    let mut row = String::new();
    let master = rr.master().map_or(0, metric);
    row.push_str(&format!("{master:>10} "));
    for g in groups {
        match rr.group_summary(g, metric) {
            Some(s) => row.push_str(&format!("{:>10} {:>10} {:>10.1} ", s.max, s.min, s.avg)),
            None => row.push_str(&format!("{:>10} {:>10} {:>10} ", "-", "-", "-")),
        }
    }
    row
}

/// Parse `--items N` style overrides from argv (shared by the
/// knapsack binaries so CI can run them small).
pub fn arg_usize(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_formatting_matches_paper_units() {
        assert_eq!(fmt_bw(6.32e6), "6.32 MB/sec");
        assert_eq!(fmt_bw(70.5e3), "70.5 KB/sec");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(0.41), "0.41 msec");
        assert_eq!(fmt_ms(25.0), "25.0 msec");
    }

    #[test]
    fn arg_default_when_absent() {
        assert_eq!(arg_usize("--definitely-not-passed", 22), 22);
    }
}
