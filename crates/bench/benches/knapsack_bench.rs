//! Benches of the workload: sequential branch-and-bound throughput
//! (nodes/second — the quantity the CPU calibration constants are
//! denominated in), DP verification cost, and a full small simulated
//! parallel run.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use knapsack::{seq_solve, Instance, SolveMode};
use wacs_bench::harness::{black_box, Harness, Throughput};
use wacs_core::{run_knapsack, KnapsackRun, System};

fn main() {
    let mut h = Harness::from_env();

    let inst = Instance::no_pruning(18);
    let nodes = Instance::full_tree_nodes(18);
    let pruned = Instance::uncorrelated(28, 100, 7).sorted_by_ratio();
    {
        let mut g = h.group("seq-branch-and-bound");
        g.throughput(Throughput::Elements(nodes));
        g.run("no-pruning-n18", || {
            black_box(seq_solve(&inst, SolveMode::Exhaustive));
        });
        g.run("pruned-uncorrelated-n28", || {
            black_box(seq_solve(&pruned, SolveMode::Prune { sorted: true }));
        });
    }

    let dp_inst = Instance::uncorrelated(100, 500, 3);
    h.bench("dp-n100-r500", || {
        black_box(knapsack::dp::solve(&dp_inst));
    });

    let mut g = h.group("simulated-cluster");
    g.sample_size(10);
    g.run("wide-area-n16-proxied", || {
        black_box(run_knapsack(&KnapsackRun::paper_default(
            System::WideArea,
            16,
        )));
    });
}
