//! Criterion benches of the workload: sequential branch-and-bound
//! throughput (nodes/second — the quantity the CPU calibration
//! constants are denominated in), DP verification cost, and a full
//! small simulated parallel run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use knapsack::{seq_solve, Instance, SolveMode};
use wacs_core::{run_knapsack, KnapsackRun, System};

fn bench_seq(c: &mut Criterion) {
    let inst = Instance::no_pruning(18);
    let nodes = Instance::full_tree_nodes(18);
    let mut g = c.benchmark_group("seq-branch-and-bound");
    g.throughput(Throughput::Elements(nodes));
    g.bench_function("no-pruning-n18", |b| {
        b.iter(|| seq_solve(&inst, SolveMode::Exhaustive))
    });
    let pruned = Instance::uncorrelated(28, 100, 7).sorted_by_ratio();
    g.bench_function("pruned-uncorrelated-n28", |b| {
        b.iter(|| seq_solve(&pruned, SolveMode::Prune { sorted: true }))
    });
    g.finish();
}

fn bench_dp(c: &mut Criterion) {
    let inst = Instance::uncorrelated(100, 500, 3);
    c.bench_function("dp-n100-r500", |b| b.iter(|| knapsack::dp::solve(&inst)));
}

fn bench_simulated_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated-cluster");
    g.sample_size(10);
    g.bench_function("wide-area-n16-proxied", |b| {
        b.iter(|| run_knapsack(&KnapsackRun::paper_default(System::WideArea, 16)))
    });
    g.finish();
}

criterion_group!(benches, bench_seq, bench_dp, bench_simulated_cluster);
criterion_main!(benches);
