//! Benches of the *real-socket* Nexus Proxy on the guarded loopback
//! network: connection setup and relay round trips, direct vs
//! active-open relay vs passive rendezvous relay — the real-hardware
//! analogue of Table 2 (absolute numbers reflect this machine, the
//! *ordering* reflects the paper).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use nexus_proxy::{
    nx_proxy_bind, nx_proxy_connect, InnerConfig, InnerServer, OuterConfig, OuterServer, ProxyEnv,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use wacs_bench::harness::{black_box, Harness, Throughput};

struct World {
    net: VNet,
    _outer: OuterServer,
    _inner: InnerServer,
}

fn world() -> World {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", None);
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )
    .unwrap();
    World {
        net,
        _outer: outer,
        _inner: inner,
    }
}

/// Echo server on a plain listener; returns its logical port.
fn spawn_echo(net: &VNet, host: &str) -> u16 {
    let l = net.bind(host, 0).unwrap();
    let port = l.logical_port();
    std::thread::spawn(move || loop {
        let Ok((mut s, _)) = l.accept() else { break };
        std::thread::spawn(move || {
            let mut buf = [0u8; 65536];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
    });
    port
}

fn roundtrip(s: &mut TcpStream, payload: &[u8], scratch: &mut [u8]) {
    s.write_all(payload).unwrap();
    s.read_exact(&mut scratch[..payload.len()]).unwrap();
}

fn bench_roundtrips(h: &mut Harness) {
    let w = world();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let echo_port = spawn_echo(&w.net, "etl-sun");

    // Direct path (outbound through the firewall is allowed).
    let mut direct = w.net.dial("rwcp-sun", "etl-sun", echo_port).unwrap();
    direct.set_nodelay(true).unwrap();
    // Active-open relay: one pump (outer).
    let mut active = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", echo_port)).unwrap();
    active.set_nodelay(true).unwrap();
    // Passive rendezvous relay: two pumps (outer + inner). The echo
    // lives inside; the peer dials the rendezvous.
    let listener = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
    let adv = listener.advertised.clone();
    std::thread::spawn(move || {
        let Ok(mut s) = listener.accept() else { return };
        let mut buf = [0u8; 65536];
        loop {
            match s.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if s.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
    });
    let mut passive = w.net.dial("etl-sun", &adv.0, adv.1).unwrap();
    passive.set_nodelay(true).unwrap();

    let mut scratch = vec![0u8; 1 << 20];
    for size in [64usize, 4096, 65536] {
        let payload = vec![0xA5u8; size];
        let mut g = h.group(&format!("roundtrip/{size}B"));
        g.sample_size(40);
        g.throughput(Throughput::Bytes(2 * size as u64));
        g.run("direct", || roundtrip(&mut direct, &payload, &mut scratch));
        g.run("proxy-active", || {
            roundtrip(&mut active, &payload, &mut scratch);
        });
        g.run("proxy-passive", || {
            roundtrip(&mut passive, &payload, &mut scratch);
        });
    }
}

fn bench_connect_setup(h: &mut Harness) {
    let w = world();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let echo_port = spawn_echo(&w.net, "etl-sun");
    let mut g = h.group("connect-setup");
    g.sample_size(30);
    g.run("direct", || {
        black_box(w.net.dial("rwcp-sun", "etl-sun", echo_port).unwrap());
    });
    g.run("via-outer", || {
        black_box(nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", echo_port)).unwrap());
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_roundtrips(&mut h);
    bench_connect_setup(&mut h);
}
