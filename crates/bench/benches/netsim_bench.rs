//! Criterion benches of the discrete-event engine itself: event
//! throughput for messaging workloads and the full Table 2 cell
//! measurement (one complete calibrated sim per iteration).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::prelude::*;
use wacs_core::{pingpong, Mode, Pair};

/// Two actors flooding messages back and forth for a fixed number of
/// rounds — a raw engine-throughput workload.
struct Flood {
    peer_port: u16,
    rounds: u32,
    left: u32,
    flow: Option<FlowId>,
}

impl Actor for Flood {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.rounds > 0 {
            ctx.connect((NodeId(1), self.peer_port), 0);
        } else {
            ctx.listen(self.peer_port).unwrap();
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        if let FlowEvent::Connected { flow, .. } = ev {
            self.flow = Some(flow);
            ctx.send(flow, 64, ()).unwrap();
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        if self.rounds > 0 {
            // driver side
            self.left -= 1;
            if self.left == 0 {
                ctx.stop_simulation();
                return;
            }
            let _ = ctx.send(self.flow.unwrap(), 64, ());
        } else {
            let _ = ctx.send_boxed(msg.flow, 64, msg.payload);
        }
    }
}

fn flood_once(rounds: u32) -> u64 {
    let mut topo = Topology::new();
    let site = topo.add_site("lab", None);
    let a = topo.add_host("a", site);
    let b = topo.add_host("b", site);
    topo.add_link(a, b, SimDuration::from_micros(50), 10e6);
    let mut sim = Simulator::new(topo, NetConfig::default(), 1);
    sim.spawn(
        a,
        Box::new(Flood {
            peer_port: 9,
            rounds,
            left: rounds,
            flow: None,
        }),
    );
    sim.spawn(
        b,
        Box::new(Flood {
            peer_port: 9,
            rounds: 0,
            left: 0,
            flow: None,
        }),
    );
    sim.run();
    sim.stats().events_processed
}

fn bench_engine(c: &mut Criterion) {
    let events = flood_once(1000);
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(events));
    g.bench_function("pingpong-1000-rounds", |b| {
        b.iter(|| flood_once(1000));
    });
    g.finish();
}

fn bench_table2_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2-cell");
    g.sample_size(10);
    g.bench_function("lan-direct-4k", |b| {
        b.iter(|| pingpong(Pair::RwcpSunCompas, Mode::Direct, 4096))
    });
    g.bench_function("lan-indirect-4k", |b| {
        b.iter(|| pingpong(Pair::RwcpSunCompas, Mode::Indirect, 4096))
    });
    g.bench_function("wan-indirect-1m", |b| {
        b.iter(|| pingpong(Pair::RwcpSunEtlSun, Mode::Indirect, 1 << 20))
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_table2_cells);
criterion_main!(benches);
