//! Benches of the discrete-event engine itself: event throughput for
//! messaging workloads and the full Table 2 cell measurement (one
//! complete calibrated sim per iteration).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netsim::prelude::*;
use wacs_bench::harness::{black_box, Harness, Throughput};
use wacs_core::{pingpong, table2_report, Mode, Pair};

/// Two actors flooding messages back and forth for a fixed number of
/// rounds — a raw engine-throughput workload.
struct Flood {
    peer_port: u16,
    rounds: u32,
    left: u32,
    flow: Option<FlowId>,
}

impl Actor for Flood {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.rounds > 0 {
            ctx.connect((NodeId(1), self.peer_port), 0);
        } else {
            ctx.listen(self.peer_port).unwrap();
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        if let FlowEvent::Connected { flow, .. } = ev {
            self.flow = Some(flow);
            ctx.send(flow, 64, ()).unwrap();
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        if self.rounds > 0 {
            // driver side
            self.left -= 1;
            if self.left == 0 {
                ctx.stop_simulation();
                return;
            }
            let _ = ctx.send(self.flow.unwrap(), 64, ());
        } else {
            let _ = ctx.send_boxed(msg.flow, 64, msg.payload);
        }
    }
}

fn flood_once(rounds: u32) -> u64 {
    let mut topo = Topology::new();
    let site = topo.add_site("lab", None);
    let a = topo.add_host("a", site);
    let b = topo.add_host("b", site);
    topo.add_link(a, b, SimDuration::from_micros(50), 10e6);
    let mut sim = Simulator::new(topo, NetConfig::default(), 1);
    sim.spawn(
        a,
        Box::new(Flood {
            peer_port: 9,
            rounds,
            left: rounds,
            flow: None,
        }),
    );
    sim.spawn(
        b,
        Box::new(Flood {
            peer_port: 9,
            rounds: 0,
            left: 0,
            flow: None,
        }),
    );
    sim.run();
    sim.stats().events_processed
}

fn main() {
    let mut h = Harness::from_env();

    let events = flood_once(1000);
    {
        let mut g = h.group("engine");
        g.throughput(Throughput::Elements(events));
        g.run("pingpong-1000-rounds", || {
            black_box(flood_once(1000));
        });
    }

    let mut g = h.group("table2-cell");
    g.sample_size(10);
    g.run("lan-direct-4k", || {
        black_box(pingpong(Pair::RwcpSunCompas, Mode::Direct, 4096));
    });
    g.run("lan-indirect-4k", || {
        black_box(pingpong(Pair::RwcpSunCompas, Mode::Indirect, 4096));
    });
    g.run("wan-indirect-1m", || {
        black_box(pingpong(Pair::RwcpSunEtlSun, Mode::Indirect, 1 << 20));
    });
    drop(g);

    // Per-hop decomposition of every Table 2 cell, as one deterministic
    // JSON report (schema in EXPERIMENTS.md). The hop components of
    // each cell sum to its end-to-end latency, so the cell timings
    // above can be audited leg by leg.
    println!("\n{}", table2_report(1));
}
