//! Fault classes and the seeded, deterministic decision procedure.
//!
//! A [`ChaosProfile`] is a list of [`FaultRule`]s. Every time the
//! interposer wraps a connection it asks the profile to *decide* the
//! fault for that connection, keyed by `(leg, seq)` where `seq` is the
//! per-leg dial counter. The decision derives from a fresh [`SimRng`]
//! seeded by `mix(profile.seed, leg, seq)` — no shared mutable RNG —
//! so the plan for the N-th dial on a leg is a pure function of the
//! profile, immune to thread interleaving. That is what lets the
//! ci.sh determinism gate diff two same-seed runs byte-for-byte.

use netsim::SimRng;
use nexus_proxy::DialLeg;
use std::time::Duration;

/// The socket-fault classes the chaos layer injects (DESIGN.md §6f).
/// The first six are interposer faults on a wrapped stream; the last
/// two are orchestrator scenarios (process restarts), named here so
/// metric keys and bench cells share one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Abrupt mid-stream kill: both directions reset at a byte offset.
    Rst,
    /// Partial-write stall: forwarding pauses at a byte offset, then
    /// resumes — the half-written frame sits on the wire meanwhile.
    Stall,
    /// Byte-rate throttle: deadline-paced trickle forwarding.
    Throttle,
    /// Connect blackhole: the dial "succeeds" into a void — surfaced
    /// to the caller as a timed-out connect.
    Blackhole,
    /// Delayed FIN: EOF propagation is held back for a while.
    DelayedFin,
    /// Split/merged writes: payload re-segmented at RNG boundaries.
    SplitMerge,
    /// Rolling restart of the outer-shard fleet (orchestrator).
    RollingRestart,
    /// Inner-daemon kill + restart under live load (orchestrator).
    InnerRestart,
}

impl FaultClass {
    /// Stable lower-snake name (metric keys, bench cell names).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Rst => "rst",
            FaultClass::Stall => "stall",
            FaultClass::Throttle => "throttle",
            FaultClass::Blackhole => "blackhole",
            FaultClass::DelayedFin => "delayed_fin",
            FaultClass::SplitMerge => "split_merge",
            FaultClass::RollingRestart => "rolling_restart",
            FaultClass::InnerRestart => "inner_restart",
        }
    }

    /// The classes an interposer can inject on a wrapped stream.
    pub const INTERPOSED: &'static [FaultClass] = &[
        FaultClass::Rst,
        FaultClass::Stall,
        FaultClass::Throttle,
        FaultClass::Blackhole,
        FaultClass::DelayedFin,
        FaultClass::SplitMerge,
    ];

    /// Every class, interposer and orchestrator alike.
    pub const ALL: &'static [FaultClass] = &[
        FaultClass::Rst,
        FaultClass::Stall,
        FaultClass::Throttle,
        FaultClass::Blackhole,
        FaultClass::DelayedFin,
        FaultClass::SplitMerge,
        FaultClass::RollingRestart,
        FaultClass::InnerRestart,
    ];

    /// Does this class make the wrapped operation *fail* (so recovery
    /// is failure → next success), as opposed to merely degrading it?
    pub fn is_fatal(self) -> bool {
        matches!(self, FaultClass::Rst | FaultClass::Blackhole)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knob ranges for one rule; concrete values are drawn per connection
/// from the decision RNG.
#[derive(Debug, Clone, Copy)]
pub struct FaultParams {
    /// Inclusive byte-offset range in which a `Rst`/`Stall` triggers.
    pub cut_range: (u64, u64),
    /// Stall duration (`Stall`).
    pub stall: Duration,
    /// Forwarding rate in bytes/second (`Throttle`).
    pub rate: u64,
    /// EOF hold-back (`DelayedFin`).
    pub fin_delay: Duration,
    /// Max forwarded segment size (`SplitMerge` re-segmentation).
    pub max_seg: usize,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            cut_range: (512, 4096),
            stall: Duration::from_millis(60),
            rate: 256 * 1024,
            fin_delay: Duration::from_millis(40),
            max_seg: 7,
        }
    }
}

/// One deterministic trigger: connections `seq` on `leg` with
/// `seq % period == phase` get `class` faults with `params`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub leg: DialLeg,
    pub class: FaultClass,
    pub period: u64,
    pub phase: u64,
    pub params: FaultParams,
}

impl FaultRule {
    /// Fault every `period`-th connection on `leg`, starting with the
    /// first (`phase` 0), with default params.
    pub fn every(leg: DialLeg, class: FaultClass, period: u64) -> FaultRule {
        FaultRule {
            leg,
            class,
            period: period.max(1),
            phase: 0,
            params: FaultParams::default(),
        }
    }

    #[must_use]
    pub fn with_params(mut self, params: FaultParams) -> FaultRule {
        self.params = params;
        self
    }
}

/// The concrete plan for one wrapped connection, already drawn.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub class: FaultClass,
    /// Byte offset (per direction) where `Rst`/`Stall` trigger.
    pub cut_at: u64,
    pub stall: Duration,
    pub rate: u64,
    pub fin_delay: Duration,
    pub max_seg: usize,
    /// Seed for the per-direction segmentation RNG (`SplitMerge`).
    pub seg_seed: u64,
}

/// A seeded fault profile: the single source of chaos decisions.
#[derive(Debug, Clone, Default)]
pub struct ChaosProfile {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

/// Stable index of a leg for seed mixing.
fn leg_index(leg: DialLeg) -> u64 {
    DialLeg::ALL.iter().position(|l| *l == leg).unwrap_or(0) as u64
}

/// SplitMix64-style avalanche, so nearby `(leg, seq)` pairs land on
/// unrelated streams.
fn mix(seed: u64, leg: u64, seq: u64) -> u64 {
    let mut z =
        seed ^ leg.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seq.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosProfile {
    pub fn new(seed: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            rules: Vec::new(),
        }
    }

    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> ChaosProfile {
        self.rules.push(rule);
        self
    }

    /// Decide the fault plan for the `seq`-th dial on `leg`. `None`
    /// means the connection passes through clean. Pure: the same
    /// `(profile, leg, seq)` always yields the same plan.
    pub fn decide(&self, leg: DialLeg, seq: u64) -> Option<FaultPlan> {
        let rule = self
            .rules
            .iter()
            .find(|r| r.leg == leg && seq % r.period == r.phase % r.period)?;
        let mut rng = SimRng::seed_from_u64(mix(self.seed, leg_index(leg), seq));
        let (lo, hi) = rule.params.cut_range;
        let cut_at = rng.range_inclusive(lo.min(hi), hi.max(lo));
        Some(FaultPlan {
            class: rule.class,
            cut_at,
            stall: rule.params.stall,
            rate: rule.params.rate.max(1),
            fin_delay: rule.params.fin_delay,
            max_seg: rule.params.max_seg.max(1),
            seg_seed: rng.next_u64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_leg_and_seq() {
        let p = ChaosProfile::new(0xc0ffee).with_rule(FaultRule::every(
            DialLeg::ClientCtrl,
            FaultClass::Rst,
            2,
        ));
        for seq in 0..32 {
            let a = p
                .decide(DialLeg::ClientCtrl, seq)
                .map(|f| (f.cut_at, f.seg_seed));
            let b = p
                .decide(DialLeg::ClientCtrl, seq)
                .map(|f| (f.cut_at, f.seg_seed));
            assert_eq!(a, b);
            assert_eq!(a.is_some(), seq % 2 == 0);
        }
        assert!(p.decide(DialLeg::Heartbeat, 0).is_none());
    }

    #[test]
    fn different_seeds_draw_different_cut_offsets() {
        let mk = |seed| {
            ChaosProfile::new(seed).with_rule(FaultRule::every(
                DialLeg::ClientData,
                FaultClass::Stall,
                1,
            ))
        };
        let cuts: Vec<u64> = (0..4u64)
            .map(|s| mk(s).decide(DialLeg::ClientData, 0).unwrap().cut_at)
            .collect();
        let mut uniq = cuts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 1, "cut offsets did not vary: {cuts:?}");
    }

    #[test]
    fn class_names_are_stable_and_distinct() {
        let mut names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultClass::ALL.len());
        assert!(FaultClass::Rst.is_fatal() && FaultClass::Blackhole.is_fatal());
        assert!(!FaultClass::Throttle.is_fatal());
    }
}
