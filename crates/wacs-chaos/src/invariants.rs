//! Post-recovery invariant checkers.
//!
//! A chaos cell does not merely need to *finish*; after recovery the
//! stack must be indistinguishable from one that never saw a fault:
//!
//! * every payload that completed did so **byte-exact** (checked via
//!   FNV-64 checksums so the drill registry can carry the digest);
//! * relay and admission accounting on every outer daemon returns to
//!   **zero** — no leaked relay slots, no stuck admission permits;
//! * observed `ShardMap` generations are **monotone** (tracked with
//!   `nexus_proxy::GenerationWitness`).
//!
//! Verdicts are tallied in the drill registry (`wacs.chaos.invariant.*`)
//! and kept as human-readable violation strings for bench reporting.

use crate::interpose::pace_until;
use nexus_proxy::{GenerationWitness, OuterServer};
use std::time::{Duration, Instant};
use wacs_obs::{Counter, Registry};
use wacs_sync::Mutex;

/// FNV-1a 64-bit: tiny, dependency-free, stable across runs — the
/// digest the drill registry records for payload byte-exactness.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Poll until `outer` has zero active relays *and* zero held admission
/// permits, or the deadline passes. Returns `true` on quiescence.
pub fn wait_quiesced(outer: &OuterServer, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if outer.active_relays() == 0 && outer.admission_active() == 0 {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        pace_until(Instant::now() + Duration::from_millis(2));
    }
}

/// Accumulates invariant verdicts across a chaos run.
pub struct InvariantLedger {
    checks: Counter,
    violations: Counter,
    detail: Mutex<Vec<String>>,
}

impl InvariantLedger {
    /// Register the verdict counters in `registry` (the drill
    /// registry; verdict counts are deterministic for a fixed suite).
    pub fn in_registry(registry: &Registry) -> InvariantLedger {
        InvariantLedger {
            checks: registry.counter("wacs.chaos.invariant.checks"),
            violations: registry.counter("wacs.chaos.invariant.violations"),
            detail: Mutex::new(Vec::new()),
        }
    }

    fn verdict(&self, ok: bool, what: impl FnOnce() -> String) -> bool {
        self.checks.inc();
        if !ok {
            self.violations.inc();
            self.detail.lock().push(what());
        }
        ok
    }

    /// Byte-exact payload check via FNV-64 digests.
    pub fn check_payload(&self, label: &str, expected: &[u8], got: &[u8]) -> bool {
        let ok = expected.len() == got.len() && fnv64(expected) == fnv64(got);
        self.verdict(ok, || {
            format!(
                "{label}: payload mismatch (expected {} bytes fnv {:#x}, got {} bytes fnv {:#x})",
                expected.len(),
                fnv64(expected),
                got.len(),
                fnv64(got)
            )
        })
    }

    /// Relay + admission accounting back to zero on `outer`.
    pub fn check_quiesced(&self, label: &str, outer: &OuterServer, timeout: Duration) -> bool {
        let ok = wait_quiesced(outer, timeout);
        self.verdict(ok, || {
            format!(
                "{label}: outer not quiesced (active_relays={}, admission_active={})",
                outer.active_relays(),
                outer.admission_active()
            )
        })
    }

    /// No generation regressions observed by `witness`.
    pub fn check_generations(&self, label: &str, witness: &GenerationWitness) -> bool {
        let ok = witness.regressions() == 0;
        self.verdict(ok, || {
            format!(
                "{label}: {} generation regression(s), high water {}",
                witness.regressions(),
                witness.high_water()
            )
        })
    }

    /// Record an arbitrary named condition.
    pub fn check(&self, label: &str, ok: bool) -> bool {
        self.verdict(ok, || format!("{label}: condition violated"))
    }

    pub fn checks(&self) -> u64 {
        self.checks.get()
    }

    pub fn violations(&self) -> Vec<String> {
        self.detail.lock().clone()
    }

    pub fn ok(&self) -> bool {
        self.detail.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
        assert_eq!(fnv64(b"wacs"), fnv64(b"wacs"));
    }

    #[test]
    fn ledger_tallies_checks_and_violations() {
        let reg = Registry::new();
        let ledger = InvariantLedger::in_registry(&reg);
        assert!(ledger.check_payload("a", b"xy", b"xy"));
        assert!(!ledger.check_payload("b", b"xy", b"xz"));
        assert!(ledger.check("c", true));
        assert_eq!(ledger.checks(), 3);
        assert!(!ledger.ok());
        let v = ledger.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("b:"), "{v:?}");
    }

    #[test]
    fn generation_witness_checks_flow_through() {
        let reg = Registry::new();
        let ledger = InvariantLedger::in_registry(&reg);
        let w = GenerationWitness::new();
        assert!(w.observe(3));
        assert!(ledger.check_generations("fleet", &w));
        assert!(!w.observe(2));
        assert!(!ledger.check_generations("fleet", &w));
    }
}
