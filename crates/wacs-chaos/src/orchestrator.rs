//! Chaos scenario orchestration over the real socket stack.
//!
//! A [`ChaosSuite`] runs one *cell* per [`FaultClass`]:
//!
//! * the six interposer classes drive echo round-trips through a real
//!   firewalled world (client inside the policy site, outer server in
//!   the DMZ, sink outside) with a [`ChaosInterposer`] on the client's
//!   control leg;
//! * `rolling_restart` restarts every shard of a 2-member outer fleet
//!   mid-striped-transfer (lanes throttled through the interposer so
//!   the transfer straddles the restarts);
//! * `inner_restart` kills and restarts the inner daemon under live
//!   passive-relay load.
//!
//! Recovery-time objectives land in the **timing** registry as
//! `wacs.chaos.recovery_ns.<class>` histograms. Per class:
//!
//! * fatal faults (`rst`, `blackhole`): first failed op → next
//!   successful op;
//! * degraded faults (`stall`, `throttle`, `delayed_fin`,
//!   `split_merge`): duration of the faulted op itself;
//! * restarts: daemon kill → first successful op through the restarted
//!   daemon.
//!
//! Decision-side facts (op counts, fault schedules, invariant
//! verdicts) land in the **drill** registry, which is byte-identical
//! across same-seed runs — the property ci.sh's determinism gate
//! checks. Restart cells register their interposer in the timing
//! registry instead: their retry counts depend on real failover
//! timing and must not pollute the deterministic snapshot.

use crate::interpose::{pace_until, ChaosInterposer};
use crate::invariants::{fnv64, InvariantLedger};
use crate::profile::{ChaosProfile, FaultClass, FaultParams, FaultRule};
use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use netsim::SimRng;
use nexus_proxy::{
    interposed_lane_dial, nx_proxy_bind, nx_proxy_connect, send_striped, BreakerConfig, DialLeg,
    FleetRouter, GenerationWitness, InnerConfig, InnerServer, OuterConfig, OuterServer, ProxyEnv,
    StripePlan, StripeReceiver,
};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use wacs_obs::{Counter, Histogram, Registry, RegistrySnapshot};

const SINK_PORT: u16 = 7341;
const PROBE_PORT: u16 = 7342;
const PROBE_LEN: usize = 1024;
const FLEET_HOSTS: [&str; 2] = ["rwcp-outer-a", "rwcp-outer-b"];

/// Suite knobs; `smoke` scales everything down for CI.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    pub seed: u64,
    /// Successful echo ops per interposer cell.
    pub ops: u64,
    /// Echo payload bytes per op.
    pub payload: usize,
    /// Total striped-transfer bytes (rolling-restart cell).
    pub stripe_payload: usize,
    /// Per-lane throttle rate, bytes/s (keeps the transfer straddling
    /// the restarts).
    pub lane_rate: u64,
    pub smoke: bool,
}

impl SuiteConfig {
    pub fn smoke(seed: u64) -> SuiteConfig {
        SuiteConfig {
            seed,
            ops: 4,
            payload: 8 * 1024,
            stripe_payload: 192 * 1024,
            lane_rate: 256 * 1024,
            smoke: true,
        }
    }

    pub fn full(seed: u64) -> SuiteConfig {
        SuiteConfig {
            seed,
            ops: 8,
            payload: 16 * 1024,
            stripe_payload: 768 * 1024,
            lane_rate: 256 * 1024,
            smoke: false,
        }
    }
}

/// What one chaos cell did and how the stack fared.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    pub class: FaultClass,
    /// Successful operations (echo round-trips / transfers / probes).
    pub ops: u64,
    /// Total attempts including faulted failures.
    pub attempts: u64,
    /// Faults scheduled by the profile (or restarts performed).
    pub faults: u64,
    /// Recoveries measured into the RTO histogram.
    pub recoveries: u64,
    /// Payload bytes moved end to end (both directions).
    pub bytes: u64,
    pub payload_ok: bool,
    pub leaked_relays: u64,
    pub leaked_admission: u64,
    pub completed: bool,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

impl CellOutcome {
    fn failed(class: FaultClass) -> CellOutcome {
        CellOutcome {
            class,
            ops: 0,
            attempts: 0,
            faults: 0,
            recoveries: 0,
            bytes: 0,
            payload_ok: false,
            leaked_relays: 0,
            leaked_admission: 0,
            completed: false,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        }
    }
}

/// Deterministic per-cell payload.
fn payload_for(seed: u64, class: FaultClass, len: usize) -> Vec<u8> {
    let mut rng = SimRng::seed_from_u64(seed ^ fnv64(class.name().as_bytes()));
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Record the wall-clock nanoseconds since `since` into `hist`.
fn record_elapsed(hist: &Histogram, since: Instant) {
    hist.record(u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX));
}

/// Poll `cond` until true or `timeout` passes.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        pace_until(Instant::now() + Duration::from_millis(2));
    }
}

/// The single-outer firewalled world every interposer cell runs in.
fn real_world() -> VNet {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    net
}

/// The 2-shard fleet world for the rolling-restart cell.
fn fleet_world() -> VNet {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    for h in FLEET_HOSTS {
        net.add_host(h, dmz);
    }
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    net
}

fn fleet_members() -> Vec<(String, u16)> {
    FLEET_HOSTS
        .iter()
        .map(|h| ((*h).to_string(), OUTER_PORT))
        .collect()
}

/// Fixed-length echo sink outside the firewall: each connection reads
/// exactly `len` bytes and writes them back.
fn start_echo_sink(net: &VNet, host: &str, port: u16, len: usize) -> io::Result<()> {
    let l = net.bind(host, port)?;
    thread::spawn(move || {
        while let Ok((mut s, _)) = l.accept() {
            thread::spawn(move || {
                let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                let mut buf = vec![0u8; len];
                if s.read_exact(&mut buf).is_ok() {
                    let _ = s.write_all(&buf);
                }
            });
        }
    });
    Ok(())
}

/// One echo round-trip through the proxy path.
fn echo_op(
    net: &VNet,
    env: &ProxyEnv,
    from: &str,
    dst: (&str, u16),
    payload: &[u8],
) -> io::Result<Vec<u8>> {
    let mut s = nx_proxy_connect(net, env, from, dst)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    s.write_all(payload)?;
    let mut buf = vec![0u8; payload.len()];
    s.read_exact(&mut buf)?;
    Ok(buf)
}

/// The chaos scenario runner. Holds the two registries and the
/// invariant ledger; each `run_cell` builds its own isolated world.
pub struct ChaosSuite {
    cfg: SuiteConfig,
    drill: Registry,
    timing: Registry,
    ledger: InvariantLedger,
    ops_counter: Counter,
    restarts_counter: Counter,
}

impl ChaosSuite {
    pub fn new(cfg: SuiteConfig) -> ChaosSuite {
        let drill = Registry::new();
        let timing = Registry::new();
        let ledger = InvariantLedger::in_registry(&drill);
        let ops_counter = drill.counter("wacs.chaos.ops");
        let restarts_counter = drill.counter("wacs.chaos.restarts");
        ChaosSuite {
            cfg,
            drill,
            timing,
            ledger,
            ops_counter,
            restarts_counter,
        }
    }

    pub fn config(&self) -> SuiteConfig {
        self.cfg
    }

    /// The deterministic decision/verdict snapshot (the one ci.sh
    /// diffs byte-for-byte across same-seed runs).
    pub fn drill_snapshot(&self) -> RegistrySnapshot {
        self.drill.snapshot()
    }

    /// Wall-clock recovery measurements (feeds bench percentiles).
    pub fn timing_snapshot(&self) -> RegistrySnapshot {
        self.timing.snapshot()
    }

    pub fn ledger(&self) -> &InvariantLedger {
        &self.ledger
    }

    fn rto_histogram(&self, class: FaultClass) -> Histogram {
        self.timing
            .histogram(&format!("wacs.chaos.recovery_ns.{}", class.name()))
    }

    /// Run every cell, [`FaultClass::ALL`] order.
    pub fn run_all(&self) -> Vec<CellOutcome> {
        FaultClass::ALL.iter().map(|c| self.run_cell(*c)).collect()
    }

    pub fn run_cell(&self, class: FaultClass) -> CellOutcome {
        let res = match class {
            FaultClass::RollingRestart => self.rolling_restart_cell(),
            FaultClass::InnerRestart => self.inner_restart_cell(),
            _ => self.interposed_cell(class),
        };
        match res {
            Ok(cell) => cell,
            Err(e) => {
                self.ledger
                    .check(&format!("{class} cell aborted: {e}"), false);
                CellOutcome::failed(class)
            }
        }
    }

    fn finish(
        &self,
        class: FaultClass,
        mut cell: CellOutcome,
        outers: &[&OuterServer],
    ) -> CellOutcome {
        for outer in outers {
            self.ledger
                .check_quiesced(class.name(), outer, Duration::from_secs(5));
            cell.leaked_relays += outer.active_relays() as u64;
            cell.leaked_admission += u64::from(outer.admission_active());
        }
        let hist = self.rto_histogram(class);
        cell.p50_ns = hist.quantile(0.50).unwrap_or(0);
        cell.p95_ns = hist.quantile(0.95).unwrap_or(0);
        cell.p99_ns = hist.quantile(0.99).unwrap_or(0);
        cell
    }

    /// One cell for an interposer fault class: every other dial on the
    /// client control leg is faulted (`period` 2), the rest pass clean.
    fn interposed_cell(&self, class: FaultClass) -> io::Result<CellOutcome> {
        let net = real_world();
        let outer = OuterServer::start(net.clone(), OuterConfig::new("rwcp-outer"))?;
        let payload = payload_for(self.cfg.seed, class, self.cfg.payload);
        start_echo_sink(&net, "etl-sun", SINK_PORT, payload.len())?;

        let params = FaultParams {
            cut_range: (512, (self.cfg.payload as u64 / 2).max(1024)),
            stall: Duration::from_millis(50),
            rate: (self.cfg.payload as u64 * 6).max(64 * 1024),
            fin_delay: Duration::from_millis(40),
            max_seg: 7,
        };
        let profile = ChaosProfile::new(self.cfg.seed)
            .with_rule(FaultRule::every(DialLeg::ClientCtrl, class, 2).with_params(params));
        let interposer = ChaosInterposer::new(profile.clone(), &self.drill);
        let env = ProxyEnv::via("rwcp-outer", OUTER_PORT).with_dial_hook(interposer.hook());
        let hist = self.rto_histogram(class);

        let mut cell = CellOutcome::failed(class);
        let mut fail_started: Option<Instant> = None;
        let mut payload_ok = true;
        let max_attempts = self.cfg.ops * 6;
        while cell.ops < self.cfg.ops && cell.attempts < max_attempts {
            let seq = cell.attempts;
            cell.attempts += 1;
            let faulted = profile.decide(DialLeg::ClientCtrl, seq).is_some();
            let t0 = Instant::now();
            match echo_op(&net, &env, "rwcp-sun", ("etl-sun", SINK_PORT), &payload) {
                Ok(got) => {
                    cell.ops += 1;
                    cell.bytes += 2 * payload.len() as u64;
                    payload_ok &= self.ledger.check_payload(class.name(), &payload, &got);
                    self.ops_counter.inc();
                    if let Some(f0) = fail_started.take() {
                        record_elapsed(&hist, f0);
                        cell.recoveries += 1;
                    } else if faulted {
                        // Degraded op: the RTO is the op's own duration.
                        record_elapsed(&hist, t0);
                        cell.recoveries += 1;
                    }
                }
                Err(_) => {
                    if fail_started.is_none() {
                        fail_started = Some(t0);
                    }
                }
            }
        }
        cell.faults = (0..cell.attempts)
            .filter(|s| profile.decide(DialLeg::ClientCtrl, *s).is_some())
            .count() as u64;
        cell.payload_ok = payload_ok;
        cell.completed = cell.ops == self.cfg.ops;
        self.ledger
            .check(&format!("{class} cell completed all ops"), cell.completed);
        Ok(self.finish(class, cell, &[&outer]))
    }

    /// Rolling restart of the 2-shard outer fleet mid-striped-transfer.
    fn rolling_restart_cell(&self) -> io::Result<CellOutcome> {
        let class = FaultClass::RollingRestart;
        let net = fleet_world();
        let members = fleet_members();
        let mk_cfg = |idx: usize| {
            OuterConfig::new(FLEET_HOSTS[idx])
                .with_fleet(members.clone(), idx)
                .with_breaker(BreakerConfig {
                    threshold: 2,
                    cooldown: Duration::from_millis(40),
                })
        };
        let mut fleet: Vec<Option<OuterServer>> = (0..members.len())
            .map(|idx| OuterServer::start(net.clone(), mk_cfg(idx)).map(Some))
            .collect::<io::Result<_>>()?;
        let router = FleetRouter::new(
            members.clone(),
            BreakerConfig {
                threshold: 2,
                cooldown: Duration::from_millis(50),
            },
        );
        let witness = GenerationWitness::new();
        witness.observe(router.generation());

        // Probe sink (restart-recovery measurement) and stripe sink.
        start_echo_sink(&net, "etl-sun", PROBE_PORT, PROBE_LEN)?;
        let receiver = Arc::new(StripeReceiver::new());
        let stripe_sink = net.bind("etl-sun", SINK_PORT)?;
        let rcv = receiver.clone();
        thread::spawn(move || {
            while let Ok((s, _)) = stripe_sink.accept() {
                let rcv = rcv.clone();
                thread::spawn(move || {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                    // Mid-frame EOF on a killed lane is expected; the
                    // dedup in the receiver absorbs the resend.
                    let _ = rcv.feed(s, None);
                });
            }
        });

        // Lane throttle via the interposer so the transfer straddles
        // both restarts. Retry counts here depend on real failover
        // timing, so the interposer registers in the TIMING registry —
        // never in the deterministic drill snapshot.
        let lane_profile = ChaosProfile::new(self.cfg.seed).with_rule(
            FaultRule::every(DialLeg::StripeLane, FaultClass::Throttle, 1).with_params(
                FaultParams {
                    rate: self.cfg.lane_rate,
                    ..FaultParams::default()
                },
            ),
        );
        let lane_ip = ChaosInterposer::new(lane_profile, &self.timing);
        let env = ProxyEnv::via_fleet(router.clone());
        let payload = payload_for(self.cfg.seed, class, self.cfg.stripe_payload);
        let plan = StripePlan::new(payload.len() as u64, 4, 16 * 1024)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{e:?}")))?;

        let sender = {
            let net = net.clone();
            let env = env.clone();
            let hook = lane_ip.hook();
            let payload = payload.clone();
            thread::spawn(move || {
                let dial = interposed_lane_dial(Some(&hook), "rwcp-sun", |_stripe, _attempt| {
                    nx_proxy_connect(&net, &env, "rwcp-sun", ("etl-sun", SINK_PORT))
                });
                send_striped(&payload, &plan, 1, 7, 16, None, dial)
            })
        };

        let mut cell = CellOutcome::failed(class);
        let hist = self.rto_histogram(class);
        let probe_payload = payload_for(self.cfg.seed, class, PROBE_LEN);
        for idx in 0..members.len() {
            pace_until(Instant::now() + Duration::from_millis(120));
            let t_kill = Instant::now();
            fleet[idx] = None; // drop: the shard dies with relays live
            let restarted = OuterServer::start(net.clone(), mk_cfg(idx))?;
            let generation = router.generation() + 1;
            router.install(generation, members.clone());
            for outer in fleet.iter().flatten() {
                outer.install_fleet(generation, members.clone());
            }
            restarted.install_fleet(generation, members.clone());
            fleet[idx] = Some(restarted);
            self.restarts_counter.inc();
            cell.faults += 1;
            witness.observe(router.generation());
            for outer in fleet.iter().flatten() {
                witness.observe(outer.fleet_generation());
            }

            // RTO: kill -> first successful op through the restarted
            // shard specifically.
            let probe_env = ProxyEnv::via(FLEET_HOSTS[idx], OUTER_PORT);
            let deadline = Instant::now() + Duration::from_secs(8);
            while Instant::now() < deadline {
                cell.attempts += 1;
                if let Ok(got) = echo_op(
                    &net,
                    &probe_env,
                    "rwcp-sun",
                    ("etl-sun", PROBE_PORT),
                    &probe_payload,
                ) {
                    record_elapsed(&hist, t_kill);
                    cell.recoveries += 1;
                    cell.ops += 1;
                    cell.bytes += 2 * PROBE_LEN as u64;
                    self.ops_counter.inc();
                    self.ledger
                        .check_payload("rolling_restart probe", &probe_payload, &got);
                    break;
                }
                pace_until(Instant::now() + Duration::from_millis(5));
            }
        }

        let report = sender
            .join()
            .map_err(|_| io::Error::other("stripe sender panicked"))??;
        let delivered = wait_for(Duration::from_secs(10), || receiver.result().is_some());
        self.ledger
            .check("rolling_restart transfer delivered", delivered);
        let mut payload_ok = false;
        if let Some((tag, got)) = receiver.result() {
            payload_ok = self
                .ledger
                .check_payload("rolling_restart transfer", &payload, &got)
                && tag == 7;
            cell.ops += 1;
            cell.bytes += got.len() as u64;
            self.ops_counter.inc();
        }
        cell.payload_ok = payload_ok;
        cell.completed = delivered && cell.recoveries == members.len() as u64;
        cell.bytes += report.bytes;
        self.ledger
            .check_generations("rolling_restart fleet", &witness);
        self.ledger
            .check("rolling_restart cell completed", cell.completed);
        let live: Vec<&OuterServer> = fleet.iter().flatten().collect();
        Ok(self.finish(class, cell, &live))
    }

    /// Kill and restart the inner daemon under live passive-relay load.
    fn inner_restart_cell(&self) -> io::Result<CellOutcome> {
        let class = FaultClass::InnerRestart;
        let net = real_world();
        let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner"))?;
        let outer = OuterServer::start(
            net.clone(),
            OuterConfig::new("rwcp-outer")
                .with_inner("rwcp-inner", NXPORT)
                .with_heartbeat(nexus_proxy::HeartbeatConfig {
                    interval: Duration::from_millis(20),
                    timeout: Duration::from_millis(120),
                })
                .with_breaker(BreakerConfig {
                    threshold: 2,
                    cooldown: Duration::from_millis(40),
                }),
        )?;
        let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
        let listener = nx_proxy_bind(&net, &env, "rwcp-sun")?;
        let adv = listener.advertised.clone();
        let payload = payload_for(self.cfg.seed, class, PROBE_LEN);

        // The bound client echoes every accepted relay.
        thread::spawn(move || {
            while let Ok(mut s) = listener.accept() {
                thread::spawn(move || {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                    let mut buf = vec![0u8; PROBE_LEN];
                    if s.read_exact(&mut buf).is_ok() {
                        let _ = s.write_all(&buf);
                    }
                });
            }
        });

        let relay_op = |attempts: &mut u64| -> io::Result<Vec<u8>> {
            *attempts += 1;
            let mut s = net.dial("etl-sun", &adv.0, adv.1)?;
            s.set_read_timeout(Some(Duration::from_secs(10)))?;
            s.write_all(&payload)?;
            let mut buf = vec![0u8; payload.len()];
            s.read_exact(&mut buf)?;
            Ok(buf)
        };

        let mut cell = CellOutcome::failed(class);
        let hist = self.rto_histogram(class);
        let mut payload_ok = true;
        let pre_ops = (self.cfg.ops / 2).max(2);
        let post_ops = self.cfg.ops.saturating_sub(pre_ops).max(1);
        for _ in 0..pre_ops {
            let got = relay_op(&mut cell.attempts)?;
            payload_ok &= self
                .ledger
                .check_payload("inner_restart pre", &payload, &got);
            cell.ops += 1;
            cell.bytes += 2 * payload.len() as u64;
            self.ops_counter.inc();
        }

        let t_kill = Instant::now();
        drop(inner);
        let detected = wait_for(Duration::from_secs(5), || outer.stats().inner_deaths >= 1);
        self.ledger.check("inner_restart death detected", detected);
        let _inner2 = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner"))?;
        self.restarts_counter.inc();
        cell.faults += 1;

        // RTO: kill -> first successful passive relay through the
        // restarted inner daemon.
        let deadline = Instant::now() + Duration::from_secs(8);
        let mut recovered = false;
        while Instant::now() < deadline {
            if let Ok(got) = relay_op(&mut cell.attempts) {
                record_elapsed(&hist, t_kill);
                cell.recoveries += 1;
                recovered = true;
                payload_ok &= self
                    .ledger
                    .check_payload("inner_restart recovery", &payload, &got);
                cell.ops += 1;
                cell.bytes += 2 * payload.len() as u64;
                self.ops_counter.inc();
                break;
            }
            pace_until(Instant::now() + Duration::from_millis(5));
        }
        self.ledger.check("inner_restart recovered", recovered);

        for _ in 0..post_ops {
            let got = relay_op(&mut cell.attempts)?;
            payload_ok &= self
                .ledger
                .check_payload("inner_restart post", &payload, &got);
            cell.ops += 1;
            cell.bytes += 2 * payload.len() as u64;
            self.ops_counter.inc();
        }

        cell.payload_ok = payload_ok;
        cell.completed = recovered && cell.ops == pre_ops + 1 + post_ops;
        self.ledger
            .check("inner_restart cell completed", cell.completed);
        Ok(self.finish(class, cell, &[&outer]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_merge_cell_is_byte_exact() {
        let suite = ChaosSuite::new(SuiteConfig::smoke(11));
        let cell = suite.run_cell(FaultClass::SplitMerge);
        assert!(cell.completed, "{cell:?}");
        assert!(cell.payload_ok);
        assert_eq!(cell.leaked_relays, 0);
        assert_eq!(cell.leaked_admission, 0);
        assert!(cell.faults >= 1);
        assert!(suite.ledger().ok(), "{:?}", suite.ledger().violations());
    }

    #[test]
    fn blackhole_cell_measures_failure_to_success_recovery() {
        let suite = ChaosSuite::new(SuiteConfig::smoke(12));
        let cell = suite.run_cell(FaultClass::Blackhole);
        assert!(cell.completed, "{cell:?}");
        assert!(cell.recoveries >= 1, "{cell:?}");
        assert!(cell.attempts > cell.ops, "faulted dials must have failed");
        assert!(cell.p99_ns >= cell.p50_ns);
        assert!(cell.p50_ns > 0);
    }

    #[test]
    fn drill_snapshot_is_deterministic_across_same_seed_runs() {
        let run = |seed| {
            let suite = ChaosSuite::new(SuiteConfig::smoke(seed));
            suite.run_cell(FaultClass::Blackhole);
            suite.run_cell(FaultClass::SplitMerge);
            suite.drill_snapshot().to_json()
        };
        assert_eq!(run(33), run(33));
    }

    #[test]
    fn inner_restart_cell_recovers_relays() {
        let suite = ChaosSuite::new(SuiteConfig::smoke(13));
        let cell = suite.run_cell(FaultClass::InnerRestart);
        assert!(cell.completed, "{cell:?}");
        assert!(cell.recoveries == 1 && cell.faults == 1);
        assert!(cell.p50_ns > 0);
        assert!(suite.ledger().ok(), "{:?}", suite.ledger().violations());
    }

    #[test]
    fn rolling_restart_cell_survives_fleet_restarts() {
        let suite = ChaosSuite::new(SuiteConfig::smoke(14));
        let cell = suite.run_cell(FaultClass::RollingRestart);
        assert!(cell.completed, "{cell:?}");
        assert!(cell.payload_ok);
        assert_eq!(cell.faults, 2);
        assert_eq!(cell.recoveries, 2);
        assert!(suite.ledger().ok(), "{:?}", suite.ledger().violations());
    }
}
