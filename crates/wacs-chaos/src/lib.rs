//! `wacs-chaos` — deterministic real-path chaos layer.
//!
//! Everything upstream of this crate exercises the relay stack either
//! cleanly (liveness tests, benches) or in virtual time (`netsim`).
//! This crate injects *socket-level* faults into the real-socket path
//! and measures how long the stack takes to recover:
//!
//! * [`profile`] — fault classes and the seeded, pure decision
//!   procedure ([`ChaosProfile::decide`] is a function of
//!   `(seed, leg, seq)` only);
//! * [`interpose`] — the in-process TCP "netem": a [`ChaosInterposer`]
//!   implements `nexus_proxy::DialInterposer` and splices a fault pump
//!   into any dialed stream (mid-stream RST, stalls, throttles,
//!   connect blackholes, delayed FIN, split/merged writes);
//! * [`invariants`] — post-recovery checkers: byte-exact payloads,
//!   relay/admission accounting back to zero, monotone fleet
//!   generations;
//! * [`orchestrator`] — scenario runner: per-class echo drills over a
//!   real firewalled world, plus rolling restarts of the outer-shard
//!   fleet mid-striped-transfer and inner-daemon kill/restart under
//!   live load. Records `wacs.chaos.recovery_ns.<class>` histograms.
//!
//! Determinism contract: decision-side counters land in a *drill
//! registry* that is byte-identical across same-seed runs (ci.sh runs
//! the `chaos_drill` bin twice and diffs); wall-clock recovery
//! histograms land in a separate timing registry that feeds
//! `BENCH_chaos.json` percentiles only.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod interpose;
pub mod invariants;
pub mod orchestrator;
pub mod profile;

pub use interpose::{pace_until, ChaosInterposer};
pub use invariants::{fnv64, wait_quiesced, InvariantLedger};
pub use orchestrator::{CellOutcome, ChaosSuite, SuiteConfig};
pub use profile::{ChaosProfile, FaultClass, FaultParams, FaultPlan, FaultRule};
