//! The socket-level fault interposer: an in-process TCP "netem".
//!
//! [`ChaosInterposer`] implements [`DialInterposer`]. Wrapping a dialed
//! stream splices a loopback socket pair into the path:
//!
//! ```text
//! caller ── near ═╡ chaos pump ╞═ far ── real stream ── peer
//! ```
//!
//! Two pump threads forward bytes between the pair and the real
//! stream, applying the connection's [`FaultPlan`]: mid-stream kills,
//! stalls, deadline-paced throttling, delayed FIN, and RNG-driven
//! re-segmentation. A `Blackhole` plan never builds the pair at all —
//! the dial errors as a timed-out connect.
//!
//! Every *decision* (which connection faults, with which parameters)
//! is a pure function of `(profile, leg, seq)` and is mirrored into a
//! deterministic metric registry, so two same-seed runs produce
//! byte-identical decision snapshots regardless of scheduling. Timing
//! effects (when exactly a stall releases) are intentionally *not* in
//! that registry — see DESIGN.md §6f for the determinism scoping.

use crate::profile::{ChaosProfile, FaultClass, FaultPlan};
use netsim::SimRng;
use nexus_proxy::{DialHook, DialInterposer, DialLeg};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use wacs_obs::{Counter, Registry};
use wacs_sync::Mutex;

/// Deadline-based wait: the one sanctioned timing primitive of the
/// chaos layer (every stall/throttle/FIN-delay funnels through here).
pub fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        let Some(left) = deadline.checked_duration_since(now) else {
            return;
        };
        if left.is_zero() {
            return;
        }
        // lint:allow(bare-sleep) — bounded, deadline-clamped wait.
        thread::sleep(left.min(Duration::from_millis(5)));
    }
}

/// Deterministic decision-side instruments (`wacs.chaos.*`). These and
/// only these land in the drill registry the ci.sh determinism gate
/// diffs byte-for-byte.
struct DecisionStats {
    /// Connections handed to the interposer.
    wrapped: Counter,
    /// Connections passed through with no fault.
    passthrough: Counter,
    /// Faults injected, one counter per class.
    injected: Vec<(FaultClass, Counter)>,
}

impl DecisionStats {
    fn in_registry(registry: &Registry) -> DecisionStats {
        DecisionStats {
            wrapped: registry.counter("wacs.chaos.wrapped"),
            passthrough: registry.counter("wacs.chaos.passthrough"),
            injected: FaultClass::INTERPOSED
                .iter()
                .map(|c| {
                    let key = format!("wacs.chaos.injected.{}", c.name());
                    (*c, registry.counter(&key))
                })
                .collect(),
        }
    }

    fn injected(&self, class: FaultClass) {
        if let Some((_, c)) = self.injected.iter().find(|(k, _)| *k == class) {
            c.inc();
        }
    }
}

/// Kill flag shared by both pump directions of one wrapped connection.
/// It deliberately holds NO stream clones: a lingering clone would
/// keep the socket open and swallow the FIN when the caller drops its
/// end, wedging the relay behind the splice. The tripping direction
/// resets its own handles with `shutdown` (which acts socket-wide, so
/// the sibling direction's blocking reads unblock too).
struct Trip {
    tripped: AtomicBool,
}

impl Trip {
    fn new() -> Arc<Trip> {
        Arc::new(Trip {
            tripped: AtomicBool::new(false),
        })
    }

    fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    fn trip(&self, src: &TcpStream, dst: &TcpStream) {
        self.tripped.store(true, Ordering::Relaxed);
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    }
}

/// The seeded interposer. Install via [`ChaosInterposer::hook`] on a
/// `ProxyEnv`, `OuterConfig`, `InnerConfig` or stripe lane dialer.
pub struct ChaosInterposer {
    profile: ChaosProfile,
    /// Per-leg dial counters: the `seq` in every decision.
    seqs: Mutex<HashMap<DialLeg, u64>>,
    stats: DecisionStats,
}

impl ChaosInterposer {
    /// Build an interposer whose decision counters register in
    /// `registry` (the deterministic drill registry).
    pub fn new(profile: ChaosProfile, registry: &Registry) -> Arc<ChaosInterposer> {
        Arc::new(ChaosInterposer {
            profile,
            seqs: Mutex::new(HashMap::new()),
            stats: DecisionStats::in_registry(registry),
        })
    }

    /// The `DialHook` to thread into nexus-proxy configs.
    pub fn hook(self: &Arc<ChaosInterposer>) -> DialHook {
        DialHook::new(self.clone())
    }

    /// Dials seen so far on `leg` (diagnostics, deterministic under
    /// sequential per-leg traffic).
    pub fn dials_on(&self, leg: DialLeg) -> u64 {
        *self.seqs.lock().get(&leg).unwrap_or(&0)
    }
}

impl DialInterposer for ChaosInterposer {
    fn wrap(
        &self,
        leg: DialLeg,
        _from: &str,
        _to: &str,
        _port: u16,
        stream: TcpStream,
    ) -> io::Result<TcpStream> {
        let seq = {
            let mut seqs = self.seqs.lock();
            let n = seqs.entry(leg).or_insert(0);
            let seq = *n;
            *n += 1;
            seq
        };
        self.stats.wrapped.inc();
        let Some(plan) = self.profile.decide(leg, seq) else {
            self.stats.passthrough.inc();
            return Ok(stream);
        };
        self.stats.injected(plan.class);
        if plan.class == FaultClass::Blackhole {
            // The dial disappears into a void: drop the real stream
            // (the peer sees a reset) and fail like a connect timeout.
            let _ = stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "chaos: connect blackholed",
            ));
        }
        splice(stream, plan)
    }
}

/// Build the loopback splice and start the two fault pumps. Returns
/// the near end for the caller.
fn splice(real: TcpStream, plan: FaultPlan) -> io::Result<TcpStream> {
    let lst = TcpListener::bind(("127.0.0.1", 0))?;
    let near = TcpStream::connect(lst.local_addr()?)?;
    // The connect above already completed its handshake against the
    // listener backlog, so this accept cannot block.
    let (far, _) = lst.accept()?; // lint:allow(deadline-io)
    let trip = Trip::new();
    let up = (far.try_clone()?, real.try_clone()?);
    let down = (real, far);
    let t_up = trip.clone();
    let t_down = trip.clone();
    thread::spawn(move || pump_dir(up.0, up.1, plan, &t_up, 1));
    thread::spawn(move || pump_dir(down.0, down.1, plan, &t_down, 2));
    Ok(near)
}

/// One pump direction with fault application. `salt` decorrelates the
/// two directions' segmentation RNG.
fn pump_dir(mut src: TcpStream, mut dst: TcpStream, plan: FaultPlan, trip: &Trip, salt: u64) {
    let started = Instant::now();
    let mut rng = SimRng::seed_from_u64(plan.seg_seed.wrapping_add(salt));
    let mut buf = vec![0u8; 8192];
    let mut total: u64 = 0;
    let mut stalled = false;
    loop {
        if trip.tripped() {
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                if plan.class == FaultClass::DelayedFin {
                    pace_until(Instant::now() + plan.fin_delay);
                }
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(_) => {
                trip.trip(&src, &dst);
                return;
            }
        };
        let crosses_cut = total < plan.cut_at && total + n as u64 >= plan.cut_at;
        match plan.class {
            FaultClass::Rst if crosses_cut => {
                // Forward exactly up to the cut, then kill everything
                // abruptly — the peer still has bytes in flight, so
                // the close surfaces as a reset mid-stream.
                let keep = (plan.cut_at - total) as usize;
                let _ = dst.write_all(&buf[..keep]);
                trip.trip(&src, &dst);
                return;
            }
            FaultClass::Stall if crosses_cut && !stalled => {
                // Half-write: the bytes before the cut go out, then
                // the stream goes silent for the stall duration with
                // the rest of the chunk (and frame) withheld.
                let keep = (plan.cut_at - total) as usize;
                if dst.write_all(&buf[..keep]).is_err() {
                    trip.trip(&src, &dst);
                    return;
                }
                pace_until(Instant::now() + plan.stall);
                stalled = true;
                if dst.write_all(&buf[keep..n]).is_err() {
                    trip.trip(&src, &dst);
                    return;
                }
            }
            FaultClass::SplitMerge => {
                let mut off = 0usize;
                while off < n {
                    let seg = 1 + rng.below(plan.max_seg as u64) as usize;
                    let end = (off + seg).min(n);
                    if dst.write_all(&buf[off..end]).is_err() {
                        trip.trip(&src, &dst);
                        return;
                    }
                    off = end;
                }
            }
            _ => {
                if dst.write_all(&buf[..n]).is_err() {
                    trip.trip(&src, &dst);
                    return;
                }
            }
        }
        total += n as u64;
        if plan.class == FaultClass::Throttle {
            // Deadline pacing: cumulative bytes may not outrun the
            // configured rate.
            let due_ns = total.saturating_mul(1_000_000_000) / plan.rate;
            pace_until(started + Duration::from_nanos(due_ns));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{FaultParams, FaultRule};

    fn echo_pair() -> (TcpStream, TcpStream) {
        let lst = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a = TcpStream::connect(lst.local_addr().unwrap()).unwrap();
        let (b, _) = lst.accept().unwrap();
        (a, b)
    }

    fn wrap_one(profile: ChaosProfile, leg: DialLeg) -> (io::Result<TcpStream>, TcpStream) {
        let reg = Registry::new();
        let ip = ChaosInterposer::new(profile, &reg);
        let (dialed, peer) = echo_pair();
        (ip.wrap(leg, "a", "b", 1, dialed), peer)
    }

    #[test]
    fn clean_profile_is_transparent() {
        let (wrapped, mut peer) = wrap_one(ChaosProfile::new(1), DialLeg::ClientData);
        let mut s = wrapped.unwrap();
        s.write_all(b"ping").unwrap();
        let mut b = [0u8; 4];
        peer.read_exact(&mut b).unwrap();
        assert_eq!(&b, b"ping");
        peer.write_all(b"pong").unwrap();
        s.read_exact(&mut b).unwrap();
        assert_eq!(&b, b"pong");
    }

    #[test]
    fn blackhole_fails_the_dial() {
        let p = ChaosProfile::new(2).with_rule(FaultRule::every(
            DialLeg::ClientCtrl,
            FaultClass::Blackhole,
            1,
        ));
        let (wrapped, _peer) = wrap_one(p, DialLeg::ClientCtrl);
        assert_eq!(wrapped.unwrap_err().kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn rst_kills_the_stream_at_the_cut() {
        let p = ChaosProfile::new(3).with_rule(
            FaultRule::every(DialLeg::ClientData, FaultClass::Rst, 1).with_params(FaultParams {
                cut_range: (64, 64),
                ..FaultParams::default()
            }),
        );
        let (wrapped, mut peer) = wrap_one(p, DialLeg::ClientData);
        let mut s = wrapped.unwrap();
        // Push well past the cut; at some point writes must fail (or
        // the peer read must end early).
        let payload = vec![0xabu8; 64 * 1024];
        let write_res = s.write_all(&payload).and_then(|_| {
            // Some platforms buffer the write; the reset then lands on
            // the next operation instead.
            let mut b = [0u8; 1];
            s.read_exact(&mut b)
        });
        assert!(write_res.is_err(), "reset never surfaced to the sender");
        let mut got = Vec::new();
        let _ = peer.read_to_end(&mut got);
        assert!(got.len() <= 64, "bytes past the cut leaked: {}", got.len());
    }

    #[test]
    fn split_merge_preserves_bytes_exactly() {
        let p = ChaosProfile::new(4).with_rule(FaultRule::every(
            DialLeg::ClientData,
            FaultClass::SplitMerge,
            1,
        ));
        let (wrapped, mut peer) = wrap_one(p, DialLeg::ClientData);
        let s = wrapped.unwrap();
        let payload: Vec<u8> = (0..40_000usize).map(|i| (i % 251) as u8).collect();
        let w = payload.clone();
        let t = thread::spawn(move || {
            let mut s = s;
            s.write_all(&w).unwrap();
            let _ = s.shutdown(Shutdown::Write);
        });
        let mut got = Vec::new();
        peer.read_to_end(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn delayed_fin_holds_eof_but_delivers_bytes() {
        let p = ChaosProfile::new(5).with_rule(
            FaultRule::every(DialLeg::ClientData, FaultClass::DelayedFin, 1).with_params(
                FaultParams {
                    fin_delay: Duration::from_millis(80),
                    ..FaultParams::default()
                },
            ),
        );
        let (wrapped, mut peer) = wrap_one(p, DialLeg::ClientData);
        let mut s = wrapped.unwrap();
        s.write_all(b"tail").unwrap();
        let _ = s.shutdown(Shutdown::Write);
        let t0 = Instant::now();
        let mut got = Vec::new();
        peer.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"tail");
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "EOF arrived too early: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn throttle_paces_delivery() {
        let p = ChaosProfile::new(6).with_rule(
            FaultRule::every(DialLeg::ClientData, FaultClass::Throttle, 1).with_params(
                FaultParams {
                    rate: 100 * 1024,
                    ..FaultParams::default()
                },
            ),
        );
        let (wrapped, mut peer) = wrap_one(p, DialLeg::ClientData);
        let s = wrapped.unwrap();
        let payload = vec![7u8; 20 * 1024];
        let w = payload.clone();
        let t = thread::spawn(move || {
            let mut s = s;
            s.write_all(&w).unwrap();
            let _ = s.shutdown(Shutdown::Write);
        });
        let t0 = Instant::now();
        let mut got = Vec::new();
        peer.read_to_end(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, payload);
        // 20 KiB at 100 KiB/s ≥ ~200 ms; allow slack for coarse pacing.
        assert!(
            t0.elapsed() >= Duration::from_millis(120),
            "throttle too fast: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn decision_counters_are_deterministic_across_runs() {
        let run = || {
            let reg = Registry::new();
            let p = ChaosProfile::new(7).with_rule(FaultRule::every(
                DialLeg::ClientCtrl,
                FaultClass::Blackhole,
                3,
            ));
            let ip = ChaosInterposer::new(p, &reg);
            for _ in 0..9 {
                let (dialed, _peer) = echo_pair();
                let _ = ip.wrap(DialLeg::ClientCtrl, "a", "b", 1, dialed);
            }
            reg.snapshot().to_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("wacs.chaos.injected.blackhole"));
    }
}
