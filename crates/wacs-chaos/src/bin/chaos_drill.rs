//! Determinism drill: run the full chaos suite with a given seed and
//! dump the deterministic drill-registry snapshot.
//!
//! ci.sh runs this twice with the same seed and compares the two
//! output files byte-for-byte — the executable proof that every chaos
//! *decision* (fault schedules, op counts, invariant verdicts) is a
//! pure function of the seed, independent of thread scheduling.
//!
//! ```text
//! chaos_drill --seed 42 --out /tmp/drill-a.json
//! ```

use std::process::ExitCode;
use wacs_chaos::{ChaosSuite, SuiteConfig};

fn parse_args() -> Result<(u64, String), String> {
    let mut seed: u64 = 42;
    let mut out = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad --seed {v}: {e}"))?;
            }
            "--out" => {
                out = args.next().ok_or("--out needs a value")?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if out.is_empty() {
        return Err("--out <file> is required".into());
    }
    Ok((seed, out))
}

fn main() -> ExitCode {
    let (seed, out) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("chaos_drill: {e}");
            eprintln!("usage: chaos_drill --seed <u64> --out <file>");
            return ExitCode::FAILURE;
        }
    };
    let suite = ChaosSuite::new(SuiteConfig::smoke(seed));
    let cells = suite.run_all();
    let incomplete: Vec<String> = cells
        .iter()
        .filter(|c| !c.completed)
        .map(|c| c.class.name().to_string())
        .collect();
    if !incomplete.is_empty() {
        eprintln!("chaos_drill: incomplete cells: {}", incomplete.join(", "));
        return ExitCode::FAILURE;
    }
    if !suite.ledger().ok() {
        for v in suite.ledger().violations() {
            eprintln!("chaos_drill: invariant violated: {v}");
        }
        return ExitCode::FAILURE;
    }
    let json = suite.drill_snapshot().to_json();
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("chaos_drill: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos_drill: seed {seed}, {} cells complete, drill snapshot -> {out}",
        cells.len()
    );
    ExitCode::SUCCESS
}
