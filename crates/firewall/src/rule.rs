//! Filtering rules: match sets over hosts, ports and protocols, plus the
//! verdicts a filter can return.

/// Opaque host identifier.
///
/// The simulator maps its `HostId` into this; the real-socket stack maps
/// logical host names. The firewall itself never interprets the value
/// beyond equality/range membership.
pub type HostRef = u32;

/// One endpoint of a (potential) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    pub host: HostRef,
    pub port: u16,
}

impl Endpoint {
    pub const fn new(host: HostRef, port: u16) -> Self {
        Endpoint { host, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}:{}", self.host, self.port)
    }
}

/// Transport protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    Tcp,
    Udp,
    Any,
}

impl Proto {
    /// Does `self` (a rule's selector) cover `packet` (a concrete proto)?
    pub fn covers(self, packet: Proto) -> bool {
        matches!(self, Proto::Any) || self == packet
    }
}

/// Direction of a packet relative to the protected (inside) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the outside world into the protected site.
    Inbound,
    /// From the protected site toward the outside world.
    Outbound,
}

impl Direction {
    pub fn flip(self) -> Direction {
        match self {
            Direction::Inbound => Direction::Outbound,
            Direction::Outbound => Direction::Inbound,
        }
    }
}

/// A set of hosts a rule can match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostSet {
    Any,
    One(HostRef),
    Range(HostRef, HostRef),
    List(Vec<HostRef>),
}

impl HostSet {
    pub fn contains(&self, h: HostRef) -> bool {
        match self {
            HostSet::Any => true,
            HostSet::One(x) => *x == h,
            HostSet::Range(lo, hi) => (*lo..=*hi).contains(&h),
            HostSet::List(v) => v.contains(&h),
        }
    }
}

/// A set of ports a rule can match.
///
/// `Range` is the shape used by the Globus 1.1 `TCP_MIN_PORT` /
/// `TCP_MAX_PORT` workaround the paper critiques: opening the whole
/// listener range inbound is "basically the same as the allow based
/// firewall".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortSet {
    Any,
    One(u16),
    Range(u16, u16),
    List(Vec<u16>),
}

impl PortSet {
    pub fn contains(&self, p: u16) -> bool {
        match self {
            PortSet::Any => true,
            PortSet::One(x) => *x == p,
            PortSet::Range(lo, hi) => (*lo..=*hi).contains(&p),
            PortSet::List(v) => v.contains(&p),
        }
    }

    /// Number of ports in the set (saturating; `Any` is 65536).
    pub fn width(&self) -> u32 {
        match self {
            PortSet::Any => 65536,
            PortSet::One(_) => 1,
            PortSet::Range(lo, hi) => {
                if hi >= lo {
                    u32::from(hi - lo) + 1
                } else {
                    0
                }
            }
            PortSet::List(v) => v.len() as u32,
        }
    }
}

/// Rule action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    Allow,
    Deny,
}

/// Final verdict returned by [`crate::Firewall::filter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Passed by an explicit rule or by the default action.
    Pass,
    /// Passed because the packet belongs to an established, tracked flow.
    PassEstablished,
    /// Dropped.
    Drop,
}

impl Verdict {
    pub fn passed(self) -> bool {
        !matches!(self, Verdict::Drop)
    }
}

/// A single filtering rule. First matching rule wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub action: Action,
    pub direction: Direction,
    pub proto: Proto,
    pub src_hosts: HostSet,
    pub src_ports: PortSet,
    pub dst_hosts: HostSet,
    pub dst_ports: PortSet,
    /// Human-readable annotation, surfaced by the audit log.
    pub label: String,
}

impl Rule {
    /// Allow-everything-in-`direction` skeleton, to be refined with the
    /// builder methods below.
    pub fn allow(direction: Direction) -> Rule {
        Rule {
            action: Action::Allow,
            direction,
            proto: Proto::Any,
            src_hosts: HostSet::Any,
            src_ports: PortSet::Any,
            dst_hosts: HostSet::Any,
            dst_ports: PortSet::Any,
            label: String::new(),
        }
    }

    /// Deny-everything-in-`direction` skeleton.
    pub fn deny(direction: Direction) -> Rule {
        Rule {
            action: Action::Deny,
            ..Rule::allow(direction)
        }
    }

    pub fn proto(mut self, p: Proto) -> Rule {
        self.proto = p;
        self
    }

    pub fn src(mut self, hosts: HostSet, ports: PortSet) -> Rule {
        self.src_hosts = hosts;
        self.src_ports = ports;
        self
    }

    pub fn dst(mut self, hosts: HostSet, ports: PortSet) -> Rule {
        self.dst_hosts = hosts;
        self.dst_ports = ports;
        self
    }

    pub fn label(mut self, l: impl Into<String>) -> Rule {
        self.label = l.into();
        self
    }

    /// Does this rule match a concrete packet?
    pub fn matches(
        &self,
        direction: Direction,
        proto: Proto,
        src: Endpoint,
        dst: Endpoint,
    ) -> bool {
        self.direction == direction
            && self.proto.covers(proto)
            && self.src_hosts.contains(src.host)
            && self.src_ports.contains(src.port)
            && self.dst_hosts.contains(dst.host)
            && self.dst_ports.contains(dst.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(h: HostRef, p: u16) -> Endpoint {
        Endpoint::new(h, p)
    }

    #[test]
    fn host_set_membership() {
        assert!(HostSet::Any.contains(7));
        assert!(HostSet::One(7).contains(7));
        assert!(!HostSet::One(7).contains(8));
        assert!(HostSet::Range(3, 9).contains(3));
        assert!(HostSet::Range(3, 9).contains(9));
        assert!(!HostSet::Range(3, 9).contains(10));
        assert!(HostSet::List(vec![1, 5]).contains(5));
        assert!(!HostSet::List(vec![1, 5]).contains(2));
    }

    #[test]
    fn port_set_membership_and_width() {
        assert!(PortSet::Any.contains(0));
        assert_eq!(PortSet::Any.width(), 65536);
        assert_eq!(PortSet::One(80).width(), 1);
        assert_eq!(PortSet::Range(1000, 1999).width(), 1000);
        assert_eq!(PortSet::Range(5, 4).width(), 0);
        assert_eq!(PortSet::List(vec![1, 2, 3]).width(), 3);
    }

    #[test]
    fn proto_covering() {
        assert!(Proto::Any.covers(Proto::Tcp));
        assert!(Proto::Tcp.covers(Proto::Tcp));
        assert!(!Proto::Tcp.covers(Proto::Udp));
    }

    #[test]
    fn rule_builder_and_match() {
        let r = Rule::allow(Direction::Inbound)
            .proto(Proto::Tcp)
            .dst(HostSet::One(3), PortSet::One(911))
            .label("nxport hole");
        assert!(r.matches(Direction::Inbound, Proto::Tcp, ep(9, 40000), ep(3, 911)));
        // Wrong direction.
        assert!(!r.matches(Direction::Outbound, Proto::Tcp, ep(9, 40000), ep(3, 911)));
        // Wrong destination port.
        assert!(!r.matches(Direction::Inbound, Proto::Tcp, ep(9, 40000), ep(3, 912)));
        // Wrong destination host.
        assert!(!r.matches(Direction::Inbound, Proto::Tcp, ep(9, 40000), ep(4, 911)));
        // Udp not covered by Tcp selector.
        assert!(!r.matches(Direction::Inbound, Proto::Udp, ep(9, 40000), ep(3, 911)));
    }

    #[test]
    fn verdicts() {
        assert!(Verdict::Pass.passed());
        assert!(Verdict::PassEstablished.passed());
        assert!(!Verdict::Drop.passed());
    }
}
