//! Stateful connection tracking.
//!
//! A deny-based inbound policy would also drop the *reply* packets of
//! connections that inside hosts opened toward the outside, making all
//! outbound TCP useless. Real packet filters solve this with a state
//! table; so do we. A flow is inserted when its first packet passes the
//! rule set, and subsequent packets of the same 5-tuple (in either
//! direction) are passed as `ESTABLISHED` traffic.

use crate::rule::{Endpoint, Proto};
use std::collections::HashSet;

/// Canonical key for a tracked flow.
///
/// The two endpoints are stored in a canonical (sorted) order so that a
/// packet and its reply map to the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    a: Endpoint,
    b: Endpoint,
    proto: Proto,
}

impl FlowKey {
    pub fn new(src: Endpoint, dst: Endpoint, proto: Proto) -> Self {
        let (a, b) = if (src.host, src.port) <= (dst.host, dst.port) {
            (src, dst)
        } else {
            (dst, src)
        };
        FlowKey { a, b, proto }
    }
}

/// The state table.
#[derive(Debug, Default)]
pub struct ConnTracker {
    established: HashSet<FlowKey>,
}

impl ConnTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a flow as established (called after its opening packet
    /// passed the rule set).
    pub fn establish(&mut self, src: Endpoint, dst: Endpoint, proto: Proto) {
        self.established.insert(FlowKey::new(src, dst, proto));
    }

    /// Is this packet part of an established flow (either direction)?
    pub fn is_established(&self, src: Endpoint, dst: Endpoint, proto: Proto) -> bool {
        self.established.contains(&FlowKey::new(src, dst, proto))
    }

    /// Drop state for a closed flow.
    pub fn teardown(&mut self, src: Endpoint, dst: Endpoint, proto: Proto) -> bool {
        self.established.remove(&FlowKey::new(src, dst, proto))
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.established.len()
    }

    pub fn is_empty(&self) -> bool {
        self.established.is_empty()
    }

    /// Flush the whole table (e.g. on a simulated firewall reload).
    pub fn flush(&mut self) {
        self.established.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(h, p)
    }

    #[test]
    fn reply_maps_to_same_flow() {
        let k1 = FlowKey::new(ep(1, 40000), ep(9, 80), Proto::Tcp);
        let k2 = FlowKey::new(ep(9, 80), ep(1, 40000), Proto::Tcp);
        assert_eq!(k1, k2);
    }

    #[test]
    fn different_proto_is_different_flow() {
        let k1 = FlowKey::new(ep(1, 40000), ep(9, 80), Proto::Tcp);
        let k2 = FlowKey::new(ep(1, 40000), ep(9, 80), Proto::Udp);
        assert_ne!(k1, k2);
    }

    #[test]
    fn establish_then_reply_then_teardown() {
        let mut ct = ConnTracker::new();
        assert!(ct.is_empty());
        ct.establish(ep(1, 40000), ep(9, 80), Proto::Tcp);
        assert_eq!(ct.len(), 1);
        // Reply direction is established too.
        assert!(ct.is_established(ep(9, 80), ep(1, 40000), Proto::Tcp));
        // A different flow is not.
        assert!(!ct.is_established(ep(9, 81), ep(1, 40000), Proto::Tcp));
        assert!(ct.teardown(ep(1, 40000), ep(9, 80), Proto::Tcp));
        assert!(!ct.is_established(ep(9, 80), ep(1, 40000), Proto::Tcp));
        // Second teardown is a no-op.
        assert!(!ct.teardown(ep(1, 40000), ep(9, 80), Proto::Tcp));
    }

    #[test]
    fn flush_clears_everything() {
        let mut ct = ConnTracker::new();
        for i in 0..10 {
            ct.establish(ep(1, 40000 + i), ep(9, 80), Proto::Tcp);
        }
        assert_eq!(ct.len(), 10);
        ct.flush();
        assert!(ct.is_empty());
    }
}
