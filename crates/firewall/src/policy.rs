//! Policies (ordered rule lists + defaults) and the stateful
//! [`Firewall`] that applies them.

use crate::audit::{AuditLog, AuditRecord};
use crate::conntrack::ConnTracker;
use crate::rule::{Action, Direction, Endpoint, HostSet, PortSet, Proto, Rule, Verdict};

/// A stateless policy: ordered rules and per-direction default actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    pub rules: Vec<Rule>,
    pub default_inbound: Action,
    pub default_outbound: Action,
    pub name: String,
}

impl Policy {
    /// Allow-based configuration: everything open by default in both
    /// directions; callers add explicit `Deny` rules to close ports.
    pub fn allow_based(name: impl Into<String>) -> Policy {
        Policy {
            rules: Vec::new(),
            default_inbound: Action::Allow,
            default_outbound: Action::Allow,
            name: name.into(),
        }
    }

    /// Deny-based configuration: everything closed by default in both
    /// directions; callers add explicit `Allow` rules to open ports.
    pub fn deny_based(name: impl Into<String>) -> Policy {
        Policy {
            rules: Vec::new(),
            default_inbound: Action::Deny,
            default_outbound: Action::Deny,
            name: name.into(),
        }
    }

    /// The paper's *typical* configuration (§1): deny-based inbound,
    /// allow-based outbound.
    pub fn typical(name: impl Into<String>) -> Policy {
        Policy {
            rules: Vec::new(),
            default_inbound: Action::Deny,
            default_outbound: Action::Allow,
            name: name.into(),
        }
    }

    /// An unfirewalled site (the paper's ETL hosts are directly
    /// reachable from RWCP): everything passes.
    pub fn open(name: impl Into<String>) -> Policy {
        Policy::allow_based(name)
    }

    /// Typical policy with the proxy hole punched: inbound TCP to
    /// `inner_host:nxport` is allowed, as the paper requires —
    /// "only the communication port from the outer server to the inner
    /// server must be opened in advance".
    pub fn typical_with_nxport(name: impl Into<String>, inner_host: u32, nxport: u16) -> Policy {
        Policy::typical(name).push(
            Rule::allow(Direction::Inbound)
                .proto(Proto::Tcp)
                .dst(HostSet::One(inner_host), PortSet::One(nxport))
                .label("nxport: outer->inner relay hole"),
        )
    }

    /// The Globus 1.1 alternative the paper critiques: open an inbound
    /// port *range* (`TCP_MIN_PORT..=TCP_MAX_PORT`) on every inside
    /// host, which "is basically the same as the allow based firewall".
    pub fn typical_with_port_range(name: impl Into<String>, lo: u16, hi: u16) -> Policy {
        Policy::typical(name).push(
            Rule::allow(Direction::Inbound)
                .proto(Proto::Tcp)
                .dst(HostSet::Any, PortSet::Range(lo, hi))
                .label("globus1.1: TCP_MIN_PORT..TCP_MAX_PORT opened"),
        )
    }

    /// Append a rule (builder style).
    pub fn push(mut self, rule: Rule) -> Policy {
        self.rules.push(rule);
        self
    }

    /// Stateless evaluation: first matching rule wins, else the
    /// per-direction default applies. Returns the action plus the label
    /// of the deciding rule.
    pub fn evaluate(
        &self,
        direction: Direction,
        proto: Proto,
        src: Endpoint,
        dst: Endpoint,
    ) -> (Action, &str) {
        for rule in &self.rules {
            if rule.matches(direction, proto, src, dst) {
                return (rule.action, rule.label.as_str());
            }
        }
        let action = match direction {
            Direction::Inbound => self.default_inbound,
            Direction::Outbound => self.default_outbound,
        };
        (action, "<default>")
    }

    /// Total inbound exposure: number of (host-agnostic) inbound ports
    /// explicitly allowed. A crude security metric used by the
    /// port-range-vs-proxy ablation.
    pub fn inbound_exposure(&self) -> u32 {
        self.rules
            .iter()
            .filter(|r| r.action == Action::Allow && r.direction == Direction::Inbound)
            .map(|r| r.dst_ports.width())
            .sum()
    }
}

/// A stateful firewall instance: policy + connection tracker + audit log.
#[derive(Debug)]
pub struct Firewall {
    policy: Policy,
    tracker: ConnTracker,
    audit: AuditLog,
}

impl Firewall {
    pub fn new(policy: Policy) -> Self {
        Firewall {
            policy,
            tracker: ConnTracker::new(),
            audit: AuditLog::default(),
        }
    }

    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Replace the policy (the paper "temporarily changed the
    /// configuration of the firewall" for direct-path measurements;
    /// tests exercise exactly this). The connection table survives a
    /// reload, as on a real filter.
    pub fn reload(&mut self, policy: Policy) {
        self.policy = policy;
    }

    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    pub fn tracker(&self) -> &ConnTracker {
        &self.tracker
    }

    /// Filter a connection-opening packet (TCP SYN analogue). On pass,
    /// the flow is entered into the connection table so replies and
    /// subsequent data pass statefully.
    pub fn filter_open(
        &mut self,
        direction: Direction,
        proto: Proto,
        src: Endpoint,
        dst: Endpoint,
    ) -> Verdict {
        let (action, label) = self.policy.evaluate(direction, proto, src, dst);
        let verdict = match action {
            Action::Allow => {
                self.tracker.establish(src, dst, proto);
                Verdict::Pass
            }
            Action::Deny => Verdict::Drop,
        };
        self.audit.push(AuditRecord {
            direction,
            proto,
            src,
            dst,
            verdict,
            rule: label.to_string(),
        });
        verdict
    }

    /// Filter a mid-flow data packet: established flows pass regardless
    /// of direction; otherwise the rule set decides (a pass here does
    /// *not* create state — only opens do).
    pub fn filter_data(
        &mut self,
        direction: Direction,
        proto: Proto,
        src: Endpoint,
        dst: Endpoint,
    ) -> Verdict {
        let verdict = if self.tracker.is_established(src, dst, proto) {
            Verdict::PassEstablished
        } else {
            match self.policy.evaluate(direction, proto, src, dst).0 {
                Action::Allow => Verdict::Pass,
                Action::Deny => Verdict::Drop,
            }
        };
        let rule = match verdict {
            Verdict::PassEstablished => "<established>".to_string(),
            _ => self
                .policy
                .evaluate(direction, proto, src, dst)
                .1
                .to_string(),
        };
        self.audit.push(AuditRecord {
            direction,
            proto,
            src,
            dst,
            verdict,
            rule,
        });
        verdict
    }

    /// Tear down a tracked flow (FIN/RST analogue).
    pub fn close(&mut self, src: Endpoint, dst: Endpoint, proto: Proto) {
        self.tracker.teardown(src, dst, proto);
    }

    /// Flush the connection table (an operator hard-reset: established
    /// flows lose their stateful exemption immediately).
    pub fn flush_conntrack(&mut self) {
        self.tracker.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(h, p)
    }

    #[test]
    fn typical_policy_denies_inbound_allows_outbound() {
        let p = Policy::typical("site");
        assert_eq!(
            p.evaluate(Direction::Inbound, Proto::Tcp, ep(9, 1), ep(1, 80))
                .0,
            Action::Deny
        );
        assert_eq!(
            p.evaluate(Direction::Outbound, Proto::Tcp, ep(1, 1), ep(9, 80))
                .0,
            Action::Allow
        );
    }

    #[test]
    fn first_match_wins() {
        let p = Policy::typical("site")
            .push(
                Rule::allow(Direction::Inbound)
                    .dst(HostSet::Any, PortSet::One(911))
                    .label("open"),
            )
            .push(
                Rule::deny(Direction::Inbound)
                    .dst(HostSet::Any, PortSet::One(911))
                    .label("shadowed"),
            );
        let (a, label) = p.evaluate(Direction::Inbound, Proto::Tcp, ep(9, 1), ep(1, 911));
        assert_eq!(a, Action::Allow);
        assert_eq!(label, "open");
    }

    #[test]
    fn nxport_hole_only_reaches_inner_host() {
        let p = Policy::typical_with_nxport("rwcp", 3, 911);
        assert_eq!(
            p.evaluate(Direction::Inbound, Proto::Tcp, ep(9, 50000), ep(3, 911))
                .0,
            Action::Allow
        );
        // Same port on another host: denied.
        assert_eq!(
            p.evaluate(Direction::Inbound, Proto::Tcp, ep(9, 50000), ep(4, 911))
                .0,
            Action::Deny
        );
        // Another port on the inner host: denied.
        assert_eq!(
            p.evaluate(Direction::Inbound, Proto::Tcp, ep(9, 50000), ep(3, 912))
                .0,
            Action::Deny
        );
    }

    #[test]
    fn exposure_metric_favours_proxy_over_port_range() {
        let proxy = Policy::typical_with_nxport("rwcp", 3, 911);
        let range = Policy::typical_with_port_range("rwcp", 10000, 11000);
        assert_eq!(proxy.inbound_exposure(), 1);
        assert_eq!(range.inbound_exposure(), 1001);
        assert!(proxy.inbound_exposure() < range.inbound_exposure());
    }

    #[test]
    fn stateful_reply_passes_through_deny_in() {
        let mut fw = Firewall::new(Policy::typical("rwcp"));
        // Inside host opens outward: allowed, flow tracked.
        assert!(fw
            .filter_open(Direction::Outbound, Proto::Tcp, ep(1, 40000), ep(9, 80))
            .passed());
        // Reply data comes inbound: passes as established.
        assert_eq!(
            fw.filter_data(Direction::Inbound, Proto::Tcp, ep(9, 80), ep(1, 40000)),
            Verdict::PassEstablished
        );
        // Unrelated inbound data: dropped.
        assert_eq!(
            fw.filter_data(Direction::Inbound, Proto::Tcp, ep(9, 81), ep(1, 40000)),
            Verdict::Drop
        );
        // After close, the reply path shuts.
        fw.close(ep(1, 40000), ep(9, 80), Proto::Tcp);
        assert_eq!(
            fw.filter_data(Direction::Inbound, Proto::Tcp, ep(9, 80), ep(1, 40000)),
            Verdict::Drop
        );
    }

    #[test]
    fn inbound_open_dropped_under_typical() {
        let mut fw = Firewall::new(Policy::typical("rwcp"));
        assert_eq!(
            fw.filter_open(Direction::Inbound, Proto::Tcp, ep(9, 40000), ep(1, 5000)),
            Verdict::Drop
        );
        // Drop creates no state: a "reply" in the other direction is a
        // fresh outbound open, which is allowed — but the original
        // inbound flow never passes.
        assert!(fw.tracker().is_empty());
        assert_eq!(fw.audit().dropped(), 1);
    }

    #[test]
    fn reload_keeps_connection_table() {
        let mut fw = Firewall::new(Policy::allow_based("rwcp"));
        fw.filter_open(Direction::Inbound, Proto::Tcp, ep(9, 40000), ep(1, 5000));
        assert_eq!(fw.tracker().len(), 1);
        fw.reload(Policy::typical("rwcp"));
        // Existing flow still passes; new ones do not.
        assert_eq!(
            fw.filter_data(Direction::Inbound, Proto::Tcp, ep(9, 40000), ep(1, 5000)),
            Verdict::PassEstablished
        );
        assert_eq!(
            fw.filter_open(Direction::Inbound, Proto::Tcp, ep(9, 40001), ep(1, 5001)),
            Verdict::Drop
        );
    }
}
