//! Audit trail of filtering decisions.
//!
//! Tests and the experiment harness use this to *prove* claims such as
//! "under the deny-based policy, no inbound connection was ever passed
//! except on `nxport`" rather than merely asserting end-state.

use crate::rule::{Direction, Endpoint, Proto, Verdict};
use std::collections::VecDeque;

/// One filtering decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    pub direction: Direction,
    pub proto: Proto,
    pub src: Endpoint,
    pub dst: Endpoint,
    pub verdict: Verdict,
    /// Label of the matching rule, `"<default>"` for the default action,
    /// or `"<established>"` for conntrack passes.
    pub rule: String,
}

/// Bounded ring buffer of decisions.
#[derive(Debug)]
pub struct AuditLog {
    records: VecDeque<AuditRecord>,
    capacity: usize,
    /// Total decisions ever logged (including evicted ones).
    total: u64,
    dropped_packets: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::with_capacity(4096)
    }
}

impl AuditLog {
    pub fn with_capacity(capacity: usize) -> Self {
        AuditLog {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            total: 0,
            dropped_packets: 0,
        }
    }

    pub fn push(&mut self, rec: AuditRecord) {
        self.total += 1;
        if rec.verdict == Verdict::Drop {
            self.dropped_packets += 1;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(rec);
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total decisions logged over the log's lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total drops logged over the log's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped_packets
    }

    /// Were any *retained* inbound packets passed by a non-established
    /// rule match, other than to the given port set? Used to verify the
    /// paper's "only nxport is open" claim.
    pub fn inbound_passes_outside(&self, allowed_dst_ports: &[u16]) -> Vec<&AuditRecord> {
        self.records
            .iter()
            .filter(|r| {
                r.direction == Direction::Inbound
                    && r.verdict == Verdict::Pass
                    && !allowed_dst_ports.contains(&r.dst.port)
            })
            .collect()
    }

    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(port: u16, verdict: Verdict, dir: Direction) -> AuditRecord {
        AuditRecord {
            direction: dir,
            proto: Proto::Tcp,
            src: Endpoint::new(1, 40000),
            dst: Endpoint::new(2, port),
            verdict,
            rule: "t".into(),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = AuditLog::with_capacity(2);
        log.push(rec(1, Verdict::Pass, Direction::Inbound));
        log.push(rec(2, Verdict::Pass, Direction::Inbound));
        log.push(rec(3, Verdict::Pass, Direction::Inbound));
        assert_eq!(log.len(), 2);
        assert_eq!(log.total(), 3);
        let ports: Vec<u16> = log.records().map(|r| r.dst.port).collect();
        assert_eq!(ports, vec![2, 3]);
    }

    #[test]
    fn drop_counter() {
        let mut log = AuditLog::default();
        log.push(rec(1, Verdict::Drop, Direction::Inbound));
        log.push(rec(2, Verdict::Pass, Direction::Inbound));
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn inbound_pass_scan() {
        let mut log = AuditLog::default();
        log.push(rec(911, Verdict::Pass, Direction::Inbound));
        log.push(rec(5000, Verdict::Pass, Direction::Inbound));
        log.push(rec(6000, Verdict::PassEstablished, Direction::Inbound)); // not counted
        log.push(rec(7000, Verdict::Pass, Direction::Outbound)); // not inbound
        let bad = log.inbound_passes_outside(&[911]);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].dst.port, 5000);
    }
}
