//! Firewall model for the wide-area cluster system.
//!
//! The paper (§1) distinguishes two base configurations of a border
//! firewall:
//!
//! * **allow-based** — every port is open by default; specific ports are
//!   closed to intensify security;
//! * **deny-based** — every port is closed by default; specific ports are
//!   opened explicitly.
//!
//! and assumes the *typical* configuration throughout: **deny-based for
//! incoming packets, allow-based for outgoing packets**. That asymmetry
//! is what breaks Globus 1.0 (dynamically allocated listener ports are
//! unreachable from outside) and what the Nexus Proxy works around.
//!
//! This crate models that world precisely enough for both consumers:
//!
//! * the discrete-event simulator (`netsim`) consults a [`Firewall`] for
//!   every simulated connection attempt and data packet crossing a
//!   gateway;
//! * the real-socket stack (`nexus`, `nexus-proxy`) consults the same
//!   [`Firewall`] before issuing a `connect(2)`, so a loopback deployment
//!   faithfully refuses exactly the flows a real border router would
//!   drop.
//!
//! The model is stateful: like any practical packet filter, reply
//! traffic of an **established** connection is passed by the connection
//! tracker even under a deny-based inbound policy (otherwise no
//! outbound-initiated TCP connection could ever complete).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod audit;
pub mod conntrack;
pub mod policy;
pub mod rule;
pub mod vnet;

pub use audit::{AuditLog, AuditRecord};
pub use conntrack::{ConnTracker, FlowKey};
pub use policy::{Firewall, Policy};
pub use rule::{Action, Direction, Endpoint, HostRef, HostSet, PortSet, Proto, Rule, Verdict};
pub use vnet::{VListener, VNet, VSiteId};

/// The well-known relay port (the paper's `nxport`) that the outer
/// server uses to reach the inner server: the **single** hole that must
/// be opened in a deny-based inbound policy for the proxy scheme to
/// work. The paper binds it to a privileged port (root-only) to
/// strengthen security; we keep the same convention.
pub const NXPORT: u16 = 911;

/// Default port of the outer proxy server (outside the firewall).
pub const OUTER_PORT: u16 = 5678;

/// Default port of a Globus-style gatekeeper (outside the firewall).
pub const GATEKEEPER_PORT: u16 = 2119;

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn nxport_is_privileged() {
        // The paper's security argument: binding the relay endpoint to a
        // privileged port requires root, so a rogue user process cannot
        // impersonate the inner server.
        assert!(NXPORT < 1024);
    }
}
