//! A firewall-guarded *virtual network* over loopback TCP.
//!
//! The real-socket half of this reproduction runs every daemon of the
//! paper (outer/inner proxy servers, gatekeeper, Q servers, MPI ranks)
//! as a thread on one machine. Plain loopback would let anything
//! connect to anything, which would silently void the entire premise
//! of the paper. `VNet` restores the premise:
//!
//! * logical **hosts** belong to **sites**, each site optionally
//!   protected by a [`Firewall`];
//! * services bind real OS listeners but advertise *logical*
//!   `(host, port)` addresses;
//! * every connect goes through [`VNet::dial`], which evaluates the
//!   border policies exactly as the border routers in Figure 5 would —
//!   a deny-based inbound policy makes an inside listener unreachable
//!   from an outside host even though both are threads in one process.
//!
//! The mapping is process-wide state shared by `Arc`; all methods are
//! thread-safe.

use crate::policy::{Firewall, Policy};
use crate::rule::{Direction, Endpoint, HostRef, Proto};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU16, AtomicU32, Ordering};
use std::sync::Arc;
use wacs_sync::Mutex;

/// Site index within a `VNet`.
pub type VSiteId = usize;

struct SiteEntry {
    #[allow(dead_code)]
    name: String,
    firewall: Mutex<Option<Firewall>>,
}

struct HostEntry {
    id: HostRef,
    site: VSiteId,
}

struct VNetInner {
    sites: Mutex<Vec<SiteEntry>>,
    hosts: Mutex<HashMap<String, HostEntry>>,
    /// logical (host, port) → real loopback address.
    services: Mutex<HashMap<(String, u16), SocketAddr>>,
    next_host: AtomicU32,
    next_ephemeral: AtomicU16,
}

/// Handle to the shared virtual network (cheaply clonable).
#[derive(Clone)]
pub struct VNet {
    inner: Arc<VNetInner>,
}

impl Default for VNet {
    fn default() -> Self {
        Self::new()
    }
}

impl VNet {
    pub fn new() -> VNet {
        VNet {
            inner: Arc::new(VNetInner {
                sites: Mutex::new(Vec::new()),
                hosts: Mutex::new(HashMap::new()),
                services: Mutex::new(HashMap::new()),
                next_host: AtomicU32::new(1),
                next_ephemeral: AtomicU16::new(40000),
            }),
        }
    }

    /// Define a site. `policy == None` means no border firewall.
    pub fn add_site(&self, name: impl Into<String>, policy: Option<Policy>) -> VSiteId {
        let mut sites = self.inner.sites.lock();
        sites.push(SiteEntry {
            name: name.into(),
            firewall: Mutex::new(policy.map(Firewall::new)),
        });
        sites.len() - 1
    }

    /// Register a logical host in a site. Returns its [`HostRef`] used
    /// in firewall rules.
    pub fn add_host(&self, name: impl Into<String>, site: VSiteId) -> HostRef {
        let name = name.into();
        let id = self.inner.next_host.fetch_add(1, Ordering::Relaxed);
        let prev = self
            .inner
            .hosts
            .lock()
            .insert(name.clone(), HostEntry { id, site });
        assert!(prev.is_none(), "duplicate host {name}");
        id
    }

    pub fn host_ref(&self, name: &str) -> Option<HostRef> {
        self.inner.hosts.lock().get(name).map(|h| h.id)
    }

    pub fn host_site(&self, name: &str) -> Option<VSiteId> {
        self.inner.hosts.lock().get(name).map(|h| h.site)
    }

    /// Swap (or install) a site's policy at runtime — the paper's
    /// temporary firewall reconfiguration. A site created without a
    /// firewall gains one; an existing firewall keeps its connection
    /// table across the reload. Returns false for an unknown site.
    pub fn reload_policy(&self, site: VSiteId, policy: Policy) -> bool {
        let sites = self.inner.sites.lock();
        match sites.get(site) {
            Some(s) => {
                let mut fw = s.firewall.lock();
                match fw.as_mut() {
                    Some(f) => f.reload(policy),
                    None => *fw = Some(Firewall::new(policy)),
                }
                true
            }
            None => false,
        }
    }

    /// Remove a site's firewall entirely ("temporarily changed the
    /// configuration … to enable direct communication").
    pub fn drop_firewall(&self, site: VSiteId) -> bool {
        let sites = self.inner.sites.lock();
        match sites.get(site) {
            Some(s) => {
                *s.firewall.lock() = None;
                true
            }
            None => false,
        }
    }

    /// Allocate a logical ephemeral port (for listen-on-any requests).
    pub fn ephemeral_port(&self) -> u16 {
        let p = self.inner.next_ephemeral.fetch_add(1, Ordering::Relaxed);
        if p < 40000 {
            // wrapped; restart the range (fine for tests/benches)
            self.inner.next_ephemeral.store(40001, Ordering::Relaxed);
            40000
        } else {
            p
        }
    }

    /// Bind a service: a real loopback listener advertised as logical
    /// `(host, port)`. `port == 0` allocates an ephemeral logical port.
    pub fn bind(&self, host: &str, port: u16) -> io::Result<VListener> {
        if self.host_ref(host).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("unknown host {host}"),
            ));
        }
        let port = if port == 0 {
            self.ephemeral_port()
        } else {
            port
        };
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let real = listener.local_addr()?;
        let mut services = self.inner.services.lock();
        if services.contains_key(&(host.to_string(), port)) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("{host}:{port} already bound"),
            ));
        }
        services.insert((host.to_string(), port), real);
        Ok(VListener {
            listener,
            host: host.to_string(),
            port,
            net: self.clone(),
        })
    }

    /// Resolve a logical service to its real address (diagnostics).
    pub fn resolve(&self, host: &str, port: u16) -> Option<SocketAddr> {
        self.inner
            .services
            .lock()
            .get(&(host.to_string(), port))
            .copied()
    }

    /// Firewall check for a connection `from` → `to:port`, without
    /// dialing. Establishes conntrack state on pass, as a SYN would.
    pub fn check_connect(&self, from: &str, to: &str, port: u16) -> io::Result<()> {
        let hosts = self.inner.hosts.lock();
        let src = hosts.get(from).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("unknown source host {from}"),
            )
        })?;
        let dst = hosts.get(to).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("unknown dest host {to}"))
        })?;
        let (src_site, dst_site) = (src.site, dst.site);
        let src_ep = Endpoint::new(src.id, self.ephemeral_port());
        let dst_ep = Endpoint::new(dst.id, port);
        drop(hosts);
        if src_site == dst_site {
            return Ok(()); // intra-site traffic never crosses the border
        }
        let sites = self.inner.sites.lock();
        for (site, dir) in [
            (src_site, Direction::Outbound),
            (dst_site, Direction::Inbound),
        ] {
            if let Some(fw) = sites[site].firewall.lock().as_mut() {
                let verdict = fw.filter_open(dir, Proto::Tcp, src_ep, dst_ep);
                if !verdict.passed() {
                    return Err(io::Error::new(
                        io::ErrorKind::PermissionDenied,
                        format!("firewall dropped {from}->{to}:{port} ({dir:?} at site {site})"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Connect from logical host `from` to logical `(to, port)`,
    /// enforcing both border policies. Returns a real `TcpStream` on
    /// success; `PermissionDenied` when a firewall drops the SYN;
    /// `ConnectionRefused` when nothing listens.
    pub fn dial(&self, from: &str, to: &str, port: u16) -> io::Result<TcpStream> {
        self.check_connect(from, to, port)?;
        let real = self.resolve(to, port).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no listener at {to}:{port}"),
            )
        })?;
        TcpStream::connect(real)
    }
}

/// A bound service: real listener + logical address. Unregisters on
/// drop.
pub struct VListener {
    listener: TcpListener,
    host: String,
    port: u16,
    net: VNet,
}

impl VListener {
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        self.listener.accept()
    }

    /// Logical `(host, port)` this service is advertised as.
    pub fn logical_addr(&self) -> (String, u16) {
        (self.host.clone(), self.port)
    }

    pub fn logical_port(&self) -> u16 {
        self.port
    }

    /// Real loopback address (diagnostics).
    pub fn real_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Clone the underlying OS listener handle (for acceptor threads).
    pub fn try_clone(&self) -> io::Result<TcpListener> {
        self.listener.try_clone()
    }

    /// Set non-blocking accept mode (used by servers that poll).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        self.listener.set_nonblocking(nb)
    }
}

impl std::fmt::Debug for VListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VListener({}:{})", self.host, self.port)
    }
}

impl Drop for VListener {
    fn drop(&mut self) {
        self.net
            .inner
            .services
            .lock()
            .remove(&(self.host.clone(), self.port));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use std::io::{Read, Write};

    /// Two sites: "inside" behind a typical (deny-in) firewall, and an
    /// open "outside".
    fn net() -> VNet {
        let n = VNet::new();
        let inside = n.add_site("inside", Some(Policy::typical("inside")));
        let outside = n.add_site("outside", None);
        n.add_host("in-a", inside);
        n.add_host("in-b", inside);
        n.add_host("out-x", outside);
        n
    }

    #[test]
    fn intra_site_connect_works() {
        let n = net();
        let l = n.bind("in-a", 7000).unwrap();
        let n2 = n.clone();
        let t = std::thread::spawn(move || {
            let (mut s, _) = l.accept().unwrap();
            let mut b = [0u8; 5];
            s.read_exact(&mut b).unwrap();
            assert_eq!(&b, b"hello");
        });
        let mut s = n2.dial("in-b", "in-a", 7000).unwrap();
        s.write_all(b"hello").unwrap();
        t.join().unwrap();
    }

    #[test]
    fn outbound_through_deny_in_firewall_works() {
        let n = net();
        let l = n.bind("out-x", 80).unwrap();
        std::thread::spawn(move || {
            let _ = l.accept();
        });
        assert!(n.dial("in-a", "out-x", 80).is_ok());
    }

    #[test]
    fn inbound_blocked_by_deny_in_firewall() {
        let n = net();
        let _l = n.bind("in-a", 7000).unwrap();
        let err = n.dial("out-x", "in-a", 7000).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn nxport_hole_admits_inbound() {
        let n = VNet::new();
        let outside = n.add_site("outside", None);
        let inside = n.add_site("inside", Some(Policy::typical("inside")));
        let inner_ref = n.add_host("inner-host", inside);
        n.add_host("out-x", outside);
        // Punch the hole now that we know the inner host's ref.
        n.reload_policy(
            inside,
            Policy::typical_with_nxport("inside", inner_ref, crate::NXPORT),
        );
        let l = n.bind("inner-host", crate::NXPORT).unwrap();
        std::thread::spawn(move || {
            let _ = l.accept();
        });
        assert!(n.dial("out-x", "inner-host", crate::NXPORT).is_ok());
        // Any other port stays shut.
        let _l2 = n.bind("inner-host", 9000).unwrap();
        assert_eq!(
            n.dial("out-x", "inner-host", 9000).unwrap_err().kind(),
            io::ErrorKind::PermissionDenied
        );
    }

    #[test]
    fn dial_unknown_host_or_service() {
        let n = net();
        assert_eq!(
            n.dial("in-a", "nope", 1).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(
            n.dial("in-a", "in-b", 1234).unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
    }

    #[test]
    fn bind_conflicts_and_ephemeral() {
        let n = net();
        let _l = n.bind("in-a", 7000).unwrap();
        assert_eq!(
            n.bind("in-a", 7000).unwrap_err().kind(),
            io::ErrorKind::AddrInUse
        );
        let e1 = n.bind("in-a", 0).unwrap();
        let e2 = n.bind("in-a", 0).unwrap();
        assert_ne!(e1.logical_port(), e2.logical_port());
        assert!(e1.logical_port() >= 40000);
    }

    #[test]
    fn listener_drop_unregisters() {
        let n = net();
        let l = n.bind("in-a", 7000).unwrap();
        assert!(n.resolve("in-a", 7000).is_some());
        drop(l);
        assert!(n.resolve("in-a", 7000).is_none());
        // Port can be rebound now.
        assert!(n.bind("in-a", 7000).is_ok());
    }

    #[test]
    fn policy_reload_opens_and_closes() {
        let n = net();
        let _l = n.bind("in-a", 7000).unwrap();
        assert!(n.dial("out-x", "in-a", 7000).is_err());
        // Temporarily open the firewall (as the paper did for direct
        // measurements).
        let site = n.host_site("in-a").unwrap();
        assert!(n.reload_policy(site, Policy::allow_based("open")));
        assert!(n.check_connect("out-x", "in-a", 7000).is_ok());
        // And back.
        assert!(n.reload_policy(site, Policy::typical("inside")));
        assert!(n.check_connect("out-x", "in-a", 7001).is_err());
    }
}
