//! GASS-style file staging.
//!
//! "Since the Globus GASS facility uses files for input/output, the
//! Q system also transfers the files to remote resources." We model
//! GASS as an in-memory per-host file store addressed by
//! `gass://host/path` URLs; the Q system copies staged inputs to the
//! executing resource and captured stdout back.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use wacs_sync::Mutex;

/// A parsed `gass://host/path` URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GassUrl {
    pub host: String,
    pub path: String,
}

impl GassUrl {
    pub fn parse(url: &str) -> io::Result<GassUrl> {
        let rest = url.strip_prefix("gass://").ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("not a gass url: {url}"),
            )
        })?;
        let (host, path) = rest.split_once('/').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("gass url needs a path: {url}"),
            )
        })?;
        if host.is_empty() || path.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("empty host or path: {url}"),
            ));
        }
        Ok(GassUrl {
            host: host.to_string(),
            path: path.to_string(),
        })
    }

    pub fn to_url(&self) -> String {
        format!("gass://{}/{}", self.host, self.path)
    }
}

/// `(host, path)` → file bytes.
type FileMap = HashMap<(String, String), Vec<u8>>;

/// The (process-wide) GASS store: per-host path → bytes.
#[derive(Clone, Default)]
pub struct GassStore {
    files: Arc<Mutex<FileMap>>,
}

impl GassStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put(&self, host: &str, path: &str, data: Vec<u8>) {
        self.files
            .lock()
            .insert((host.to_string(), path.to_string()), data);
    }

    pub fn get(&self, host: &str, path: &str) -> Option<Vec<u8>> {
        self.files
            .lock()
            .get(&(host.to_string(), path.to_string()))
            .cloned()
    }

    pub fn get_url(&self, url: &str) -> io::Result<Vec<u8>> {
        let u = GassUrl::parse(url)?;
        self.get(&u.host, &u.path).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such gass file: {url}"))
        })
    }

    pub fn exists(&self, url: &str) -> bool {
        GassUrl::parse(url)
            .ok()
            .is_some_and(|u| self.files.lock().contains_key(&(u.host, u.path)))
    }

    /// Copy a file from one host's store to another (the Q system's
    /// stage-in transfer). Returns the byte count moved.
    pub fn transfer(&self, from_url: &str, to_host: &str, to_path: &str) -> io::Result<usize> {
        let data = self.get_url(from_url)?;
        let n = data.len();
        self.put(to_host, to_path, data);
        Ok(n)
    }

    pub fn len(&self) -> usize {
        self.files.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parse() {
        let u = GassUrl::parse("gass://rwcp-sun/inputs/knap50.dat").unwrap();
        assert_eq!(u.host, "rwcp-sun");
        assert_eq!(u.path, "inputs/knap50.dat");
        assert_eq!(u.to_url(), "gass://rwcp-sun/inputs/knap50.dat");
        assert!(GassUrl::parse("http://x/y").is_err());
        assert!(GassUrl::parse("gass://hostonly").is_err());
        assert!(GassUrl::parse("gass:///path").is_err());
    }

    #[test]
    fn store_and_transfer() {
        let g = GassStore::new();
        assert!(g.is_empty());
        g.put("rwcp-sun", "inputs/a", b"data!".to_vec());
        assert!(g.exists("gass://rwcp-sun/inputs/a"));
        assert_eq!(g.get_url("gass://rwcp-sun/inputs/a").unwrap(), b"data!");
        let n = g
            .transfer("gass://rwcp-sun/inputs/a", "compas0", "staged/a")
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(g.get("compas0", "staged/a").unwrap(), b"data!");
        // Missing source.
        assert!(g.transfer("gass://rwcp-sun/nope", "x", "y").is_err());
        assert_eq!(g.len(), 2);
    }
}
