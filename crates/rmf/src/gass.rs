//! GASS-style file staging.
//!
//! "Since the Globus GASS facility uses files for input/output, the
//! Q system also transfers the files to remote resources." We model
//! GASS as an in-memory per-host file store addressed by
//! `gass://host/path` URLs; the Q system copies staged inputs to the
//! executing resource and captured stdout back.
//!
//! Bulk staging can be **striped** (DESIGN.md §6e):
//! [`GassStore::transfer_with`] splits the file over K parallel
//! stripe lanes and moves every byte through the real stripe codec —
//! framed `Open`/`Data`/`Fin` per lane, receiver-side reassembly with
//! offset dedup — so the staged copy is the *reassembled* payload,
//! not a shortcut memcpy. [`GassStore::transfer`] is the
//! single-stream special case.

use nexus_proxy::stripe::{
    send_striped, StripePlan, StripeReceiver, StripeStats, DEFAULT_CHUNK_BYTES,
};
use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::Arc;
use wacs_obs::Registry;
use wacs_sync::Mutex;

/// A parsed `gass://host/path` URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GassUrl {
    pub host: String,
    pub path: String,
}

impl GassUrl {
    pub fn parse(url: &str) -> io::Result<GassUrl> {
        let rest = url.strip_prefix("gass://").ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("not a gass url: {url}"),
            )
        })?;
        let (host, path) = rest.split_once('/').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("gass url needs a path: {url}"),
            )
        })?;
        if host.is_empty() || path.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("empty host or path: {url}"),
            ));
        }
        Ok(GassUrl {
            host: host.to_string(),
            path: path.to_string(),
        })
    }

    pub fn to_url(&self) -> String {
        format!("gass://{}/{}", self.host, self.path)
    }
}

/// How one staging transfer is split over parallel stripe lanes: a
/// thin, named wrapper over the stripe layer's [`StripePlan`] with
/// GASS's chunk-size convention baked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedTransfer {
    plan: StripePlan,
}

impl StripedTransfer {
    /// Plan a transfer of `total_len` bytes over `streams` lanes
    /// (chunked at [`DEFAULT_CHUNK_BYTES`]).
    pub fn plan(total_len: u64, streams: u16) -> io::Result<StripedTransfer> {
        let plan =
            StripePlan::new(total_len, streams, DEFAULT_CHUNK_BYTES).map_err(io::Error::from)?;
        Ok(StripedTransfer { plan })
    }

    pub fn streams(&self) -> u16 {
        self.plan.stripes()
    }

    pub fn chunk_count(&self) -> u64 {
        self.plan.chunk_count()
    }

    pub fn total_len(&self) -> u64 {
        self.plan.total_len()
    }

    /// The underlying stripe-layer plan.
    pub fn stripe_plan(&self) -> StripePlan {
        self.plan
    }
}

/// `(host, path)` → file bytes.
type FileMap = HashMap<(String, String), Vec<u8>>;

/// The (process-wide) GASS store: per-host path → bytes.
#[derive(Clone, Default)]
pub struct GassStore {
    files: Arc<Mutex<FileMap>>,
    stats: Option<StripeStats>,
}

/// Send-side lane of an in-process striped transfer: frames appended
/// to the lane's byte stream, exactly what a relay flow would carry.
struct LaneWriter {
    lanes: Arc<Mutex<Vec<Vec<u8>>>>,
    lane: usize,
}

impl Write for LaneWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.lanes.lock()[self.lane].extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl GassStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put(&self, host: &str, path: &str, data: Vec<u8>) {
        self.files
            .lock()
            .insert((host.to_string(), path.to_string()), data);
    }

    pub fn get(&self, host: &str, path: &str) -> Option<Vec<u8>> {
        self.files
            .lock()
            .get(&(host.to_string(), path.to_string()))
            .cloned()
    }

    pub fn get_url(&self, url: &str) -> io::Result<Vec<u8>> {
        let u = GassUrl::parse(url)?;
        self.get(&u.host, &u.path).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such gass file: {url}"))
        })
    }

    pub fn exists(&self, url: &str) -> bool {
        GassUrl::parse(url)
            .ok()
            .is_some_and(|u| self.files.lock().contains_key(&(u.host, u.path)))
    }

    /// Record staging traffic under `wacs.stripe.*` in `registry`.
    #[must_use]
    pub fn with_obs(mut self, registry: &Registry) -> GassStore {
        self.stats = Some(StripeStats::in_registry(registry));
        self
    }

    /// Copy a file from one host's store to another (the Q system's
    /// stage-in transfer). Returns the byte count moved. Single
    /// stream; see [`GassStore::transfer_with`] for striping.
    pub fn transfer(&self, from_url: &str, to_host: &str, to_path: &str) -> io::Result<usize> {
        self.transfer_with(from_url, to_host, to_path, 1)
    }

    /// Copy a file between host stores over `streams` parallel stripe
    /// lanes. Every byte crosses the real stripe codec: the file is
    /// framed per lane by the stripe sender, the lanes are replayed to
    /// a [`StripeReceiver`] in *reverse* order (deliberately
    /// adversarial — reassembly must not depend on arrival order), and
    /// the staged copy is the reassembled payload.
    pub fn transfer_with(
        &self,
        from_url: &str,
        to_host: &str,
        to_path: &str,
        streams: u16,
    ) -> io::Result<usize> {
        let data = self.get_url(from_url)?;
        let st = StripedTransfer::plan(data.len() as u64, streams)?;
        let plan = st.stripe_plan();
        let lanes: Arc<Mutex<Vec<Vec<u8>>>> =
            Arc::new(Mutex::new(vec![Vec::new(); usize::from(streams)]));
        let dial_lanes = lanes.clone();
        send_striped(
            &data,
            &plan,
            1,
            0,
            0,
            self.stats.as_ref(),
            move |stripe, _| {
                Ok(LaneWriter {
                    lanes: dial_lanes.clone(),
                    lane: usize::from(stripe),
                })
            },
        )?;
        let rx = StripeReceiver::new();
        let captured = std::mem::take(&mut *lanes.lock());
        for lane in captured.into_iter().rev() {
            rx.feed(io::Cursor::new(lane), self.stats.as_ref())?;
        }
        let Some((_, got)) = rx.result() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "striped staging did not reassemble to completion",
            ));
        };
        if got != data {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "striped staging reassembled to different bytes",
            ));
        }
        let n = got.len();
        self.put(to_host, to_path, got);
        Ok(n)
    }

    pub fn len(&self) -> usize {
        self.files.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parse() {
        let u = GassUrl::parse("gass://rwcp-sun/inputs/knap50.dat").unwrap();
        assert_eq!(u.host, "rwcp-sun");
        assert_eq!(u.path, "inputs/knap50.dat");
        assert_eq!(u.to_url(), "gass://rwcp-sun/inputs/knap50.dat");
        assert!(GassUrl::parse("http://x/y").is_err());
        assert!(GassUrl::parse("gass://hostonly").is_err());
        assert!(GassUrl::parse("gass:///path").is_err());
    }

    #[test]
    fn store_and_transfer() {
        let g = GassStore::new();
        assert!(g.is_empty());
        g.put("rwcp-sun", "inputs/a", b"data!".to_vec());
        assert!(g.exists("gass://rwcp-sun/inputs/a"));
        assert_eq!(g.get_url("gass://rwcp-sun/inputs/a").unwrap(), b"data!");
        let n = g
            .transfer("gass://rwcp-sun/inputs/a", "compas0", "staged/a")
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(g.get("compas0", "staged/a").unwrap(), b"data!");
        // Missing source.
        assert!(g.transfer("gass://rwcp-sun/nope", "x", "y").is_err());
        assert_eq!(g.len(), 2);
    }
}
