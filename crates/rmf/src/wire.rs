//! Control-plane wire format: framed key/value records.
//!
//! RMF messages are small structured records (job requests, resource
//! lists, status reports). They are encoded as a count-prefixed list
//! of length-prefixed UTF-8 `key`/`value` pairs inside one
//! `nexus::msg` frame — simple, explicit, endian-fixed.

use std::io::{self, Read, Write};

fn bad(m: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.to_string())
}

/// An ordered key/value record. Keys may repeat (e.g. one `resource`
/// entry per allocated resource).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    pairs: Vec<(String, String)>,
}

impl Record {
    pub fn new(kind: &str) -> Record {
        let mut r = Record::default();
        r.push("kind", kind);
        r
    }

    pub fn push(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.pairs.push((key.to_string(), value.into()));
        self
    }

    pub fn with(mut self, key: &str, value: impl Into<String>) -> Self {
        self.push(key, value);
        self
    }

    /// First value for `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `key`, in order.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    pub fn kind(&self) -> &str {
        self.get("kind").unwrap_or("")
    }

    pub fn require(&self, key: &str) -> io::Result<&str> {
        self.get(key)
            .ok_or_else(|| bad(&format!("missing field {key}")))
    }

    pub fn require_u64(&self, key: &str) -> io::Result<u64> {
        self.require(key)?
            .parse()
            .map_err(|_| bad(&format!("field {key} is not a number")))
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&(self.pairs.len() as u32).to_be_bytes());
        for (k, v) in &self.pairs {
            for s in [k, v] {
                buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
        }
        buf
    }

    pub fn decode(bytes: &[u8]) -> io::Result<Record> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
            if bytes.len() < *pos + n {
                return Err(bad("truncated record"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let count = u32::from_be_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if count > 4096 {
            return Err(bad("absurd field count"));
        }
        let mut pairs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut strs = [String::new(), String::new()];
            for slot in &mut strs {
                let len = u32::from_be_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                if len > 1 << 20 {
                    return Err(bad("absurd string length"));
                }
                *slot = String::from_utf8(take(&mut pos, len)?.to_vec())
                    .map_err(|_| bad("non-utf8 field"))?;
            }
            let [k, v] = strs;
            pairs.push((k, v));
        }
        if pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(Record { pairs })
    }

    /// Send as one frame on a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        nexus::msg::send_frame(w, &self.encode())
    }

    /// Read one record frame; `Ok(None)` on clean EOF.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Record>> {
        match nexus::msg::recv_frame(r)? {
            Some(frame) => Ok(Some(Record::decode(&frame)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Record::new("submit")
            .with("executable", "knapsack")
            .with("count", "8")
            .with("resource", "compas")
            .with("resource", "o2k");
        let d = Record::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.kind(), "submit");
        assert_eq!(d.get("count"), Some("8"));
        assert_eq!(d.get_all("resource"), vec!["compas", "o2k"]);
        assert_eq!(d.require_u64("count").unwrap(), 8);
        assert!(d.require("missing").is_err());
        assert!(d.require_u64("executable").is_err());
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        Record::new("a").write_to(&mut buf).unwrap();
        Record::new("b").with("x", "y").write_to(&mut buf).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(Record::read_from(&mut cur).unwrap().unwrap().kind(), "a");
        let b = Record::read_from(&mut cur).unwrap().unwrap();
        assert_eq!(b.get("x"), Some("y"));
        assert!(Record::read_from(&mut cur).unwrap().is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[0, 0, 0, 1]).is_err()); // count 1, no data
        let mut ok = Record::new("x").encode();
        ok.push(0xFF); // trailing byte
        assert!(Record::decode(&ok).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip(pairs in proptest::collection::vec(("[a-z]{1,8}", "[ -~]{0,32}"), 0..16)) {
            let mut r = Record::default();
            for (k, v) in &pairs {
                r.push(k, v.clone());
            }
            let d = Record::decode(&r.encode()).unwrap();
            proptest::prop_assert_eq!(d, r);
        }

        #[test]
        fn prop_decoder_total(bytes in proptest::collection::vec(0u8..=255, 0..96)) {
            let _ = Record::decode(&bytes);
        }
    }
}
