//! Control-plane wire format: framed key/value records.
//!
//! RMF messages are small structured records (job requests, resource
//! lists, status reports). They are encoded as a count-prefixed list
//! of length-prefixed UTF-8 `key`/`value` pairs inside one
//! `nexus::msg` frame — simple, explicit, endian-fixed.
//!
//! Decoding is total: every malformed input maps to a
//! [`RecordError`] variant, never a panic. The gatekeeper and queue
//! daemons parse bytes that crossed a firewall; a crash on bad input
//! would be a remote denial of service.

use std::fmt;
use std::io::{self, Read, Write};

/// Why a record failed to decode or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Input ended before the announced structure did.
    Truncated,
    /// Field count exceeds the sanity cap (corrupt prefix).
    AbsurdFieldCount(u32),
    /// A string length exceeds the sanity cap (corrupt prefix).
    AbsurdStringLength(u32),
    /// A key or value is not valid UTF-8.
    NonUtf8,
    /// Bytes remain after the announced structure ended.
    TrailingBytes,
    /// A required field is absent.
    MissingField(String),
    /// A field exists but is not parseable as the expected type.
    BadField(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "truncated record"),
            RecordError::AbsurdFieldCount(n) => write!(f, "absurd field count {n}"),
            RecordError::AbsurdStringLength(n) => write!(f, "absurd string length {n}"),
            RecordError::NonUtf8 => write!(f, "non-utf8 field"),
            RecordError::TrailingBytes => write!(f, "trailing bytes after record"),
            RecordError::MissingField(k) => write!(f, "missing field {k}"),
            RecordError::BadField(k) => write!(f, "field {k} is not a number"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<RecordError> for io::Error {
    fn from(e: RecordError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Read a big-endian `u32` at `*pos`, advancing it.
fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, RecordError> {
    let end = pos.checked_add(4).ok_or(RecordError::Truncated)?;
    let Some(chunk) = bytes.get(*pos..end) else {
        return Err(RecordError::Truncated);
    };
    *pos = end;
    Ok(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
}

/// Read `n` raw bytes at `*pos`, advancing it.
fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], RecordError> {
    let end = pos.checked_add(n).ok_or(RecordError::Truncated)?;
    let Some(chunk) = bytes.get(*pos..end) else {
        return Err(RecordError::Truncated);
    };
    *pos = end;
    Ok(chunk)
}

/// An ordered key/value record. Keys may repeat (e.g. one `resource`
/// entry per allocated resource).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    pairs: Vec<(String, String)>,
}

impl Record {
    pub fn new(kind: &str) -> Record {
        let mut r = Record::default();
        r.push("kind", kind);
        r
    }

    pub fn push(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.pairs.push((key.to_string(), value.into()));
        self
    }

    pub fn with(mut self, key: &str, value: impl Into<String>) -> Self {
        self.push(key, value);
        self
    }

    /// First value for `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `key`, in order.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    pub fn kind(&self) -> &str {
        self.get("kind").unwrap_or("")
    }

    pub fn require(&self, key: &str) -> Result<&str, RecordError> {
        self.get(key)
            .ok_or_else(|| RecordError::MissingField(key.to_string()))
    }

    pub fn require_u64(&self, key: &str) -> Result<u64, RecordError> {
        self.require(key)?
            .parse()
            .map_err(|_| RecordError::BadField(key.to_string()))
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&(self.pairs.len() as u32).to_be_bytes());
        for (k, v) in &self.pairs {
            for s in [k, v] {
                buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
        }
        buf
    }

    pub fn decode(bytes: &[u8]) -> Result<Record, RecordError> {
        let mut pos = 0usize;
        let count = take_u32(bytes, &mut pos)?;
        if count > 4096 {
            return Err(RecordError::AbsurdFieldCount(count));
        }
        let mut pairs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut strs = [String::new(), String::new()];
            for slot in &mut strs {
                let len = take_u32(bytes, &mut pos)?;
                if len > 1 << 20 {
                    return Err(RecordError::AbsurdStringLength(len));
                }
                let body = take(bytes, &mut pos, len as usize)?;
                *slot = String::from_utf8(body.to_vec()).map_err(|_| RecordError::NonUtf8)?;
            }
            let [k, v] = strs;
            pairs.push((k, v));
        }
        if pos != bytes.len() {
            return Err(RecordError::TrailingBytes);
        }
        Ok(Record { pairs })
    }

    /// Send as one frame on a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        nexus::msg::send_frame(w, &self.encode())
    }

    /// Read one record frame; `Ok(None)` on clean EOF.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Record>> {
        match nexus::msg::recv_frame(r)? {
            Some(frame) => Ok(Some(Record::decode(&frame).map_err(io::Error::from)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Record::new("submit")
            .with("executable", "knapsack")
            .with("count", "8")
            .with("resource", "compas")
            .with("resource", "o2k");
        let d = Record::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.kind(), "submit");
        assert_eq!(d.get("count"), Some("8"));
        assert_eq!(d.get_all("resource"), vec!["compas", "o2k"]);
        assert_eq!(d.require_u64("count").unwrap(), 8);
        assert_eq!(
            d.require("missing"),
            Err(RecordError::MissingField("missing".into()))
        );
        assert_eq!(
            d.require_u64("executable"),
            Err(RecordError::BadField("executable".into()))
        );
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        Record::new("a").write_to(&mut buf).unwrap();
        Record::new("b").with("x", "y").write_to(&mut buf).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(Record::read_from(&mut cur).unwrap().unwrap().kind(), "a");
        let b = Record::read_from(&mut cur).unwrap().unwrap();
        assert_eq!(b.get("x"), Some("y"));
        assert!(Record::read_from(&mut cur).unwrap().is_none());
    }

    #[test]
    fn rejects_garbage_with_typed_errors() {
        assert_eq!(Record::decode(&[]), Err(RecordError::Truncated));
        // count 1, no data
        assert_eq!(Record::decode(&[0, 0, 0, 1]), Err(RecordError::Truncated));
        let mut ok = Record::new("x").encode();
        ok.push(0xFF); // trailing byte
        assert_eq!(Record::decode(&ok), Err(RecordError::TrailingBytes));
        // Absurd field count.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            Record::decode(&huge),
            Err(RecordError::AbsurdFieldCount(u32::MAX))
        );
        // Absurd string length.
        let mut long = Vec::new();
        long.extend_from_slice(&1u32.to_be_bytes());
        long.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert_eq!(
            Record::decode(&long),
            Err(RecordError::AbsurdStringLength(u32::MAX))
        );
        // Non-UTF-8 key.
        let mut bad_utf8 = Vec::new();
        bad_utf8.extend_from_slice(&1u32.to_be_bytes());
        bad_utf8.extend_from_slice(&1u32.to_be_bytes());
        bad_utf8.push(0xFF);
        bad_utf8.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(Record::decode(&bad_utf8), Err(RecordError::NonUtf8));
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn random_records_roundtrip() {
        let mut r = test_rng(0x5ec0);
        for _ in 0..200 {
            let npairs = (r() % 16) as usize;
            let mut rec = Record::default();
            for _ in 0..npairs {
                let klen = 1 + (r() % 8) as usize;
                let vlen = (r() % 33) as usize;
                let k: String = (0..klen)
                    .map(|_| (b'a' + (r() % 26) as u8) as char)
                    .collect();
                let v: String = (0..vlen)
                    .map(|_| (b' ' + (r() % 95) as u8) as char)
                    .collect();
                rec.push(&k, v);
            }
            let d = Record::decode(&rec.encode()).unwrap();
            assert_eq!(d, rec);
        }
    }

    #[test]
    fn decoder_total_on_random_bytes() {
        let mut r = test_rng(0xdead_0001);
        for round in 0..2000 {
            let len = (round % 96) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| r() as u8).collect();
            let _ = Record::decode(&bytes);
        }
    }
}
