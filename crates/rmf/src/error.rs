//! Typed RMF failures.
//!
//! Historically every RMF failure was a stringly `io::Error`, and
//! several paths papered over missing data instead of failing at all
//! (`unwrap_or(0)` on required wire fields, silent clamping of load
//! underflows). [`RmfError`] separates the cases callers genuinely
//! treat differently:
//!
//! * transport trouble that retry can fix ([`RmfError::Io`], and the
//!   give-up form [`RmfError::Timeout`]);
//! * malformed wire data, which retry can never fix
//!   ([`RmfError::Record`]);
//! * the allocator's two refusal modes — transient exhaustion
//!   ([`RmfError::Busy`], queue and retry) versus permanent
//!   impossibility ([`RmfError::Capacity`], fail fast);
//! * any other daemon-reported error ([`RmfError::Daemon`]);
//! * internal accounting corruption ([`RmfError::Accounting`]), which
//!   must surface as a bug rather than be clamped away.

use crate::wire::RecordError;
use std::io;
use std::time::Duration;

/// A typed RMF failure.
#[derive(Debug)]
pub enum RmfError {
    /// An RPC kept failing transiently until its deadline expired.
    Timeout {
        /// What was being attempted (e.g. `"allocator query"`).
        what: &'static str,
        /// How long we retried before giving up.
        elapsed: Duration,
        /// The last transient error observed.
        last: io::Error,
    },
    /// Transport-level failure (dial, read, write).
    Io(io::Error),
    /// Malformed or incomplete wire record.
    Record(RecordError),
    /// Resources are busy right now; retrying later can succeed.
    Busy(String),
    /// The request exceeds total managed capacity; retry is pointless.
    Capacity(String),
    /// Any other error reported by a daemon.
    Daemon(String),
    /// A load ledger would have gone out of range — an accounting bug
    /// (double release, missed booking), never a valid state.
    Accounting {
        /// Resource whose ledger was about to be corrupted.
        resource: String,
        /// Load at the time of the bad report (left unchanged).
        load: u32,
        /// The delta that would have taken it out of range.
        delta: i64,
    },
}

impl std::fmt::Display for RmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmfError::Timeout {
                what,
                elapsed,
                last,
            } => write!(f, "{what} timed out after {elapsed:?} (last error: {last})"),
            RmfError::Io(e) => write!(f, "{e}"),
            RmfError::Record(e) => write!(f, "{e}"),
            // Daemon-reported details are printed verbatim so callers
            // (and logs) see exactly what the daemon said.
            RmfError::Busy(detail) | RmfError::Capacity(detail) | RmfError::Daemon(detail) => {
                write!(f, "{detail}")
            }
            RmfError::Accounting {
                resource,
                load,
                delta,
            } => write!(
                f,
                "accounting bug: load of {resource} is {load}, delta {delta} \
                 would leave the valid range"
            ),
        }
    }
}

impl std::error::Error for RmfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmfError::Io(e) | RmfError::Timeout { last: e, .. } => Some(e),
            RmfError::Record(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RmfError {
    fn from(e: io::Error) -> Self {
        RmfError::Io(e)
    }
}

impl From<RecordError> for RmfError {
    fn from(e: RecordError) -> Self {
        RmfError::Record(e)
    }
}

/// Classify a daemon `error` record's detail string into the refusal
/// modes the allocator distinguishes (see `AllocatorState::select`).
pub(crate) fn classify_daemon_error(detail: &str) -> RmfError {
    if detail.contains("permanently") {
        RmfError::Capacity(detail.to_string())
    } else if detail.contains("insufficient capacity") {
        RmfError::Busy(detail.to_string())
    } else {
        RmfError::Daemon(detail.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_details_print_verbatim() {
        let e = classify_daemon_error("insufficient capacity permanently: 9 procs requested");
        assert!(matches!(e, RmfError::Capacity(_)));
        assert_eq!(
            e.to_string(),
            "insufficient capacity permanently: 9 procs requested"
        );
        let e = classify_daemon_error("insufficient capacity: 2 of 9 unplaced (resources busy)");
        assert!(matches!(e, RmfError::Busy(_)));
        let e = classify_daemon_error("unknown executable foo");
        assert!(matches!(e, RmfError::Daemon(_)));
    }

    #[test]
    fn accounting_message_names_the_ledger() {
        let e = RmfError::Accounting {
            resource: "COMPaS".into(),
            load: 3,
            delta: -5,
        };
        let s = e.to_string();
        assert!(s.contains("accounting bug"));
        assert!(s.contains("COMPaS"));
        assert!(s.contains("-5"));
    }
}
