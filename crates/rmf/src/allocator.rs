//! The resource allocator: "manages computing resources and runs as a
//! daemon process inside the firewall". Q clients ask it which
//! resources should execute a job (Fig. 2 steps 3-4); Q servers report
//! load changes back.

use crate::error::RmfError;
use crate::job::FlowTrace;
use crate::wire::Record;
use firewall::vnet::VNet;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use wacs_sync::OrderedMutex;

/// Well-known allocator port (a fixed inbound hole in the firewall,
/// like the paper's Q-system channels).
pub const ALLOCATOR_PORT: u16 = 2120;

/// A managed resource (a cluster or supercomputer front-end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceInfo {
    /// Public name, e.g. "COMPaS".
    pub name: String,
    /// Logical host running its Q server.
    pub qserver_host: String,
    /// Processors available.
    pub cpus: u32,
}

/// Selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectPolicy {
    /// Fill resources in least-loaded-fraction order (default).
    LeastLoaded,
    /// Fill in registration order.
    FirstFit,
}

#[derive(Debug)]
struct Entry {
    info: ResourceInfo,
    load: u32,
    /// Health as last reported by the supervisor; dead resources are
    /// skipped by implicit selection (see [`AllocatorState::select`]).
    alive: bool,
}

/// One allocation slice: `count` processes on a resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    pub resource: String,
    pub qserver_host: String,
    pub count: u32,
}

/// Shared allocator state (also usable directly, without the socket
/// front-end, for unit tests).
#[derive(Clone)]
pub struct AllocatorState {
    entries: Arc<OrderedMutex<Vec<Entry>>>,
    policy: SelectPolicy,
}

impl AllocatorState {
    pub fn new(policy: SelectPolicy) -> Self {
        AllocatorState {
            entries: Arc::new(OrderedMutex::new("rmf.allocator.entries", Vec::new())),
            policy,
        }
    }

    pub fn register(&self, info: ResourceInfo) {
        self.entries.lock().push(Entry {
            info,
            load: 0,
            alive: true,
        });
    }

    /// Current load of a resource (diagnostics).
    pub fn load_of(&self, name: &str) -> Option<u32> {
        self.entries
            .lock()
            .iter()
            .find(|e| e.info.name == name)
            .map(|e| e.load)
    }

    /// Health of a resource (diagnostics).
    pub fn is_alive(&self, name: &str) -> Option<bool> {
        self.entries
            .lock()
            .iter()
            .find(|e| e.info.name == name)
            .map(|e| e.alive)
    }

    /// Mark a resource alive/dead (the Q-server supervisor's verdict).
    pub fn set_health(&self, name: &str, alive: bool) -> Result<(), RmfError> {
        let mut entries = self.entries.lock();
        let Some(e) = entries.iter_mut().find(|e| e.info.name == name) else {
            return Err(RmfError::Daemon(format!("unknown resource {name}")));
        };
        e.alive = alive;
        Ok(())
    }

    /// Zero the booked load of a dead resource — its Q server will
    /// never report the completions — and return what was orphaned.
    pub fn orphan_load(&self, name: &str) -> Result<u32, RmfError> {
        let mut entries = self.entries.lock();
        let Some(e) = entries.iter_mut().find(|e| e.info.name == name) else {
            return Err(RmfError::Daemon(format!("unknown resource {name}")));
        };
        let orphaned = e.load;
        e.load = 0;
        Ok(orphaned)
    }

    /// Apply a load delta reported by a Q server.
    ///
    /// A delta that would drive the ledger below zero (or above
    /// `u32::MAX`) is an accounting bug — a double release or a missed
    /// booking. It used to be clamped silently, which *hid* the bug
    /// while leaving the load wrong; now the ledger is left untouched
    /// and the corruption is reported as [`RmfError::Accounting`].
    pub fn report(&self, name: &str, delta: i64) -> Result<(), RmfError> {
        let mut entries = self.entries.lock();
        let Some(e) = entries.iter_mut().find(|e| e.info.name == name) else {
            return Err(RmfError::Daemon(format!("unknown resource {name}")));
        };
        let new = i64::from(e.load) + delta;
        match u32::try_from(new) {
            Ok(load) => {
                e.load = load;
                Ok(())
            }
            Err(_) => Err(RmfError::Accounting {
                resource: name.to_string(),
                load: e.load,
                delta,
            }),
        }
    }

    /// Total processors under management.
    pub fn total_cpus(&self) -> u32 {
        self.entries.lock().iter().map(|e| e.info.cpus).sum()
    }

    /// Select resources for `count` processes. `explicit` restricts
    /// (and orders) the candidates. Distinguishes two failures so the
    /// job manager can queue: *transient* exhaustion (resources busy —
    /// retry later) and *permanent* impossibility (the request exceeds
    /// total capacity). Oversubscription is allowed only on explicit
    /// request.
    pub fn select(&self, count: u32, explicit: &[String]) -> io::Result<Vec<Allocation>> {
        if explicit.is_empty() && count > self.total_cpus() {
            return Err(io::Error::other(format!(
                "insufficient capacity permanently: {count} procs requested, {} managed",
                self.total_cpus()
            )));
        }
        let mut entries = self.entries.lock();
        let order: Vec<usize> = if explicit.is_empty() {
            // Implicit selection never places on a dead resource.
            let mut idx: Vec<usize> = (0..entries.len()).filter(|&i| entries[i].alive).collect();
            if self.policy == SelectPolicy::LeastLoaded {
                idx.sort_by(|&a, &b| {
                    let fa = f64::from(entries[a].load) / f64::from(entries[a].info.cpus.max(1));
                    let fb = f64::from(entries[b].load) / f64::from(entries[b].info.cpus.max(1));
                    fa.total_cmp(&fb)
                });
            }
            idx
        } else {
            let mut idx = Vec::new();
            for name in explicit {
                let pos = entries
                    .iter()
                    .position(|e| &e.info.name == name)
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::NotFound, format!("unknown resource {name}"))
                    })?;
                // Explicit placement on a dead resource is refused too:
                // the user named it, but nothing can run there.
                if !entries[pos].alive {
                    return Err(io::Error::other(format!("resource {name} is down")));
                }
                idx.push(pos);
            }
            idx
        };

        let mut remaining = count;
        let mut out = Vec::new();
        for (k, &i) in order.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let e = &entries[i];
            let free = e.info.cpus.saturating_sub(e.load);
            let is_last = k + 1 == order.len();
            // The last explicit resource absorbs any overflow
            // (explicit placement means the user knows best).
            let take = if is_last && !explicit.is_empty() {
                remaining
            } else {
                free.min(remaining)
            };
            if take > 0 {
                out.push(Allocation {
                    resource: e.info.name.clone(),
                    qserver_host: e.info.qserver_host.clone(),
                    count: take,
                });
                remaining -= take;
            }
        }
        if remaining > 0 {
            return Err(io::Error::other(format!(
                "insufficient capacity: {remaining} of {count} unplaced (resources busy)"
            )));
        }
        // Book the load now; Q servers report decrements on completion.
        for a in &out {
            if let Some(e) = entries.iter_mut().find(|e| e.info.name == a.resource) {
                e.load += a.count;
            }
        }
        Ok(out)
    }
}

/// The allocator daemon: socket front-end over [`AllocatorState`].
pub struct ResourceAllocator {
    pub state: AllocatorState,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    host: String,
}

impl ResourceAllocator {
    pub fn start(
        net: VNet,
        host: impl Into<String>,
        policy: SelectPolicy,
        trace: FlowTrace,
    ) -> io::Result<ResourceAllocator> {
        let host = host.into();
        let state = AllocatorState::new(policy);
        let listener = net.bind(&host, ALLOCATOR_PORT)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let t_state = state.clone();
        let t_shutdown = shutdown.clone();
        let accept_thread = thread::spawn(move || {
            let listener = listener;
            while !t_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let state = t_state.clone();
                        let trace = trace.clone();
                        thread::spawn(move || {
                            while let Ok(Some(req)) = Record::read_from(&mut stream) {
                                let reply = handle(&state, &trace, &req);
                                if reply.write_to(&mut stream).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1)); // lint:allow(bare-sleep) — nonblocking accept poll.
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ResourceAllocator {
            state,
            shutdown,
            accept_thread: Some(accept_thread),
            host,
        })
    }

    pub fn addr(&self) -> (String, u16) {
        (self.host.clone(), ALLOCATOR_PORT)
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for ResourceAllocator {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle(state: &AllocatorState, trace: &FlowTrace, req: &Record) -> Record {
    match req.kind() {
        "query" => {
            // `count` is required: a query without it used to default
            // to 0, which "succeeded" with an empty allocation and
            // produced a zero-CPU job downstream.
            let count = match req.require_u64("count") {
                Ok(c) if c > 0 && c <= u64::from(u32::MAX) => c as u32,
                Ok(c) => return Record::new("error").with("detail", format!("bad proc count {c}")),
                Err(e) => return Record::new("error").with("detail", e.to_string()),
            };
            let explicit: Vec<String> = req
                .get_all("resource")
                .iter()
                .map(ToString::to_string)
                .collect();
            trace.record(3, format!("Q client inquires allocator for {count} procs"));
            match state.select(count, &explicit) {
                Ok(allocs) => {
                    trace.record(
                        4,
                        format!(
                            "allocator selects: {}",
                            allocs
                                .iter()
                                .map(|a| format!("{}x{}", a.resource, a.count))
                                .collect::<Vec<_>>()
                                .join(" ")
                        ),
                    );
                    let mut rep = Record::new("allocation");
                    for a in &allocs {
                        rep.push(
                            "alloc",
                            format!("{}|{}|{}", a.resource, a.qserver_host, a.count),
                        );
                    }
                    rep
                }
                Err(e) => Record::new("error").with("detail", e.to_string()),
            }
        }
        "report" => {
            // Both fields are required; a report that cannot be parsed
            // used to become a silent no-op (delta 0 on resource "").
            let name = match req.require("resource") {
                Ok(n) => n.to_string(),
                Err(e) => return Record::new("error").with("detail", e.to_string()),
            };
            let delta: i64 = match req.require("delta").map(str::parse) {
                Ok(Ok(d)) => d,
                Ok(Err(_)) | Err(_) => {
                    return Record::new("error").with("detail", "missing or bad delta")
                }
            };
            match state.report(&name, delta) {
                Ok(()) => Record::new("ok"),
                Err(e) => Record::new("error").with("detail", e.to_string()),
            }
        }
        other => Record::new("error").with("detail", format!("unknown request {other}")),
    }
}

/// Parse the allocator's reply into allocations.
pub fn parse_allocation(rec: &Record) -> io::Result<Vec<Allocation>> {
    if rec.kind() == "error" {
        return Err(io::Error::other(
            rec.get("detail").unwrap_or("allocator error").to_string(),
        ));
    }
    let mut out = Vec::new();
    for a in rec.get_all("alloc") {
        let mut parts = a.split('|');
        let (Some(r), Some(h), Some(c)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad alloc entry",
            ));
        };
        out.push(Allocation {
            resource: r.to_string(),
            qserver_host: h.to_string(),
            count: c
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad alloc count"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(resources: &[(&str, u32)]) -> AllocatorState {
        let s = AllocatorState::new(SelectPolicy::LeastLoaded);
        for (name, cpus) in resources {
            s.register(ResourceInfo {
                name: name.to_string(),
                qserver_host: format!("{name}-fe"),
                cpus: *cpus,
            });
        }
        s
    }

    #[test]
    fn least_loaded_spreads() {
        let s = state_with(&[("A", 8), ("B", 8)]);
        let a1 = s.select(8, &[]).unwrap();
        assert_eq!(a1.len(), 1);
        assert_eq!(a1[0].count, 8);
        // A is now fully loaded; next allocation must land on B.
        let a2 = s.select(4, &[]).unwrap();
        assert_ne!(a2[0].resource, a1[0].resource);
    }

    #[test]
    fn allocation_spans_resources_when_needed() {
        let s = state_with(&[("A", 4), ("B", 8), ("C", 8)]);
        let allocs = s.select(20, &[]).unwrap();
        let total: u32 = allocs.iter().map(|a| a.count).sum();
        assert_eq!(total, 20);
        assert_eq!(allocs.len(), 3);
    }

    #[test]
    fn insufficient_capacity_fails() {
        let s = state_with(&[("A", 4)]);
        assert!(s.select(5, &[]).is_err());
        // And nothing was booked by the failed attempt.
        assert_eq!(s.load_of("A"), Some(0));
    }

    #[test]
    fn explicit_resources_respected_and_can_oversubscribe() {
        let s = state_with(&[("A", 4), ("B", 4)]);
        let allocs = s.select(6, &["B".to_string()]).unwrap();
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].resource, "B");
        assert_eq!(allocs[0].count, 6); // user said B; B absorbs all
        assert!(s.select(1, &["nope".to_string()]).is_err());
    }

    #[test]
    fn explicit_multi_resource_split() {
        // The paper's wide-area run: 4 on RWCP-Sun, 8 on COMPaS, 8 on
        // ETL-O2K.
        let s = state_with(&[("RWCP-Sun", 4), ("COMPaS", 8), ("ETL-O2K", 16)]);
        let allocs = s
            .select(
                20,
                &[
                    "RWCP-Sun".to_string(),
                    "COMPaS".to_string(),
                    "ETL-O2K".to_string(),
                ],
            )
            .unwrap();
        let counts: Vec<u32> = allocs.iter().map(|a| a.count).collect();
        assert_eq!(counts, vec![4, 8, 8]);
    }

    #[test]
    fn report_adjusts_load() {
        let s = state_with(&[("A", 8)]);
        s.select(6, &[]).unwrap();
        assert_eq!(s.load_of("A"), Some(6));
        s.report("A", -6).unwrap();
        assert_eq!(s.load_of("A"), Some(0));
    }

    #[test]
    fn report_underflow_is_an_accounting_error_not_a_clamp() {
        let s = state_with(&[("A", 8)]);
        s.select(3, &[]).unwrap();
        // A double release: -5 against a load of 3. The old code
        // clamped to zero, hiding the bug; now the ledger is left
        // untouched and the corruption is typed.
        let err = s.report("A", -5).unwrap_err();
        match err {
            RmfError::Accounting {
                resource,
                load,
                delta,
            } => {
                assert_eq!(resource, "A");
                assert_eq!(load, 3);
                assert_eq!(delta, -5);
            }
            other => panic!("expected Accounting, got {other}"),
        }
        assert_eq!(s.load_of("A"), Some(3), "load must be unchanged");
        assert!(matches!(s.report("nope", 1), Err(RmfError::Daemon(_))));
    }

    #[test]
    fn wire_report_and_query_reject_missing_fields() {
        let s = state_with(&[("A", 8)]);
        let trace = FlowTrace::default();
        // report without delta.
        let rep = handle(&s, &trace, &Record::new("report").with("resource", "A"));
        assert_eq!(rep.kind(), "error");
        // report without resource.
        let rep = handle(&s, &trace, &Record::new("report").with("delta", "1"));
        assert_eq!(rep.kind(), "error");
        // underflow surfaces over the wire too.
        let rep = handle(
            &s,
            &trace,
            &Record::new("report")
                .with("resource", "A")
                .with("delta", "-1"),
        );
        assert_eq!(rep.kind(), "error");
        assert!(rep.get("detail").unwrap_or("").contains("accounting bug"));
        // query without count (used to fabricate a 0-proc query).
        let rep = handle(&s, &trace, &Record::new("query"));
        assert_eq!(rep.kind(), "error");
        // query with count 0 is equally meaningless.
        let rep = handle(&s, &trace, &Record::new("query").with("count", "0"));
        assert_eq!(rep.kind(), "error");
        // a well-formed report still works.
        s.select(2, &[]).unwrap();
        let rep = handle(
            &s,
            &trace,
            &Record::new("report")
                .with("resource", "A")
                .with("delta", "-2"),
        );
        assert_eq!(rep.kind(), "ok");
        assert_eq!(s.load_of("A"), Some(0));
    }

    #[test]
    fn dead_resources_are_skipped_and_revived() {
        let s = state_with(&[("A", 8), ("B", 8)]);
        s.set_health("A", false).unwrap();
        assert_eq!(s.is_alive("A"), Some(false));
        // Implicit selection avoids the dead resource entirely.
        let allocs = s.select(8, &[]).unwrap();
        assert!(allocs.iter().all(|a| a.resource == "B"));
        // Explicitly naming a dead resource is refused.
        assert!(s.select(1, &["A".to_string()]).is_err());
        // More than the live capacity cannot be placed right now.
        assert!(s.select(9, &[]).is_err());
        // Recovery restores it as a candidate.
        s.set_health("A", true).unwrap();
        assert!(s.select(8, &[]).is_ok());
        assert!(matches!(
            s.set_health("nope", true),
            Err(RmfError::Daemon(_))
        ));
    }

    #[test]
    fn orphan_load_zeroes_a_dead_ledger() {
        let s = state_with(&[("A", 8)]);
        s.select(6, &[]).unwrap();
        assert_eq!(s.orphan_load("A").unwrap(), 6);
        assert_eq!(s.load_of("A"), Some(0));
        assert!(matches!(s.orphan_load("nope"), Err(RmfError::Daemon(_))));
    }

    #[test]
    fn allocation_record_roundtrip() {
        let allocs = vec![
            Allocation {
                resource: "A".into(),
                qserver_host: "a-fe".into(),
                count: 4,
            },
            Allocation {
                resource: "B".into(),
                qserver_host: "b-fe".into(),
                count: 16,
            },
        ];
        let mut rec = Record::new("allocation");
        for a in &allocs {
            rec.push(
                "alloc",
                format!("{}|{}|{}", a.resource, a.qserver_host, a.count),
            );
        }
        assert_eq!(parse_allocation(&rec).unwrap(), allocs);
        let err = Record::new("error").with("detail", "nope");
        assert!(parse_allocation(&err).is_err());
    }
}
