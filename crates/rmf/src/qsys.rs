//! The Q system: "a remote job execution mechanism using job queues"
//! (§2). A Q *server* runs on every computing resource inside the
//! firewall; a Q *client* is created by the job manager and drives
//! placement, staging and submission (Fig. 2 steps 2-6).

use crate::allocator::{parse_allocation, Allocation, ALLOCATOR_PORT};
use crate::error::{classify_daemon_error, RmfError};
use crate::exec::{run_processes, ExecRegistry};
use crate::gass::GassStore;
use crate::job::{FlowTrace, JobId, JobState};
use crate::rsl::JobRequest;
use crate::wire::Record;
use firewall::vnet::VNet;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use wacs_sync::OrderedMutex;

/// Well-known Q server port (one fixed inbound hole per resource).
pub const QSERVER_PORT: u16 = 2121;

#[derive(Debug, Clone)]
struct SubJob {
    state: JobState,
    exit: i32,
    stdout_url: String,
}

/// A running Q server.
pub struct QServer {
    host: String,
    resource: String,
    jobs: Arc<OrderedMutex<HashMap<(JobId, u32), SubJob>>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

struct QServerCtx {
    net: VNet,
    host: String,
    resource: String,
    registry: ExecRegistry,
    gass: GassStore,
    jobs: Arc<OrderedMutex<HashMap<(JobId, u32), SubJob>>>,
    allocator_host: String,
    trace: FlowTrace,
}

impl QServer {
    pub fn start(
        net: VNet,
        host: impl Into<String>,
        resource: impl Into<String>,
        registry: ExecRegistry,
        gass: GassStore,
        allocator_host: impl Into<String>,
        trace: FlowTrace,
    ) -> io::Result<QServer> {
        let host = host.into();
        let resource = resource.into();
        let listener = net.bind(&host, QSERVER_PORT)?;
        listener.set_nonblocking(true)?;
        let jobs = Arc::new(OrderedMutex::new("rmf.qsys.jobs", HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(QServerCtx {
            net,
            host: host.clone(),
            resource: resource.clone(),
            registry,
            gass,
            jobs: jobs.clone(),
            allocator_host: allocator_host.into(),
            trace,
        });
        let t_shutdown = shutdown.clone();
        let accept_thread = thread::spawn(move || {
            let listener = listener;
            while !t_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let ctx = ctx.clone();
                        thread::spawn(move || {
                            while let Ok(Some(req)) = Record::read_from(&mut stream) {
                                let reply = handle(&ctx, &req);
                                if reply.write_to(&mut stream).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1)); // lint:allow(bare-sleep) — nonblocking accept poll.
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(QServer {
            host,
            resource,
            jobs,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn addr(&self) -> (String, u16) {
        (self.host.clone(), QSERVER_PORT)
    }

    pub fn resource(&self) -> &str {
        &self.resource
    }

    /// Number of sub-jobs this server has accepted (diagnostics).
    pub fn accepted(&self) -> usize {
        self.jobs.lock().len()
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for QServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle(ctx: &Arc<QServerCtx>, req: &Record) -> Record {
    match req.kind() {
        // Supervisor liveness probe (see `crate::supervise`).
        "ping" => Record::new("pong").with("resource", &ctx.resource),
        "submit" => {
            let Ok(job) = req.require_u64("job") else {
                return Record::new("error").with("detail", "missing job id");
            };
            let job = JobId(job);
            // `part` and `count` are required. Defaulting a missing
            // part to 0 silently aliased it onto another sub-job, and
            // defaulting count to 1 fabricated a process count the
            // client never asked for.
            let Ok(part) = req.require_u64("part") else {
                return Record::new("error").with("detail", "missing part");
            };
            let part = part as u32;
            let Ok(executable) = req.require("executable") else {
                return Record::new("error").with("detail", "missing executable");
            };
            let executable = executable.to_string();
            let count = match req.require_u64("count") {
                Ok(c) if c > 0 => c as u32,
                Ok(_) => return Record::new("error").with("detail", "bad proc count 0"),
                Err(e) => return Record::new("error").with("detail", e.to_string()),
            };
            let args: Vec<String> = req.get_all("arg").iter().map(ToString::to_string).collect();
            // Staged files live in this host's GASS store already (the
            // Q client transferred them); the record names them.
            let mut files = HashMap::new();
            for f in req.get_all("file") {
                if let Some((name, path)) = f.split_once('|') {
                    if let Some(data) = ctx.gass.get(&ctx.host, path) {
                        files.insert(name.to_string(), data);
                    } else {
                        return Record::new("error")
                            .with("detail", format!("staged file missing: {path}"));
                    }
                }
            }
            let Some(exec) = ctx.registry.lookup(&executable) else {
                return Record::new("error")
                    .with("detail", format!("unknown executable {executable}"));
            };
            let stdout_url = format!("gass://{}/stdout/{}-{}", ctx.host, job, part);
            ctx.jobs.lock().insert(
                (job, part),
                SubJob {
                    state: JobState::Active,
                    exit: -1,
                    stdout_url: stdout_url.clone(),
                },
            );
            ctx.trace.record(
                6,
                format!(
                    "Q server on {} creates {count} job process(es) for {job}",
                    ctx.resource
                ),
            );
            let ctx2 = ctx.clone();
            thread::spawn(move || {
                let code = run_processes(
                    exec,
                    &ctx2.host,
                    count,
                    &args,
                    files,
                    &ctx2.gass,
                    &format!("stdout/{job}-{part}"),
                );
                let mut jobs = ctx2.jobs.lock();
                if let Some(sj) = jobs.get_mut(&(job, part)) {
                    sj.exit = code;
                    sj.state = if code == 0 {
                        JobState::Done
                    } else {
                        JobState::Failed
                    };
                }
                drop(jobs);
                // Release the booked load at the allocator.
                if let Ok(mut s) = ctx2
                    .net
                    .dial(&ctx2.host, &ctx2.allocator_host, ALLOCATOR_PORT)
                {
                    let _ = Record::new("report")
                        .with("resource", &ctx2.resource)
                        .with("delta", format!("-{count}"))
                        .write_to(&mut s);
                    let _ = Record::read_from(&mut s);
                }
            });
            Record::new("ack")
                .with("job", job.0.to_string())
                .with("stdout", stdout_url)
        }
        "status" => {
            // Both keys are required: the old defaults (job u64::MAX,
            // part 0) turned a malformed poll into a confident
            // "unknown job" — or worse, a hit on someone else's part 0.
            let (Ok(job), Ok(part)) = (req.require_u64("job"), req.require_u64("part")) else {
                return Record::new("error").with("detail", "missing job or part");
            };
            let job = JobId(job);
            let part = part as u32;
            match ctx.jobs.lock().get(&(job, part)) {
                Some(sj) => Record::new("status")
                    .with("state", sj.state.as_str())
                    .with("exit", sj.exit.to_string())
                    .with("stdout", &sj.stdout_url),
                None => Record::new("error").with("detail", "unknown job"),
            }
        }
        other => Record::new("error").with("detail", format!("unknown request {other}")),
    }
}

/// Retry knobs for allocator RPCs: transient transport failures (the
/// daemon restarting, a connection reset mid-exchange) are retried
/// with a fixed backoff until `deadline`, then surface as
/// [`RmfError::Timeout`] naming the last underlying error.
#[derive(Debug, Clone, Copy)]
pub struct RpcRetry {
    /// Total time budget across all attempts.
    pub deadline: Duration,
    /// Pause between attempts.
    pub backoff: Duration,
}

impl Default for RpcRetry {
    fn default() -> Self {
        RpcRetry {
            deadline: Duration::from_secs(2),
            backoff: Duration::from_millis(10),
        }
    }
}

/// Registry handles for the Q client's RPC service times. These time
/// the *real* wall-clock path (threads + virtual sockets), so they are
/// diagnostics — only the sim-side metrics are replay-deterministic.
struct QClientObs {
    /// One `allocate` call, including retries/backoff.
    allocate_ns: wacs_obs::Histogram,
    /// One `submit` call (staging + every part's submit round trip).
    submit_ns: wacs_obs::Histogram,
    /// One `status` poll across all parts.
    status_ns: wacs_obs::Histogram,
    rpc_retries: wacs_obs::Counter,
}

/// The Q client: placement + staging + submission + status tracking.
/// Created by a job manager; also usable standalone.
pub struct QClient {
    net: VNet,
    /// Logical host the client runs on (outside the firewall).
    pub host: String,
    allocator_host: String,
    gass: GassStore,
    trace: FlowTrace,
    rpc_retry: RpcRetry,
    obs: Option<QClientObs>,
}

/// A placed job the client is tracking.
#[derive(Debug, Clone)]
pub struct PlacedJob {
    pub job: JobId,
    pub parts: Vec<(Allocation, u32 /*part*/)>,
    pub stdout_urls: Vec<String>,
}

impl QClient {
    pub fn new(
        net: VNet,
        host: impl Into<String>,
        allocator_host: impl Into<String>,
        gass: GassStore,
        trace: FlowTrace,
    ) -> QClient {
        QClient {
            net,
            host: host.into(),
            allocator_host: allocator_host.into(),
            gass,
            trace,
            rpc_retry: RpcRetry::default(),
            obs: None,
        }
    }

    /// Override the allocator-RPC retry policy.
    #[must_use]
    pub fn with_rpc_retry(mut self, rpc_retry: RpcRetry) -> QClient {
        self.rpc_retry = rpc_retry;
        self
    }

    /// Record RPC service-time histograms under `rmf.qclient.*` in
    /// `registry`.
    #[must_use]
    pub fn with_obs(mut self, registry: &wacs_obs::Registry) -> QClient {
        self.obs = Some(QClientObs {
            allocate_ns: registry.histogram("rmf.qclient.allocate_ns"),
            submit_ns: registry.histogram("rmf.qclient.submit_ns"),
            status_ns: registry.histogram("rmf.qclient.status_ns"),
            rpc_retries: registry.counter("rmf.qclient.rpc_retries"),
        });
        self
    }

    /// Ask the allocator where to run (Fig. 2 steps 3-4).
    ///
    /// Transient transport failures (refused dial while the daemon
    /// restarts, reset mid-exchange, EOF before a reply) are retried
    /// until the [`RpcRetry`] deadline, then reported as
    /// [`RmfError::Timeout`]. Daemon refusals come back typed:
    /// [`RmfError::Busy`] is worth re-asking later,
    /// [`RmfError::Capacity`] never is.
    pub fn allocate(&self, req: &JobRequest) -> Result<Vec<Allocation>, RmfError> {
        let start = std::time::Instant::now();
        let res = self.allocate_loop(req, start);
        if let Some(o) = &self.obs {
            o.allocate_ns.record(start.elapsed().as_nanos() as u64);
        }
        res
    }

    /// The retry loop behind [`QClient::allocate`], with the caller's
    /// start instant so the deadline spans the whole call.
    fn allocate_loop(
        &self,
        req: &JobRequest,
        start: std::time::Instant,
    ) -> Result<Vec<Allocation>, RmfError> {
        loop {
            let last = match self.try_allocate(req) {
                Ok(allocs) => return Ok(allocs),
                // Malformed data and daemon refusals are not transport
                // flakes; retrying cannot change the answer.
                Err(RmfError::Io(e)) if e.kind() != io::ErrorKind::InvalidData => e,
                Err(e) => return Err(e),
            };
            if start.elapsed() >= self.rpc_retry.deadline {
                return Err(RmfError::Timeout {
                    what: "allocator query",
                    elapsed: start.elapsed(),
                    last,
                });
            }
            if let Some(o) = &self.obs {
                o.rpc_retries.inc();
            }
            thread::sleep(self.rpc_retry.backoff); // lint:allow(bare-sleep) — bounded RPC retry backoff.
        }
    }

    /// One allocator round trip.
    fn try_allocate(&self, req: &JobRequest) -> Result<Vec<Allocation>, RmfError> {
        let mut s = self
            .net
            .dial(&self.host, &self.allocator_host, ALLOCATOR_PORT)?;
        let mut q = Record::new("query").with("count", req.count.to_string());
        for r in &req.resources {
            q.push("resource", r);
        }
        q.write_to(&mut s)?;
        let rep = Record::read_from(&mut s)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "allocator hung up"))?;
        if rep.kind() == "error" {
            return Err(classify_daemon_error(
                rep.get("detail").unwrap_or("allocator error"),
            ));
        }
        parse_allocation(&rep).map_err(RmfError::Io)
    }

    /// Stage inputs and submit every part (Fig. 2 steps 5-6). Returns
    /// the placed job handle.
    pub fn submit(
        &self,
        job: JobId,
        req: &JobRequest,
        allocs: Vec<Allocation>,
    ) -> io::Result<PlacedJob> {
        let start = std::time::Instant::now();
        let mut placed = PlacedJob {
            job,
            parts: Vec::new(),
            stdout_urls: Vec::new(),
        };
        for (part, alloc) in allocs.into_iter().enumerate() {
            let part = part as u32;
            // Stage inputs to the target host's store.
            let mut file_fields = Vec::new();
            for (name, url) in &req.stage_in {
                let to_path = format!("staged/{}/{}", job, name);
                self.gass.transfer(url, &alloc.qserver_host, &to_path)?;
                file_fields.push(format!("{name}|{to_path}"));
            }
            let mut s = self
                .net
                .dial(&self.host, &alloc.qserver_host, QSERVER_PORT)?;
            self.trace.record(
                5,
                format!(
                    "Q client submits {job} part {part} ({} procs) to {}",
                    alloc.count, alloc.resource
                ),
            );
            let mut rec = Record::new("submit")
                .with("job", job.0.to_string())
                .with("part", part.to_string())
                .with("executable", &req.executable)
                .with("count", alloc.count.to_string());
            for a in &req.arguments {
                rec.push("arg", a);
            }
            for f in &file_fields {
                rec.push("file", f.clone());
            }
            rec.write_to(&mut s)?;
            let rep = Record::read_from(&mut s)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "q server hung up"))?;
            if rep.kind() != "ack" {
                return Err(io::Error::other(
                    rep.get("detail").unwrap_or("submit failed").to_string(),
                ));
            }
            placed
                .stdout_urls
                .push(rep.get("stdout").unwrap_or_default().to_string());
            placed.parts.push((alloc, part));
        }
        if let Some(o) = &self.obs {
            o.submit_ns.record(start.elapsed().as_nanos() as u64);
        }
        Ok(placed)
    }

    /// Poll every part once; aggregate the job state.
    pub fn status(&self, placed: &PlacedJob) -> io::Result<(JobState, i32)> {
        let start = std::time::Instant::now();
        let res = self.status_inner(placed);
        if let Some(o) = &self.obs {
            o.status_ns.record(start.elapsed().as_nanos() as u64);
        }
        res
    }

    fn status_inner(&self, placed: &PlacedJob) -> io::Result<(JobState, i32)> {
        let mut all_done = true;
        let mut worst = 0i32;
        for (alloc, part) in &placed.parts {
            let mut s = self
                .net
                .dial(&self.host, &alloc.qserver_host, QSERVER_PORT)?;
            Record::new("status")
                .with("job", placed.job.0.to_string())
                .with("part", part.to_string())
                .write_to(&mut s)?;
            let rep = Record::read_from(&mut s)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "q server hung up"))?;
            if rep.kind() != "status" {
                return Err(io::Error::other("status failed"));
            }
            let st = JobState::parse(rep.get("state").unwrap_or(""))
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad state"))?;
            let exit: i32 = rep.get("exit").and_then(|e| e.parse().ok()).unwrap_or(-1);
            match st {
                JobState::Done => worst = worst.max(exit.abs()),
                JobState::Failed => return Ok((JobState::Failed, exit)),
                _ => all_done = false,
            }
        }
        if all_done {
            Ok((
                if worst == 0 {
                    JobState::Done
                } else {
                    JobState::Failed
                },
                worst,
            ))
        } else {
            Ok((JobState::Active, 0))
        }
    }

    /// Block (polling) until the job reaches a terminal state.
    pub fn wait(&self, placed: &PlacedJob, timeout: Duration) -> io::Result<(JobState, i32)> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let (st, code) = self.status(placed)?;
            if st.is_terminal() {
                return Ok((st, code));
            }
            if std::time::Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "job wait timed out",
                ));
            }
            thread::sleep(Duration::from_millis(5)); // lint:allow(bare-sleep) — deadline-bounded poll.
        }
    }
}
