//! The executable registry: the stand-in for `fork`/`exec`.
//!
//! A real Q server forks job processes from binaries on disk. Here an
//! "executable" is a registered Rust closure; the Q server runs one
//! thread per requested process. The closure receives an [`ExecCtx`]
//! with its argv, staged files, a stdout sink, and the identity of the
//! host it "runs" on — enough for jobs to start MPI ranks over the
//! virtual network.

use crate::gass::GassStore;
use std::collections::HashMap;
use std::sync::Arc;
use wacs_sync::Mutex;

/// Execution context handed to a job process.
pub struct ExecCtx {
    /// Logical host this process runs on.
    pub host: String,
    /// Process index within the job (0-based) and total count.
    pub proc_index: u32,
    pub proc_count: u32,
    pub args: Vec<String>,
    /// Staged input files by name.
    pub files: HashMap<String, Vec<u8>>,
    stdout: Arc<Mutex<Vec<u8>>>,
}

impl ExecCtx {
    pub fn println(&self, line: impl AsRef<str>) {
        let mut out = self.stdout.lock();
        out.extend_from_slice(line.as_ref().as_bytes());
        out.push(b'\n');
    }

    pub fn write(&self, bytes: &[u8]) {
        self.stdout.lock().extend_from_slice(bytes);
    }
}

/// Exit status of one process.
pub type ExitCode = i32;

/// An executable body. Must be thread-safe: the Q server runs `count`
/// instances concurrently.
pub type ExecFn = Arc<dyn Fn(ExecCtx) -> ExitCode + Send + Sync>;

/// Name → executable mapping, shared by all Q servers of a deployment
/// (the analogue of identical NFS-mounted binaries).
#[derive(Clone, Default)]
pub struct ExecRegistry {
    map: Arc<Mutex<HashMap<String, ExecFn>>>,
}

impl ExecRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register<F>(&self, name: &str, f: F)
    where
        F: Fn(ExecCtx) -> ExitCode + Send + Sync + 'static,
    {
        self.map.lock().insert(name.to_string(), Arc::new(f));
    }

    pub fn lookup(&self, name: &str) -> Option<ExecFn> {
        self.map.lock().get(name).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

/// Run `count` processes of `exec` on `host`, collecting a combined
/// stdout and the worst exit code. Used by the Q server.
pub fn run_processes(
    exec: ExecFn,
    host: &str,
    count: u32,
    args: &[String],
    files: HashMap<String, Vec<u8>>,
    gass: &GassStore,
    stdout_path: &str,
) -> ExitCode {
    let stdout = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for i in 0..count {
        let exec = exec.clone();
        let ctx = ExecCtx {
            host: host.to_string(),
            proc_index: i,
            proc_count: count,
            args: args.to_vec(),
            files: files.clone(),
            stdout: stdout.clone(),
        };
        handles.push(std::thread::spawn(move || exec(ctx)));
    }
    let mut worst = 0;
    for h in handles {
        match h.join() {
            Ok(code) => worst = worst.max(code.abs()),
            Err(_) => worst = worst.max(125), // panicked process
        }
    }
    // Stage captured stdout back into GASS (the paper: GASS "uses
    // files for input/output").
    gass.put(host, stdout_path, stdout.lock().clone());
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_run() {
        let reg = ExecRegistry::new();
        reg.register("hello", |ctx: ExecCtx| {
            ctx.println(format!("hello from {}/{}", ctx.proc_index, ctx.proc_count));
            0
        });
        assert_eq!(reg.names(), vec!["hello"]);
        let gass = GassStore::new();
        let code = run_processes(
            reg.lookup("hello").unwrap(),
            "compas0",
            3,
            &[],
            HashMap::new(),
            &gass,
            "out/job1",
        );
        assert_eq!(code, 0);
        let out = String::from_utf8(gass.get("compas0", "out/job1").unwrap()).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("/3"));
    }

    #[test]
    fn worst_exit_code_wins() {
        let reg = ExecRegistry::new();
        reg.register(
            "flaky",
            |ctx: ExecCtx| if ctx.proc_index == 1 { 7 } else { 0 },
        );
        let gass = GassStore::new();
        let code = run_processes(
            reg.lookup("flaky").unwrap(),
            "h",
            3,
            &[],
            HashMap::new(),
            &gass,
            "out/x",
        );
        assert_eq!(code, 7);
    }

    #[test]
    fn panicking_process_reports_failure() {
        let reg = ExecRegistry::new();
        reg.register("boom", |_| panic!("crash"));
        let gass = GassStore::new();
        let code = run_processes(
            reg.lookup("boom").unwrap(),
            "h",
            1,
            &[],
            HashMap::new(),
            &gass,
            "out/x",
        );
        assert_eq!(code, 125);
    }

    #[test]
    fn args_and_files_reach_the_process() {
        let reg = ExecRegistry::new();
        reg.register("cat", |ctx: ExecCtx| {
            let name = &ctx.args[0];
            ctx.write(ctx.files.get(name).map_or(&b"?"[..], Vec::as_slice));
            0
        });
        let gass = GassStore::new();
        let mut files = HashMap::new();
        files.insert("in.txt".to_string(), b"payload".to_vec());
        run_processes(
            reg.lookup("cat").unwrap(),
            "h",
            1,
            &["in.txt".to_string()],
            files,
            &gass,
            "out/cat",
        );
        assert_eq!(gass.get("h", "out/cat").unwrap(), b"payload");
    }
}
