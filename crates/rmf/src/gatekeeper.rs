//! The gatekeeper and job manager: the GRAM-compatible front door of
//! RMF, running **outside** the firewall (Fig. 2 steps 0-2).
//!
//! A job request arrives at the gatekeeper (step 1), which
//! authenticates the subject (GSI is stubbed to a subject allowlist —
//! the paper does not evaluate authentication) and forks a job manager
//! (step 2), which creates a Q client to place and drive the job.

use crate::error::RmfError;
use crate::gass::GassStore;
use crate::job::{FlowTrace, JobId, JobState};
use crate::qsys::QClient;
use crate::rsl::{self, JobRequest};
use crate::wire::Record;
use firewall::vnet::VNet;
use firewall::GATEKEEPER_PORT;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use wacs_sync::Mutex;

/// Tracked status of one job.
#[derive(Debug, Clone)]
pub struct JobInfo {
    pub state: JobState,
    pub detail: String,
    pub exit: i32,
    pub stdout_urls: Vec<String>,
}

/// A running gatekeeper.
pub struct Gatekeeper {
    host: String,
    jobs: Arc<Mutex<HashMap<JobId, JobInfo>>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

struct GkCtx {
    net: VNet,
    host: String,
    allowed: Vec<String>,
    allocator_host: String,
    gass: GassStore,
    trace: FlowTrace,
    jobs: Arc<Mutex<HashMap<JobId, JobInfo>>>,
    // Job-ID generator, not a metric. lint:allow(bare-atomic-counter)
    next_job: AtomicU64,
}

impl Gatekeeper {
    /// Start a gatekeeper on `host` (must be outside the firewall so
    /// remote users can reach it). `allowed` is the subject allowlist.
    pub fn start(
        net: VNet,
        host: impl Into<String>,
        allowed: Vec<String>,
        allocator_host: impl Into<String>,
        gass: GassStore,
        trace: FlowTrace,
    ) -> io::Result<Gatekeeper> {
        let host = host.into();
        let listener = net.bind(&host, GATEKEEPER_PORT)?;
        listener.set_nonblocking(true)?;
        let jobs = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(GkCtx {
            net,
            host: host.clone(),
            allowed,
            allocator_host: allocator_host.into(),
            gass,
            trace,
            jobs: jobs.clone(),
            next_job: AtomicU64::new(1), // lint:allow(bare-atomic-counter)
        });
        let t_shutdown = shutdown.clone();
        let accept_thread = thread::spawn(move || {
            let listener = listener;
            while !t_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let ctx = ctx.clone();
                        thread::spawn(move || {
                            while let Ok(Some(req)) = Record::read_from(&mut stream) {
                                let reply = handle(&ctx, &req);
                                if reply.write_to(&mut stream).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1)); // lint:allow(bare-sleep) — nonblocking accept poll.
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Gatekeeper {
            host,
            jobs,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn addr(&self) -> (String, u16) {
        (self.host.clone(), GATEKEEPER_PORT)
    }

    pub fn job_info(&self, job: JobId) -> Option<JobInfo> {
        self.jobs.lock().get(&job).cloned()
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for Gatekeeper {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle(ctx: &Arc<GkCtx>, req: &Record) -> Record {
    match req.kind() {
        "submit" => {
            let subject = req.get("subject").unwrap_or("");
            if !ctx.allowed.iter().any(|s| s == subject) {
                return Record::new("denied")
                    .with("detail", format!("subject not authorized: {subject}"));
            }
            let rsl_text = req.get("rsl").unwrap_or("");
            let parsed = match rsl::parse(rsl_text) {
                Ok(p) => p,
                Err(e) => return Record::new("denied").with("detail", e.to_string()),
            };
            let job = JobId(ctx.next_job.fetch_add(1, Ordering::Relaxed));
            ctx.trace
                .record(1, format!("job request submitted to gatekeeper ({job})"));
            ctx.jobs.lock().insert(
                job,
                JobInfo {
                    state: JobState::Pending,
                    detail: String::new(),
                    exit: -1,
                    stdout_urls: Vec::new(),
                },
            );
            let ctx2 = ctx.clone();
            thread::spawn(move || job_manager(ctx2, job, parsed));
            Record::new("accepted").with("job", job.0.to_string())
        }
        "status" => {
            // A malformed job id is a protocol error, not an unknown
            // job — don't fabricate a sentinel id for the lookup.
            let job = match req.require_u64("job") {
                Ok(j) => JobId(j),
                Err(e) => return Record::new("error").with("detail", e.to_string()),
            };
            match ctx.jobs.lock().get(&job) {
                Some(info) => {
                    let mut r = Record::new("status")
                        .with("state", info.state.as_str())
                        .with("exit", info.exit.to_string())
                        .with("detail", &info.detail);
                    for u in &info.stdout_urls {
                        r.push("stdout", u);
                    }
                    r
                }
                None => Record::new("error").with("detail", "unknown job"),
            }
        }
        other => Record::new("error").with("detail", format!("unknown request {other}")),
    }
}

/// The job manager thread: "The job manager invoked by the gatekeeper
/// creates a Q client process" and drives it to completion.
fn job_manager(ctx: Arc<GkCtx>, job: JobId, req: JobRequest) {
    ctx.trace
        .record(2, format!("job manager creates Q client for {job}"));
    let qc = QClient::new(
        ctx.net.clone(),
        ctx.host.clone(),
        ctx.allocator_host.clone(),
        ctx.gass.clone(),
        ctx.trace.clone(),
    );
    let fail = |detail: String| {
        let mut jobs = ctx.jobs.lock();
        if let Some(info) = jobs.get_mut(&job) {
            info.state = JobState::Failed;
            info.detail = detail;
        }
    };
    // The Q system is a *queuing* system: a job whose resources are
    // busy waits (state Pending) and retries placement until capacity
    // frees up. Requests that can never fit (beyond total capacity)
    // fail immediately rather than queue forever; transport-level
    // retry lives inside `QClient::allocate` itself.
    let allocs = {
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        loop {
            match qc.allocate(&req) {
                Ok(a) => break a,
                Err(e @ RmfError::Busy(_)) => {
                    if std::time::Instant::now() > deadline {
                        return fail(format!("allocation timed out: {e}"));
                    }
                    thread::sleep(Duration::from_millis(10)); // lint:allow(bare-sleep) — deadline-bounded retry.
                }
                Err(e) => return fail(format!("allocation failed: {e}")),
            }
        }
    };
    let placed = match qc.submit(job, &req, allocs) {
        Ok(p) => p,
        Err(e) => return fail(format!("submit failed: {e}")),
    };
    {
        let mut jobs = ctx.jobs.lock();
        if let Some(info) = jobs.get_mut(&job) {
            info.state = JobState::Active;
            info.stdout_urls = placed.stdout_urls.clone();
        }
    }
    match qc.wait(&placed, Duration::from_secs(300)) {
        Ok((state, exit)) => {
            let mut jobs = ctx.jobs.lock();
            if let Some(info) = jobs.get_mut(&job) {
                info.state = state;
                info.exit = exit;
            }
        }
        Err(e) => fail(format!("wait failed: {e}")),
    }
}

/// Client-side helper: submit an RSL job to a gatekeeper.
pub fn submit_job(
    net: &VNet,
    from_host: &str,
    gk: (&str, u16),
    subject: &str,
    rsl: &str,
) -> io::Result<JobId> {
    let mut s = net.dial(from_host, gk.0, gk.1)?;
    Record::new("submit")
        .with("subject", subject)
        .with("rsl", rsl)
        .write_to(&mut s)?;
    let rep = Record::read_from(&mut s)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "gatekeeper hung up"))?;
    match rep.kind() {
        "accepted" => Ok(JobId(rep.require_u64("job")?)),
        _ => Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            rep.get("detail").unwrap_or("submit denied").to_string(),
        )),
    }
}

/// Client-side helper: poll a job's status at the gatekeeper.
pub fn job_status(
    net: &VNet,
    from_host: &str,
    gk: (&str, u16),
    job: JobId,
) -> io::Result<(JobState, i32, Vec<String>)> {
    let mut s = net.dial(from_host, gk.0, gk.1)?;
    Record::new("status")
        .with("job", job.0.to_string())
        .write_to(&mut s)?;
    let rep = Record::read_from(&mut s)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "gatekeeper hung up"))?;
    if rep.kind() != "status" {
        return Err(io::Error::other(
            rep.get("detail").unwrap_or("status failed").to_string(),
        ));
    }
    let state = JobState::parse(rep.get("state").unwrap_or(""))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad state"))?;
    let exit: i32 = rep.get("exit").and_then(|e| e.parse().ok()).unwrap_or(-1);
    let stdout = rep
        .get_all("stdout")
        .iter()
        .map(ToString::to_string)
        .collect();
    Ok((state, exit, stdout))
}

/// Client-side helper: wait for a terminal state.
pub fn wait_job(
    net: &VNet,
    from_host: &str,
    gk: (&str, u16),
    job: JobId,
    timeout: Duration,
) -> io::Result<(JobState, i32, Vec<String>)> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let (state, exit, stdout) = job_status(net, from_host, gk, job)?;
        if state.is_terminal() {
            return Ok((state, exit, stdout));
        }
        if std::time::Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "job never finished",
            ));
        }
        thread::sleep(Duration::from_millis(5)); // lint:allow(bare-sleep) — deadline-bounded poll.
    }
}
