//! Q-server supervision: liveness probes, death detection, and job
//! re-queueing.
//!
//! The allocator's ledger assumes every registered Q server is alive;
//! a crashed front-end would otherwise keep soaking up allocations
//! forever (its booked load is never released, and `select` keeps
//! placing work on it). [`QSupervisor`] closes that gap: it pings each
//! watched Q server's control port, counts consecutive misses, and on
//! crossing the threshold marks the resource dead
//! ([`AllocatorState::set_health`]), zeroes its orphaned ledger
//! ([`AllocatorState::orphan_load`]), and re-queues the jobs it was
//! tracking there onto surviving resources. A later successful probe
//! marks the resource alive again.
//!
//! Probing is pull-based and explicit — [`QSupervisor::check_once`]
//! performs exactly one sweep and returns a [`CheckReport`] — so tests
//! (and a periodic driver thread, if a deployment wants one) control
//! the clock; the supervisor itself never spawns threads or sleeps.

use crate::allocator::{Allocation, AllocatorState};
use crate::error::{classify_daemon_error, RmfError};
use crate::job::JobId;
use crate::qsys::QSERVER_PORT;
use crate::wire::Record;
use firewall::vnet::VNet;
use std::collections::HashMap;
use std::time::Duration;
use wacs_obs::{Counter, Registry};

/// Supervision knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Read deadline for one ping round-trip.
    pub probe_timeout: Duration,
    /// Consecutive missed probes before a resource is declared dead.
    pub miss_threshold: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            probe_timeout: Duration::from_millis(250),
            miss_threshold: 3,
        }
    }
}

/// A job moved off a dead resource onto survivors.
#[derive(Debug, Clone)]
pub struct RequeuedJob {
    pub job: JobId,
    /// The resource whose Q server died.
    pub from: String,
    /// Replacement placement (booked at the allocator).
    pub to: Vec<Allocation>,
}

/// Outcome of one supervision sweep.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Resources probed this sweep.
    pub probed: usize,
    /// Resources newly declared dead this sweep.
    pub deaths: Vec<String>,
    /// Resources newly declared alive this sweep.
    pub recoveries: Vec<String>,
    /// Jobs successfully moved off dead resources.
    pub requeued: Vec<RequeuedJob>,
    /// Jobs that could not be re-placed (no surviving capacity); each
    /// carries the typed refusal — [`RmfError::Daemon`] for a dead
    /// explicit target, [`RmfError::Busy`]/[`RmfError::Capacity`] for
    /// exhaustion.
    pub failures: Vec<(JobId, RmfError)>,
}

struct Watch {
    resource: String,
    qserver_host: String,
    misses: u32,
    alive: bool,
}

struct TrackedJob {
    job: JobId,
    count: u32,
}

struct SupObs {
    health_checks: Counter,
    qserver_deaths: Counter,
    qserver_recoveries: Counter,
    jobs_requeued: Counter,
    requeue_failures: Counter,
}

/// Health-checks Q servers on behalf of the allocator and re-queues
/// work away from dead ones. See the module docs for the model.
pub struct QSupervisor {
    net: VNet,
    /// Logical host the supervisor probes from (normally the
    /// allocator's own host, which sits inside the firewall with the
    /// Q servers).
    host: String,
    state: AllocatorState,
    cfg: SupervisorConfig,
    watched: Vec<Watch>,
    /// resource name → jobs currently placed there.
    tracked: HashMap<String, Vec<TrackedJob>>,
    obs: Option<SupObs>,
}

impl QSupervisor {
    pub fn new(
        net: VNet,
        host: impl Into<String>,
        state: AllocatorState,
        cfg: SupervisorConfig,
    ) -> Self {
        QSupervisor {
            net,
            host: host.into(),
            state,
            cfg,
            watched: Vec::new(),
            tracked: HashMap::new(),
            obs: None,
        }
    }

    /// Record supervision counters under `rmf.supervisor.*`.
    #[must_use]
    pub fn with_obs(mut self, registry: &Registry) -> Self {
        let c = |n: &str| registry.counter(&format!("rmf.supervisor.{n}"));
        self.obs = Some(SupObs {
            health_checks: c("health_checks"),
            qserver_deaths: c("qserver_deaths"),
            qserver_recoveries: c("qserver_recoveries"),
            jobs_requeued: c("jobs_requeued"),
            requeue_failures: c("requeue_failures"),
        });
        self
    }

    /// Start probing `resource`'s Q server at `qserver_host`. A watch
    /// begins in the alive state with zero misses.
    pub fn watch(&mut self, resource: impl Into<String>, qserver_host: impl Into<String>) {
        self.watched.push(Watch {
            resource: resource.into(),
            qserver_host: qserver_host.into(),
            misses: 0,
            alive: true,
        });
    }

    /// Remember that `job` runs `count` processes on `resource`, so it
    /// can be re-queued if that resource's Q server dies.
    pub fn track(&mut self, resource: impl Into<String>, job: JobId, count: u32) {
        self.tracked
            .entry(resource.into())
            .or_default()
            .push(TrackedJob { job, count });
    }

    /// Forget a finished job (stops it from being re-queued later).
    pub fn untrack(&mut self, resource: &str, job: JobId) {
        if let Some(jobs) = self.tracked.get_mut(resource) {
            jobs.retain(|t| t.job != job);
        }
    }

    /// Jobs currently tracked on `resource` (diagnostics).
    pub fn tracked_on(&self, resource: &str) -> Vec<JobId> {
        self.tracked
            .get(resource)
            .map(|v| v.iter().map(|t| t.job).collect())
            .unwrap_or_default()
    }

    /// One ping round-trip to a Q server; `Ok` means it answered with
    /// a well-formed `pong`.
    fn probe(&self, qserver_host: &str) -> Result<(), RmfError> {
        let mut s = self
            .net
            .dial(&self.host, qserver_host, QSERVER_PORT)
            .map_err(RmfError::Io)?;
        s.set_read_timeout(Some(self.cfg.probe_timeout))
            .map_err(RmfError::Io)?;
        Record::new("ping").write_to(&mut s).map_err(RmfError::Io)?;
        match Record::read_from(&mut s).map_err(RmfError::Io)? {
            Some(rep) if rep.kind() == "pong" => Ok(()),
            Some(rep) => Err(RmfError::Daemon(format!(
                "unexpected probe reply {:?}",
                rep.kind()
            ))),
            None => Err(RmfError::Daemon("probe connection closed".into())),
        }
    }

    /// Probe every watched Q server once, applying death/recovery
    /// transitions and re-queueing jobs off newly dead resources.
    pub fn check_once(&mut self) -> CheckReport {
        let mut report = CheckReport::default();
        let mut died: Vec<String> = Vec::new();
        for i in 0..self.watched.len() {
            let (resource, qserver_host, was_alive) = {
                let w = &self.watched[i];
                (w.resource.clone(), w.qserver_host.clone(), w.alive)
            };
            report.probed += 1;
            if let Some(o) = &self.obs {
                o.health_checks.inc();
            }
            let up = self.probe(&qserver_host).is_ok();
            let w = &mut self.watched[i];
            if up {
                w.misses = 0;
                if !was_alive {
                    w.alive = true;
                    let _ = self.state.set_health(&resource, true);
                    report.recoveries.push(resource.clone());
                    if let Some(o) = &self.obs {
                        o.qserver_recoveries.inc();
                    }
                }
            } else {
                w.misses += 1;
                if was_alive && w.misses >= self.cfg.miss_threshold {
                    w.alive = false;
                    died.push(resource);
                }
            }
        }
        for resource in died {
            self.declare_dead(&resource, &mut report);
        }
        report
    }

    /// Death transition: mark dead at the allocator, zero the orphaned
    /// ledger, and move tracked jobs to surviving resources.
    fn declare_dead(&mut self, resource: &str, report: &mut CheckReport) {
        let _ = self.state.set_health(resource, false);
        let _ = self.state.orphan_load(resource);
        report.deaths.push(resource.to_string());
        if let Some(o) = &self.obs {
            o.qserver_deaths.inc();
        }
        for t in self.tracked.remove(resource).unwrap_or_default() {
            // Implicit selection skips dead resources, so this books
            // the replacement load on survivors only.
            match self.state.select(t.count, &[]) {
                Ok(to) => {
                    for slice in &to {
                        self.track(slice.resource.clone(), t.job, slice.count);
                    }
                    report.requeued.push(RequeuedJob {
                        job: t.job,
                        from: resource.to_string(),
                        to,
                    });
                    if let Some(o) = &self.obs {
                        o.jobs_requeued.inc();
                    }
                }
                Err(e) => {
                    report
                        .failures
                        .push((t.job, classify_daemon_error(&e.to_string())));
                    if let Some(o) = &self.obs {
                        o.requeue_failures.inc();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{ResourceInfo, SelectPolicy};
    use crate::exec::ExecRegistry;
    use crate::gass::GassStore;
    use crate::job::FlowTrace;
    use crate::qsys::QServer;
    use crate::rmf_site_policy;

    fn two_resource_site() -> (VNet, AllocatorState, Vec<QServer>) {
        let net = VNet::new();
        let inside = net.add_site("rwcp", None);
        let alloc_ref = net.add_host("alloc-host", inside);
        let a_ref = net.add_host("fe-a", inside);
        let b_ref = net.add_host("fe-b", inside);
        net.reload_policy(
            inside,
            rmf_site_policy(
                "rwcp",
                &[
                    (alloc_ref, crate::allocator::ALLOCATOR_PORT),
                    (a_ref, QSERVER_PORT),
                    (b_ref, QSERVER_PORT),
                ],
            ),
        );
        let state = AllocatorState::new(SelectPolicy::FirstFit);
        state.register(ResourceInfo {
            name: "A".into(),
            qserver_host: "fe-a".into(),
            cpus: 8,
        });
        state.register(ResourceInfo {
            name: "B".into(),
            qserver_host: "fe-b".into(),
            cpus: 8,
        });
        let registry = ExecRegistry::new();
        let gass = GassStore::new();
        let trace = FlowTrace::new();
        let qs = vec![
            QServer::start(
                net.clone(),
                "fe-a",
                "A",
                registry.clone(),
                gass.clone(),
                "alloc-host",
                trace.clone(),
            )
            .unwrap(),
            QServer::start(
                net.clone(),
                "fe-b",
                "B",
                registry.clone(),
                gass,
                "alloc-host",
                trace,
            )
            .unwrap(),
        ];
        (net, state, qs)
    }

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            probe_timeout: Duration::from_millis(200),
            miss_threshold: 2,
        }
    }

    #[test]
    fn live_qservers_answer_probes() {
        let (net, state, _qs) = two_resource_site();
        let mut sup = QSupervisor::new(net, "alloc-host", state.clone(), cfg());
        sup.watch("A", "fe-a");
        sup.watch("B", "fe-b");
        let rep = sup.check_once();
        assert_eq!(rep.probed, 2);
        assert!(rep.deaths.is_empty() && rep.recoveries.is_empty());
        assert_eq!(state.is_alive("A"), Some(true));
    }

    #[test]
    fn death_requeues_jobs_and_recovery_restores_health() {
        let (net, state, mut qs) = two_resource_site();
        let registry = wacs_obs::Registry::new();
        let mut sup =
            QSupervisor::new(net.clone(), "alloc-host", state.clone(), cfg()).with_obs(&registry);
        sup.watch("A", "fe-a");
        sup.watch("B", "fe-b");

        // Place a 4-proc job on A and book its load.
        let placed = state.select(4, &["A".to_string()]).unwrap();
        assert_eq!(placed[0].resource, "A");
        sup.track("A", JobId(7), 4);

        // Kill A's Q server; one miss is below the threshold.
        qs.remove(0);
        let rep = sup.check_once();
        assert!(rep.deaths.is_empty());
        assert_eq!(state.is_alive("A"), Some(true));

        // Second consecutive miss crosses it: A dies, its ledger is
        // orphaned, and the job lands on B.
        let rep = sup.check_once();
        assert_eq!(rep.deaths, vec!["A".to_string()]);
        assert_eq!(state.is_alive("A"), Some(false));
        assert_eq!(state.load_of("A"), Some(0));
        assert_eq!(rep.requeued.len(), 1);
        assert_eq!(rep.requeued[0].job, JobId(7));
        assert_eq!(rep.requeued[0].to[0].resource, "B");
        assert_eq!(state.load_of("B"), Some(4));
        assert_eq!(sup.tracked_on("B"), vec![JobId(7)]);
        assert!(sup.tracked_on("A").is_empty());

        // Restart A's Q server: next sweep records a recovery.
        let exec = ExecRegistry::new();
        qs.push(
            QServer::start(
                net,
                "fe-a",
                "A",
                exec,
                GassStore::new(),
                "alloc-host",
                FlowTrace::new(),
            )
            .unwrap(),
        );
        let rep = sup.check_once();
        assert_eq!(rep.recoveries, vec!["A".to_string()]);
        assert_eq!(state.is_alive("A"), Some(true));

        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("rmf.supervisor.qserver_deaths"), Some(&1));
        assert_eq!(
            snap.counters.get("rmf.supervisor.qserver_recoveries"),
            Some(&1)
        );
        assert_eq!(snap.counters.get("rmf.supervisor.jobs_requeued"), Some(&1));
        assert_eq!(snap.counters.get("rmf.supervisor.health_checks"), Some(&6));
    }

    #[test]
    fn requeue_without_capacity_surfaces_typed_failure() {
        let (net, state, mut qs) = two_resource_site();
        let mut sup = QSupervisor::new(net, "alloc-host", state.clone(), cfg());
        sup.watch("A", "fe-a");
        // Fill B completely so nothing can absorb A's job.
        state.select(8, &["B".to_string()]).unwrap();
        state.select(8, &["A".to_string()]).unwrap();
        sup.track("A", JobId(1), 8);
        qs.remove(0);
        sup.check_once();
        let rep = sup.check_once();
        assert_eq!(rep.deaths, vec!["A".to_string()]);
        assert!(rep.requeued.is_empty());
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(rep.failures[0].0, JobId(1));
        assert!(matches!(
            rep.failures[0].1,
            RmfError::Busy(_) | RmfError::Capacity(_)
        ));
    }
}
