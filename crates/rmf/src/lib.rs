//! `rmf` — Resource Manager beyond the Firewall (the paper's §2).
//!
//! RMF makes computing resources *inside* a deny-based firewall usable
//! from a Globus gatekeeper running *outside* it:
//!
//! * the **gatekeeper** + per-job **job managers** run outside
//!   ([`gatekeeper`]);
//! * a **resource allocator** daemon runs inside and picks resources
//!   ([`allocator`]);
//! * a **Q server** runs on every resource and forks job processes
//!   ([`qsys`]);
//! * a **Q client**, created by the job manager, bridges the two
//!   worlds; the firewall "must be configured to allow communications
//!   between the Q client and the resource allocator, and the Q client
//!   and the Q server" — fixed, well-known ports
//!   ([`allocator::ALLOCATOR_PORT`], [`qsys::QSERVER_PORT`]), built by
//!   [`rmf_site_policy`];
//! * inputs/outputs move as GASS files ([`gass`]);
//! * job requests are RSL expressions ([`rsl`]).
//!
//! The six-step execution flow of the paper's Figure 2 is recorded in
//! a [`job::FlowTrace`] and asserted by the integration tests.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod allocator;
pub mod error;
pub mod exec;
pub mod gass;
pub mod gatekeeper;
pub mod job;
pub mod qsys;
pub mod rsl;
pub mod wire;

pub use allocator::{
    Allocation, AllocatorState, ResourceAllocator, ResourceInfo, SelectPolicy, ALLOCATOR_PORT,
};
pub use error::RmfError;
pub use exec::{ExecCtx, ExecRegistry};
pub use gass::{GassStore, GassUrl, StripedTransfer};
pub use gatekeeper::{job_status, submit_job, wait_job, Gatekeeper, JobInfo};
pub use job::{FlowTrace, JobId, JobState};
pub use qsys::{QClient, QServer, QSERVER_PORT};
pub use rsl::{JobRequest, RslError};
pub use wire::Record;

use firewall::{Direction, HostRef, HostSet, Policy, PortSet, Proto, Rule};

/// Build the paper's RMF-compatible site policy: deny-based inbound,
/// allow-based outbound, with exactly the fixed inbound holes the Q
/// system needs (allocator port + one Q server port per resource).
pub fn rmf_site_policy(name: &str, holes: &[(HostRef, u16)]) -> Policy {
    let mut p = Policy::typical(name);
    for (host, port) in holes {
        p = p.push(
            Rule::allow(Direction::Inbound)
                .proto(Proto::Tcp)
                .dst(HostSet::One(*host), PortSet::One(*port))
                .label(format!("rmf hole {host}:{port}")),
        );
    }
    p
}
