//! A small RSL (Resource Specification Language) parser.
//!
//! Globus job requests are RSL expressions like:
//!
//! ```text
//! &(executable=knapsack)(count=8)(arguments=--items 50)(resource=COMPaS)
//! ```
//!
//! We support the conjunction form the GRAM gatekeeper consumes:
//! `&(key=value)(key=value)…`, with quoted values for embedded
//! spaces/parens and repeated keys for lists.

use crate::wire::Record;
use std::fmt;

/// A parsed job request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    pub executable: String,
    /// Total process count.
    pub count: u32,
    pub arguments: Vec<String>,
    /// Explicit resource names (empty = let the allocator choose).
    pub resources: Vec<String>,
    /// Input files to stage in via GASS, as `(remote_name, gass_path)`.
    pub stage_in: Vec<(String, String)>,
    /// Environment-ish free-form extras.
    pub extras: Vec<(String, String)>,
}

/// RSL parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RslError {
    Syntax(String),
    MissingExecutable,
    BadCount(String),
}

impl fmt::Display for RslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RslError::Syntax(m) => write!(f, "RSL syntax error: {m}"),
            RslError::MissingExecutable => write!(f, "RSL is missing (executable=…)"),
            RslError::BadCount(v) => write!(f, "bad (count={v})"),
        }
    }
}

impl std::error::Error for RslError {}

/// Tokenize `&(k=v)(k=v)` into pairs.
fn pairs(input: &str) -> Result<Vec<(String, String)>, RslError> {
    let s = input.trim();
    let s = s
        .strip_prefix('&')
        .ok_or_else(|| RslError::Syntax("expected leading '&'".into()))?;
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c != '(' {
            return Err(RslError::Syntax(format!("expected '(', found {c:?}")));
        }
        chars.next();
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(RslError::Syntax("empty key".into()));
        }
        let mut value = String::new();
        let mut closed = false;
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut terminated = false;
            for c in chars.by_ref() {
                if c == '"' {
                    terminated = true;
                    break;
                }
                value.push(c);
            }
            if !terminated {
                return Err(RslError::Syntax("unterminated quote".into()));
            }
            match chars.next() {
                Some(')') => closed = true,
                other => {
                    return Err(RslError::Syntax(format!(
                        "expected ')' after quoted value, found {other:?}"
                    )))
                }
            }
        } else {
            for c in chars.by_ref() {
                if c == ')' {
                    closed = true;
                    break;
                }
                value.push(c);
            }
        }
        if !closed {
            return Err(RslError::Syntax(format!("unclosed clause for key {key}")));
        }
        out.push((key.trim().to_string(), value.trim().to_string()));
    }
    Ok(out)
}

/// Parse an RSL string into a [`JobRequest`].
pub fn parse(input: &str) -> Result<JobRequest, RslError> {
    let mut req = JobRequest {
        executable: String::new(),
        count: 1,
        arguments: Vec::new(),
        resources: Vec::new(),
        stage_in: Vec::new(),
        extras: Vec::new(),
    };
    for (k, v) in pairs(input)? {
        match k.as_str() {
            "executable" => req.executable = v,
            "count" => {
                req.count = v.parse().map_err(|_| RslError::BadCount(v.clone()))?;
                if req.count == 0 {
                    return Err(RslError::BadCount(v));
                }
            }
            "arguments" => req
                .arguments
                .extend(v.split_whitespace().map(str::to_string)),
            "resource" => req.resources.push(v),
            "stage_in" => {
                // name<gass-path
                let (name, path) = v
                    .split_once('<')
                    .ok_or_else(|| RslError::Syntax(format!("stage_in needs name<path: {v}")))?;
                req.stage_in.push((name.trim().into(), path.trim().into()));
            }
            _ => req.extras.push((k, v)),
        }
    }
    if req.executable.is_empty() {
        return Err(RslError::MissingExecutable);
    }
    Ok(req)
}

impl JobRequest {
    /// Encode into a wire [`Record`] (for the gatekeeper protocol).
    pub fn to_record(&self) -> Record {
        let mut r = Record::new("job-request");
        r.push("executable", &self.executable);
        r.push("count", self.count.to_string());
        for a in &self.arguments {
            r.push("arg", a);
        }
        for res in &self.resources {
            r.push("resource", res);
        }
        for (name, path) in &self.stage_in {
            r.push("stage_in", format!("{name}<{path}"));
        }
        for (k, v) in &self.extras {
            r.push("extra", format!("{k}={v}"));
        }
        r
    }

    /// Decode from a wire [`Record`].
    pub fn from_record(r: &Record) -> std::io::Result<JobRequest> {
        let executable = r.require("executable")?.to_string();
        let count = r.require_u64("count")? as u32;
        let arguments = r.get_all("arg").iter().map(ToString::to_string).collect();
        let resources = r
            .get_all("resource")
            .iter()
            .map(ToString::to_string)
            .collect();
        let stage_in = r
            .get_all("stage_in")
            .iter()
            .filter_map(|s| s.split_once('<'))
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let extras = r
            .get_all("extra")
            .iter()
            .filter_map(|s| s.split_once('='))
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        Ok(JobRequest {
            executable,
            count,
            arguments,
            resources,
            stage_in,
            extras,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_request() {
        let r = parse("&(executable=knapsack)(count=20)(arguments=--items 50)(resource=COMPaS)(resource=ETL-O2K)").unwrap();
        assert_eq!(r.executable, "knapsack");
        assert_eq!(r.count, 20);
        assert_eq!(r.arguments, vec!["--items", "50"]);
        assert_eq!(r.resources, vec!["COMPaS", "ETL-O2K"]);
    }

    #[test]
    fn quoted_values_keep_spaces_and_parens() {
        let r = parse(r#"&(executable=sh)(arguments="run (all) phases")"#).unwrap();
        // Quoted argument still splits on whitespace per MPI argv rules.
        assert_eq!(r.arguments, vec!["run", "(all)", "phases"]);
    }

    #[test]
    fn stage_in_and_extras() {
        let r =
            parse("&(executable=x)(stage_in=data.txt<gass://rwcp-sun/inputs/d1)(env=A=1)").unwrap();
        assert_eq!(
            r.stage_in,
            vec![(
                "data.txt".to_string(),
                "gass://rwcp-sun/inputs/d1".to_string()
            )]
        );
        assert_eq!(r.extras, vec![("env".to_string(), "A=1".to_string())]);
    }

    #[test]
    fn default_count_is_one() {
        assert_eq!(parse("&(executable=x)").unwrap().count, 1);
    }

    #[test]
    fn errors() {
        assert!(matches!(parse("(executable=x)"), Err(RslError::Syntax(_))));
        assert!(matches!(
            parse("&(count=4)"),
            Err(RslError::MissingExecutable)
        ));
        assert!(matches!(
            parse("&(executable=x)(count=0)"),
            Err(RslError::BadCount(_))
        ));
        assert!(matches!(
            parse("&(executable=x)(count=zz)"),
            Err(RslError::BadCount(_))
        ));
        assert!(matches!(parse("&(executable=x"), Err(RslError::Syntax(_))));
        assert!(matches!(
            parse(r#"&(executable="x"#),
            Err(RslError::Syntax(_))
        ));
        assert!(matches!(parse("&(=v)"), Err(RslError::Syntax(_))));
        assert!(matches!(
            parse("&(executable=x)(stage_in=nope)"),
            Err(RslError::Syntax(_))
        ));
    }

    #[test]
    fn record_roundtrip() {
        let r = parse("&(executable=knapsack)(count=8)(arguments=-n 30)(resource=COMPaS)(stage_in=a<gass://h/a)(env=B=2)").unwrap();
        let rec = r.to_record();
        let back = JobRequest::from_record(&rec).unwrap();
        assert_eq!(back, r);
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The parser is total: printable-ASCII noise never panics it.
    #[test]
    fn parser_total_on_random_text() {
        let mut r = test_rng(0x51);
        for _ in 0..2000 {
            let len = (r() % 64) as usize;
            let s: String = (0..len)
                .map(|_| (0x20 + (r() % 95) as u8) as char)
                .collect();
            let _ = parse(&s);
        }
    }
}
