//! Job identity and lifecycle.

use std::fmt;

/// Globally unique job identifier (issued by the gatekeeper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// GRAM-style job states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted by the gatekeeper, not yet placed.
    Pending,
    /// Placed on resources; processes running.
    Active,
    /// All processes exited 0.
    Done,
    /// Something failed (placement, staging, or a nonzero exit).
    Failed,
}

impl JobState {
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }

    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Active => "active",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "pending" => JobState::Pending,
            "active" => JobState::Active,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }
}

/// One step in the RMF execution flow — the paper's Figure 2 numbers
/// its six steps; integration tests assert this exact sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEventRec {
    /// 1-6 per the paper; 0 for setup events.
    pub step: u8,
    pub detail: String,
}

/// Shared, append-only trace of flow events.
#[derive(Debug, Default, Clone)]
pub struct FlowTrace {
    inner: std::sync::Arc<wacs_sync::Mutex<Vec<FlowEventRec>>>,
}

impl FlowTrace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, step: u8, detail: impl Into<String>) {
        self.inner.lock().push(FlowEventRec {
            step,
            detail: detail.into(),
        });
    }

    pub fn events(&self) -> Vec<FlowEventRec> {
        self.inner.lock().clone()
    }

    /// The step numbers in occurrence order (dedup-adjacent not
    /// applied; tests filter as needed).
    pub fn steps(&self) -> Vec<u8> {
        self.inner.lock().iter().map(|e| e.step).collect()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.inner.lock().iter() {
            out.push_str(&format!("  ({}) {}\n", e.step, e.detail));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_strings_roundtrip() {
        for s in [
            JobState::Pending,
            JobState::Active,
            JobState::Done,
            JobState::Failed,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobState::parse("nope"), None);
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Active.is_terminal());
    }

    #[test]
    fn flow_trace_records_in_order() {
        let t = FlowTrace::new();
        t.record(1, "submit");
        t.record(2, "job manager");
        assert_eq!(t.steps(), vec![1, 2]);
        assert!(t.render().contains("(2) job manager"));
        // Clones share the log.
        let t2 = t.clone();
        t2.record(3, "inquiry");
        assert_eq!(t.steps(), vec![1, 2, 3]);
    }

    #[test]
    fn job_id_display() {
        assert_eq!(JobId(7).to_string(), "job-7");
    }
}
