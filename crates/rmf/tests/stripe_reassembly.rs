//! Bounded-exhaustive reassembly battery for the striped staging
//! path (DESIGN.md §6e).
//!
//! GASS staging rides the stripe codec (`rmf::GassStore::transfer_with`
//! → `nexus_proxy::stripe`), so this suite attacks the reassembler the
//! way the network can: **every** permutation of chunk arrival order
//! for small plans, every permutation of whole-lane replay order
//! through the byte-stream receiver, and seeded random sweeps that
//! inject duplicates, gaps, and corrupted duplicates. The invariant
//! throughout: a complete delivery reassembles byte-identically, an
//! incomplete one is a *typed* `Incomplete`/`Conflict` error with
//! exact missing-chunk accounting — never silent corruption.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use nexus_proxy::stripe::{
    send_striped, Accept, Reassembler, StripeError, StripeFrame, StripePlan, StripeReceiver,
};
use rmf::{GassStore, StripedTransfer};
use std::io::{self, Cursor, Write};
use std::sync::Arc;
use wacs_sync::Mutex;

/// Deterministic payload bytes.
fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 137 + 29) % 251) as u8).collect()
}

/// Chunk `idx` of `data` under `plan`.
fn chunk_of(plan: &StripePlan, data: &[u8], idx: u64) -> StripeFrame {
    let off = plan.offset_of(idx) as usize;
    let len = plan.len_of(idx) as usize;
    StripeFrame::Data {
        transfer: 9,
        stripe: plan.stripe_of(idx),
        seq: plan.seq_of(idx),
        offset: off as u64,
        bytes: data[off..off + len].to_vec(),
    }
}

/// A fresh reassembler with geometry installed via `Open` frames for
/// every stripe (as the lanes would on connect).
fn opened(plan: StripePlan) -> Reassembler {
    let mut r = Reassembler::new(9, 0, plan);
    for s in 0..plan.stripes() {
        let a = r
            .accept(&StripeFrame::Open {
                transfer: 9,
                stripe: s,
                stripes: plan.stripes(),
                chunk: plan.chunk_bytes(),
                total_len: plan.total_len(),
                tag: 0,
            })
            .unwrap();
        assert_eq!(a, Accept::Fresh);
    }
    r
}

/// Heap's algorithm: every permutation of `items`, visited in place.
fn for_each_permutation<T: Clone>(items: &[T], mut visit: impl FnMut(&[T])) {
    fn heap<T: Clone>(k: usize, a: &mut [T], visit: &mut impl FnMut(&[T])) {
        if k == 1 {
            visit(a);
            return;
        }
        for i in 0..k {
            heap(k - 1, a, visit);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    let mut a = items.to_vec();
    if !a.is_empty() {
        heap(a.len(), &mut a, &mut visit);
    }
}

/// xorshift64* — the workspace's dependency-free seeded RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Every one of the 720 arrival orders of a 6-chunk, 3-stripe
/// transfer reassembles byte-identically, and completion fires on
/// exactly the last chunk.
#[test]
fn every_chunk_arrival_order_reassembles() {
    let plan = StripePlan::new(6 * 32, 3, 32).unwrap();
    assert_eq!(plan.chunk_count(), 6);
    let data = payload(plan.total_len() as usize);
    let idxs: Vec<u64> = (0..plan.chunk_count()).collect();
    let mut orders = 0u32;
    for_each_permutation(&idxs, |order| {
        orders += 1;
        let mut r = opened(plan);
        for (pos, &idx) in order.iter().enumerate() {
            let a = r.accept(&chunk_of(&plan, &data, idx)).unwrap();
            if pos + 1 == order.len() {
                assert_eq!(a, Accept::Complete, "order {order:?}");
            } else {
                assert_eq!(a, Accept::Fresh, "order {order:?}");
                assert!(matches!(
                    r.payload(),
                    Err(StripeError::Incomplete { missing }) if missing as usize == order.len() - pos - 1
                ));
            }
        }
        assert_eq!(r.payload().unwrap(), &data[..], "order {order:?}");
        assert_eq!(r.duplicates(), 0);
    });
    assert_eq!(orders, 720);
}

/// An uneven tail (short last chunk) under every arrival order of a
/// 5-chunk, 2-stripe plan.
#[test]
fn every_arrival_order_with_uneven_tail() {
    let plan = StripePlan::new(4 * 32 + 7, 2, 32).unwrap();
    assert_eq!(plan.chunk_count(), 5);
    let data = payload(plan.total_len() as usize);
    let idxs: Vec<u64> = (0..plan.chunk_count()).collect();
    for_each_permutation(&idxs, |order| {
        let mut r = opened(plan);
        for &idx in order {
            r.accept(&chunk_of(&plan, &data, idx)).unwrap();
        }
        assert!(r.is_complete());
        assert_eq!(r.payload().unwrap(), &data[..], "order {order:?}");
    });
}

/// Capture the framed lane streams a striped send produces, via the
/// same in-process lane writer `GassStore::transfer_with` uses.
fn framed_lanes(data: &[u8], plan: &StripePlan) -> Vec<Vec<u8>> {
    struct Lane {
        lanes: Arc<Mutex<Vec<Vec<u8>>>>,
        lane: usize,
    }
    impl Write for Lane {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.lanes.lock()[self.lane].extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let lanes: Arc<Mutex<Vec<Vec<u8>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); usize::from(plan.stripes())]));
    let sink = lanes.clone();
    send_striped(data, plan, 9, 0, 0, None, move |stripe, _| {
        Ok(Lane {
            lanes: sink.clone(),
            lane: usize::from(stripe),
        })
    })
    .unwrap();
    let captured = std::mem::take(&mut *lanes.lock());
    captured
}

/// Every permutation of whole-lane feed order through the byte-stream
/// receiver (4 lanes ⇒ 24 orders), with one lane fed twice: the
/// repeat is absorbed as duplicates and the payload is untouched.
#[test]
fn every_lane_feed_order_with_a_duplicated_lane() {
    let plan = StripePlan::new(9 * 16 + 5, 4, 16).unwrap();
    let data = payload(plan.total_len() as usize);
    let lanes = framed_lanes(&data, &plan);
    let lane_ids: Vec<usize> = (0..lanes.len()).collect();
    for_each_permutation(&lane_ids, |order| {
        for dup in 0..lanes.len() {
            let rx = StripeReceiver::new();
            for &l in order {
                rx.feed(Cursor::new(lanes[l].clone()), None).unwrap();
            }
            // Replay one whole lane (a failed-over stripe re-sends
            // from seq 0): pure duplicates, absorbed.
            rx.feed(Cursor::new(lanes[dup].clone()), None).unwrap();
            let (tag, got) = rx.result().expect("incomplete after all lanes fed");
            assert_eq!(tag, 0);
            assert_eq!(got, data, "order {order:?} dup {dup}");
            assert!(rx.duplicates() > 0, "replayed lane must count as dups");
        }
    });
}

/// Withholding any one lane leaves the transfer incomplete, and
/// `missing_on` names exactly that lane's chunks; feeding the missing
/// lane afterwards completes it.
#[test]
fn a_withheld_lane_is_accounted_exactly_then_heals() {
    let plan = StripePlan::new(11 * 16, 3, 16).unwrap();
    let data = payload(plan.total_len() as usize);
    let lanes = framed_lanes(&data, &plan);
    for hold in 0..lanes.len() {
        let rx = StripeReceiver::new();
        for (l, lane) in lanes.iter().enumerate() {
            if l != hold {
                rx.feed(Cursor::new(lane.clone()), None).unwrap();
            }
        }
        assert!(rx.result().is_none(), "held lane {hold}");
        let expect: Vec<u64> = (0..plan.chunks_on(hold as u16)).collect();
        assert_eq!(rx.missing_on(hold as u16), expect, "held lane {hold}");
        for s in 0..plan.stripes() {
            if usize::from(s) != hold {
                assert!(rx.missing_on(s).is_empty());
            }
        }
        rx.feed(Cursor::new(lanes[hold].clone()), None).unwrap();
        assert_eq!(rx.result().expect("healed").1, data);
    }
}

/// Seeded random sweep: shuffled chunk arrivals with injected
/// byte-identical duplicates always reassemble byte-identically;
/// corrupted duplicates are typed `Conflict` errors that leave the
/// already-written payload untouched.
#[test]
fn seeded_random_sweeps_with_duplicates_and_conflicts() {
    let mut rng = Rng(0x5eed_517e);
    for round in 0..200 {
        let stripes = 1 + (rng.below(4) as u16);
        let chunk = 16u32;
        let chunks = 1 + rng.below(12);
        let tail = rng.below(u64::from(chunk));
        let total = (chunks - 1) * u64::from(chunk) + tail.max(1);
        let plan = StripePlan::new(total, stripes, chunk).unwrap();
        let data = payload(total as usize);

        // Shuffle the chunk list and splice in duplicates.
        let mut order: Vec<u64> = (0..plan.chunk_count()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below((i + 1) as u64) as usize);
        }
        let dups = rng.below(4);
        for _ in 0..dups {
            let pick = order[rng.below(order.len() as u64) as usize];
            let at = rng.below((order.len() + 1) as u64) as usize;
            order.insert(at, pick);
        }

        let mut r = opened(plan);
        let mut delivered = vec![false; plan.chunk_count() as usize];
        for &idx in &order {
            let a = r.accept(&chunk_of(&plan, &data, idx)).unwrap();
            if delivered[idx as usize] {
                assert_ne!(a, Accept::Fresh, "round {round}: dup counted fresh");
            }
            delivered[idx as usize] = true;
        }
        assert_eq!(r.payload().unwrap(), &data[..], "round {round}");

        // A corrupted duplicate of a random chunk: typed Conflict,
        // payload untouched.
        let victim = rng.below(plan.chunk_count());
        let mut frame = chunk_of(&plan, &data, victim);
        if let StripeFrame::Data { bytes, .. } = &mut frame {
            bytes[0] ^= 0x40;
        }
        let want_off = plan.offset_of(victim);
        match r.accept(&frame) {
            Err(StripeError::Conflict { offset }) => assert_eq!(offset, want_off),
            other => panic!("round {round}: corrupted dup gave {other:?}"),
        }
        assert_eq!(
            r.payload().unwrap(),
            &data[..],
            "round {round} post-conflict"
        );
    }
}

/// Seeded random sweep with gaps: withholding a random subset of
/// chunks yields exactly-accounted `Incomplete` errors — the missing
/// count and per-stripe missing seq lists are exact, and `result()`
/// never fabricates bytes.
#[test]
fn seeded_random_sweeps_with_gaps_account_exactly() {
    let mut rng = Rng(0x6a95_0000);
    for round in 0..200 {
        let stripes = 1 + (rng.below(4) as u16);
        let chunks = 2 + rng.below(10);
        let plan = StripePlan::new(chunks * 16, stripes, 16).unwrap();
        let data = payload(plan.total_len() as usize);

        // Withhold a random non-empty subset.
        let mut withheld: Vec<u64> = (0..plan.chunk_count())
            .filter(|_| rng.below(3) == 0)
            .collect();
        if withheld.is_empty() {
            withheld.push(rng.below(plan.chunk_count()));
        }
        let mut r = opened(plan);
        for idx in 0..plan.chunk_count() {
            if !withheld.contains(&idx) {
                r.accept(&chunk_of(&plan, &data, idx)).unwrap();
            }
        }
        assert!(!r.is_complete(), "round {round}");
        match r.payload() {
            Err(StripeError::Incomplete { missing }) => {
                assert_eq!(missing as usize, withheld.len(), "round {round}");
            }
            other => panic!("round {round}: gap run gave {other:?}"),
        }
        for s in 0..plan.stripes() {
            let want: Vec<u64> = withheld
                .iter()
                .filter(|&&i| plan.stripe_of(i) == s)
                .map(|&i| plan.seq_of(i))
                .collect();
            assert_eq!(r.missing_on(s), want, "round {round} stripe {s}");
        }
    }
}

/// The staging layer on top: `transfer_with` moves a file through the
/// full frame→lanes→reassembly path at every stream count that fits,
/// and the staged copy is byte-identical.
#[test]
fn gass_staging_is_exact_at_every_stream_count() {
    let st = StripedTransfer::plan(100_000, 4).unwrap();
    assert_eq!(st.streams(), 4);
    let g = GassStore::new();
    let data = payload(100_000);
    g.put("rwcp-sun", "in/big", data.clone());
    for streams in [1u16, 2, 3, 4, 7] {
        let n = g
            .transfer_with(
                "gass://rwcp-sun/in/big",
                "compas0",
                &format!("st/{streams}"),
                streams,
            )
            .unwrap();
        assert_eq!(n, data.len());
        assert_eq!(g.get("compas0", &format!("st/{streams}")).unwrap(), data);
    }
}
