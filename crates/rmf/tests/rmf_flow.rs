//! End-to-end tests of the full RMF deployment on a firewalled site —
//! the paper's Figure 2 flow, driven over real (guarded loopback)
//! sockets.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::vnet::VNet;
use firewall::Policy;
use rmf::{
    rmf_site_policy, submit_job, wait_job, ExecCtx, ExecRegistry, FlowTrace, GassStore, Gatekeeper,
    JobState, QServer, ResourceAllocator, ResourceInfo, SelectPolicy, ALLOCATOR_PORT, QSERVER_PORT,
};
use std::time::Duration;

/// A full RMF deployment on a firewalled site:
/// * outside: `user-host`, `gk-host` (gatekeeper);
/// * inside (deny-in firewall): `alloc-host` (allocator),
///   `compas-fe` + `sun-fe` (Q servers), with only the RMF holes.
struct Deployment {
    net: VNet,
    gk: Gatekeeper,
    alloc: ResourceAllocator,
    _qs: Vec<QServer>,
    gass: GassStore,
    trace: FlowTrace,
    registry: ExecRegistry,
}

fn deploy() -> Deployment {
    let net = VNet::new();
    let outside = net.add_site("outside", None);
    let inside = net.add_site("rwcp", None); // policy set after refs known
    net.add_host("user-host", outside);
    net.add_host("gk-host", outside);
    let alloc_ref = net.add_host("alloc-host", inside);
    let compas_ref = net.add_host("compas-fe", inside);
    let sun_ref = net.add_host("sun-fe", inside);
    net.reload_policy(
        inside,
        rmf_site_policy(
            "rwcp",
            &[
                (alloc_ref, ALLOCATOR_PORT),
                (compas_ref, QSERVER_PORT),
                (sun_ref, QSERVER_PORT),
            ],
        ),
    );

    let trace = FlowTrace::new();
    let gass = GassStore::new();
    let registry = ExecRegistry::new();

    let alloc = ResourceAllocator::start(
        net.clone(),
        "alloc-host",
        SelectPolicy::LeastLoaded,
        trace.clone(),
    )
    .unwrap();
    alloc.state.register(ResourceInfo {
        name: "COMPaS".into(),
        qserver_host: "compas-fe".into(),
        cpus: 8,
    });
    alloc.state.register(ResourceInfo {
        name: "RWCP-Sun".into(),
        qserver_host: "sun-fe".into(),
        cpus: 4,
    });

    let qs = vec![
        QServer::start(
            net.clone(),
            "compas-fe",
            "COMPaS",
            registry.clone(),
            gass.clone(),
            "alloc-host",
            trace.clone(),
        )
        .unwrap(),
        QServer::start(
            net.clone(),
            "sun-fe",
            "RWCP-Sun",
            registry.clone(),
            gass.clone(),
            "alloc-host",
            trace.clone(),
        )
        .unwrap(),
    ];

    let gk = Gatekeeper::start(
        net.clone(),
        "gk-host",
        vec!["/O=Grid/CN=Researcher".to_string()],
        "alloc-host",
        gass.clone(),
        trace.clone(),
    )
    .unwrap();

    Deployment {
        net,
        gk,
        alloc,
        _qs: qs,
        gass,
        trace,
        registry,
    }
}

const SUBJECT: &str = "/O=Grid/CN=Researcher";

#[test]
fn full_six_step_flow_across_the_firewall() {
    let d = deploy();
    d.registry.register("hello", |ctx: ExecCtx| {
        ctx.println(format!("hello from {} #{}", ctx.host, ctx.proc_index));
        0
    });
    let gk = d.gk.addr();
    let job = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=hello)(count=10)",
    )
    .unwrap();
    let (state, exit, stdout_urls) = wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        job,
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(state, JobState::Done);
    assert_eq!(exit, 0);
    // Output staged via GASS: 10 lines total across the parts.
    let mut lines = 0;
    for url in &stdout_urls {
        let data = d.gass.get_url(url).unwrap();
        lines += String::from_utf8(data).unwrap().lines().count();
    }
    assert_eq!(lines, 10);

    // Figure 2's six steps occurred in order (first occurrences).
    let steps = d.trace.steps();
    let mut first = Vec::new();
    for s in steps {
        if s >= 1 && !first.contains(&s) {
            first.push(s);
        }
    }
    assert_eq!(first, vec![1, 2, 3, 4, 5, 6], "{}", d.trace.render());
}

#[test]
fn allocation_spans_resources_and_releases_load() {
    let d = deploy();
    d.registry.register("sleepy", |_ctx: ExecCtx| {
        std::thread::sleep(Duration::from_millis(20));
        0
    });
    let gk = d.gk.addr();
    // 10 procs > COMPaS' 8: must span both resources.
    let job = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=sleepy)(count=10)",
    )
    .unwrap();
    wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        job,
        Duration::from_secs(30),
    )
    .unwrap();
    // After completion, Q servers report the load release.
    for _ in 0..400 {
        let a = d.alloc.state.load_of("COMPaS").unwrap();
        let b = d.alloc.state.load_of("RWCP-Sun").unwrap();
        if a == 0 && b == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "load never released: COMPaS={:?} RWCP-Sun={:?}",
        d.alloc.state.load_of("COMPaS"),
        d.alloc.state.load_of("RWCP-Sun")
    );
}

#[test]
fn unauthorized_subject_is_denied() {
    let d = deploy();
    let gk = d.gk.addr();
    let err = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        "/O=Grid/CN=Mallory",
        "&(executable=hello)",
    )
    .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
}

#[test]
fn bad_rsl_is_denied() {
    let d = deploy();
    let gk = d.gk.addr();
    let err = submit_job(&d.net, "user-host", (&gk.0, gk.1), SUBJECT, "(no-amp)").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
}

#[test]
fn unknown_executable_fails_the_job() {
    let d = deploy();
    let gk = d.gk.addr();
    let job = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=no-such-binary)(count=1)",
    )
    .unwrap();
    let (state, _, _) = wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        job,
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(state, JobState::Failed);
}

#[test]
fn over_capacity_request_fails_cleanly() {
    let d = deploy();
    d.registry.register("hello", |_| 0);
    let gk = d.gk.addr();
    let job = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=hello)(count=100)",
    )
    .unwrap();
    let (state, _, _) = wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        job,
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(state, JobState::Failed);
    let info = d.gk.job_info(job).unwrap();
    assert!(info.detail.contains("allocation failed"), "{}", info.detail);
}

#[test]
fn stage_in_files_reach_the_processes() {
    let d = deploy();
    d.registry.register("cat", |ctx: ExecCtx| {
        let data = ctx.files.get("input.dat").cloned().unwrap_or_default();
        ctx.write(&data);
        0
    });
    d.gass.put("gk-host", "inputs/d1", b"42 items".to_vec());
    let gk = d.gk.addr();
    let job = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=cat)(count=1)(stage_in=input.dat<gass://gk-host/inputs/d1)",
    )
    .unwrap();
    let (state, _, stdout_urls) = wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        job,
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(state, JobState::Done);
    assert_eq!(d.gass.get_url(&stdout_urls[0]).unwrap(), b"42 items");
}

#[test]
fn firewall_premise_user_cannot_reach_q_server_directly_without_hole() {
    // Rebuild the site WITHOUT the Q-system holes: the Q servers
    // become unreachable from outside — the deployment only works
    // because rmf_site_policy opens exactly those fixed ports.
    let net = VNet::new();
    let outside = net.add_site("outside", None);
    let inside = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    net.add_host("user-host", outside);
    net.add_host("compas-fe", inside);
    let _l = net.bind("compas-fe", QSERVER_PORT).unwrap();
    assert_eq!(
        net.dial("user-host", "compas-fe", QSERVER_PORT)
            .unwrap_err()
            .kind(),
        std::io::ErrorKind::PermissionDenied
    );
}

#[test]
fn policy_exposure_is_minimal() {
    // Three fixed holes, versus a 1000-port Globus 1.1 range.
    let p = rmf_site_policy(
        "rwcp",
        &[(1, ALLOCATOR_PORT), (2, QSERVER_PORT), (3, QSERVER_PORT)],
    );
    assert_eq!(p.inbound_exposure(), 3);
}

#[test]
fn jobs_queue_when_resources_are_busy() {
    // The Q system is a *queuing* system: a second job that cannot be
    // placed immediately waits for the first to release capacity,
    // rather than failing.
    let d = deploy();
    d.registry.register("holder", |_ctx: ExecCtx| {
        std::thread::sleep(Duration::from_millis(150));
        0
    });
    d.registry.register("quick", |_ctx: ExecCtx| 0);
    let gk = d.gk.addr();
    // Occupy all 12 processors.
    let j1 = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=holder)(count=12)",
    )
    .unwrap();
    // Give placement a moment so j2 actually finds everything busy.
    std::thread::sleep(Duration::from_millis(40));
    let j2 = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=quick)(count=8)",
    )
    .unwrap();
    let (s2, _, _) = wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        j2,
        Duration::from_secs(60),
    )
    .unwrap();
    assert_eq!(
        s2,
        JobState::Done,
        "queued job should run after capacity frees"
    );
    let (s1, _, _) = wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        j1,
        Duration::from_secs(60),
    )
    .unwrap();
    assert_eq!(s1, JobState::Done);
}

#[test]
fn explicit_resource_placement() {
    let d = deploy();
    d.registry.register("where", |ctx: ExecCtx| {
        ctx.println(&ctx.host);
        0
    });
    let gk = d.gk.addr();
    let job = submit_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        SUBJECT,
        "&(executable=where)(count=2)(resource=RWCP-Sun)",
    )
    .unwrap();
    let (state, _, stdout_urls) = wait_job(
        &d.net,
        "user-host",
        (&gk.0, gk.1),
        job,
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(state, JobState::Done);
    assert_eq!(stdout_urls.len(), 1);
    let out = String::from_utf8(d.gass.get_url(&stdout_urls[0]).unwrap()).unwrap();
    assert!(out.lines().all(|l| l == "sun-fe"), "{out}");
}

/// The Q client's allocator RPC retries transient transport failures
/// (daemon not up yet) and only then reports a typed timeout.
#[test]
fn allocator_rpc_retry_recovers_from_late_daemon_and_times_out_typed() {
    use rmf::qsys::{QClient, RpcRetry};
    use rmf::{JobRequest, RmfError};

    let req = JobRequest {
        executable: "noop".into(),
        count: 2,
        arguments: vec![],
        resources: vec![],
        stage_in: vec![],
        extras: vec![],
    };

    // No allocator at all: every dial fails, the retry budget drains,
    // and the caller gets Timeout carrying the last transport error —
    // not a bare "connection refused" that looks like a daemon verdict.
    let net = VNet::new();
    let site = net.add_site("flat", None);
    net.add_host("user-host", site);
    net.add_host("alloc-host", site);
    let qc = QClient::new(
        net.clone(),
        "user-host",
        "alloc-host",
        GassStore::new(),
        FlowTrace::new(),
    )
    .with_rpc_retry(RpcRetry {
        deadline: Duration::from_millis(120),
        backoff: Duration::from_millis(5),
    });
    match qc.allocate(&req) {
        Err(RmfError::Timeout { what, elapsed, .. }) => {
            assert_eq!(what, "allocator query");
            assert!(elapsed >= Duration::from_millis(120));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }

    // Daemon comes up *after* the first attempts: the same call
    // succeeds within the budget instead of failing on attempt one.
    let net2 = net.clone();
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        let alloc = ResourceAllocator::start(
            net2,
            "alloc-host",
            SelectPolicy::LeastLoaded,
            FlowTrace::new(),
        )
        .unwrap();
        alloc.state.register(ResourceInfo {
            name: "A".into(),
            qserver_host: "a-fe".into(),
            cpus: 4,
        });
        // Keep the daemon alive long enough for the client to land.
        std::thread::sleep(Duration::from_millis(400));
        alloc
    });
    let qc = QClient::new(
        net,
        "user-host",
        "alloc-host",
        GassStore::new(),
        FlowTrace::new(),
    )
    .with_rpc_retry(RpcRetry {
        deadline: Duration::from_secs(2),
        backoff: Duration::from_millis(5),
    });
    let allocs = qc.allocate(&req).expect("late daemon should be reached");
    assert_eq!(allocs.iter().map(|a| a.count).sum::<u32>(), 2);
    drop(starter.join().unwrap());
}

/// Typed refusals: over-capacity is Capacity (never retry), busy is
/// Busy (retry later) — and the daemon's wording reaches the caller.
#[test]
fn allocator_refusals_are_typed() {
    use rmf::qsys::QClient;
    use rmf::{JobRequest, RmfError};

    let d = deploy();
    let qc = QClient::new(
        d.net.clone(),
        "user-host",
        "alloc-host",
        d.gass.clone(),
        d.trace.clone(),
    );
    let mk = |count: u32| JobRequest {
        executable: "noop".into(),
        count,
        arguments: vec![],
        resources: vec![],
        stage_in: vec![],
        extras: vec![],
    };
    // 12 CPUs managed in deploy(); 100 can never fit.
    match qc.allocate(&mk(100)) {
        Err(RmfError::Capacity(detail)) => assert!(detail.contains("permanently"), "{detail}"),
        other => panic!("expected Capacity, got {other:?}"),
    }
    // Fill everything, then one more: transient exhaustion.
    let held = qc.allocate(&mk(12)).unwrap();
    assert_eq!(held.iter().map(|a| a.count).sum::<u32>(), 12);
    match qc.allocate(&mk(1)) {
        Err(RmfError::Busy(detail)) => assert!(detail.contains("resources busy"), "{detail}"),
        other => panic!("expected Busy, got {other:?}"),
    }
    drop(d);
}
