//! World bootstrap: bring up N ranks as threads, exchange endpoint
//! addresses, and run a closure per rank.
//!
//! In the paper this rendezvous is done by MPICH-G/DUROC through the
//! GRAM job managers; here the launcher plays that role in-process.
//! Each rank gets its own [`NexusContext`], so ranks on firewalled
//! hosts route through the Nexus Proxy while ranks on open hosts talk
//! directly — mixed configurations are exactly the paper's wide-area
//! cluster.

use crate::comm::Comm;
use nexus::NexusContext;
use std::io;
use std::sync::Arc;
use std::thread;

/// Description of one rank: where it runs and how it communicates.
pub struct RankSpec {
    pub ctx: NexusContext,
    /// Registry for this rank's communicator metrics (`gridmpi.*`).
    /// Ranks sharing one registry aggregate into shared instruments.
    pub obs: Option<wacs_obs::Registry>,
}

impl RankSpec {
    pub fn new(ctx: NexusContext) -> Self {
        RankSpec { ctx, obs: None }
    }

    /// Record this rank's send/recv metrics in `registry`.
    #[must_use]
    pub fn with_obs(mut self, registry: &wacs_obs::Registry) -> Self {
        self.obs = Some(registry.clone());
        self
    }
}

/// Launch `specs.len()` ranks, run `body` on each (in its own thread),
/// and return the per-rank results in rank order.
///
/// Panics in a rank propagate as an error carrying the rank number.
pub fn run_world<R, F>(specs: Vec<RankSpec>, body: F) -> io::Result<Vec<R>>
where
    R: Send + 'static,
    F: Fn(&Comm) -> R + Send + Sync + 'static,
{
    let size = u32::try_from(specs.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many ranks"))?;
    if size == 0 {
        return Ok(Vec::new());
    }

    // Phase 1: create every endpoint and collect advertised addresses
    // (the DUROC-style address exchange).
    let mut endpoints = Vec::with_capacity(specs.len());
    let mut addrs = Vec::with_capacity(specs.len());
    for spec in &specs {
        let ep = spec.ctx.endpoint()?;
        let (h, p) = ep.advertised();
        addrs.push((h.to_string(), p));
        endpoints.push(ep);
    }
    let addrs = Arc::new(addrs);

    // Phase 2: one thread per rank.
    let body = Arc::new(body);
    let mut handles = Vec::with_capacity(specs.len());
    for (rank, (spec, ep)) in specs.into_iter().zip(endpoints).enumerate() {
        let addrs = addrs.clone();
        let body = body.clone();
        let handle = thread::Builder::new()
            .name(format!("mpi-rank-{rank}"))
            .spawn(move || {
                let mut comm = Comm::new(rank as u32, size, spec.ctx, ep, addrs);
                if let Some(reg) = &spec.obs {
                    comm = comm.with_obs(reg);
                }
                body(&comm)
            })?;
        handles.push(handle);
    }

    let mut results = Vec::with_capacity(handles.len());
    let mut failed = Vec::new();
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(r) => results.push(r),
            Err(_) => failed.push(rank),
        }
    }
    if !failed.is_empty() {
        return Err(io::Error::other(format!("ranks {failed:?} panicked")));
    }
    Ok(results)
}
