//! The point-to-point packet format: a fixed header (source rank +
//! tag + per-peer sequence number) in front of the payload, all
//! big-endian on the wire so heterogeneous hosts agree (MPICH-G's
//! commitment for cross-machine messages).
//!
//! The sequence number makes sends idempotent across a relay
//! reconnect: a sender that cannot tell whether a frame survived a
//! dying connection retransmits it on the fresh one, and the receiver
//! drops anything it has already accepted from that source
//! (`Comm`-level dedup), preserving MPI's exactly-once, in-order
//! per-pair delivery.

use std::io;

/// Header: `u32 src`, `i32 tag`, `u64 seq`.
pub const HEADER_LEN: usize = 16;

/// A decoded point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub src: u32,
    pub tag: i32,
    /// Per-(source, destination) sequence number, starting at 1.
    pub seq: u64,
    pub payload: Vec<u8>,
}

impl Packet {
    pub fn encode(src: u32, tag: i32, seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        buf.extend_from_slice(&src.to_be_bytes());
        buf.extend_from_slice(&tag.to_be_bytes());
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    pub fn decode(frame: Vec<u8>) -> io::Result<Packet> {
        if frame.len() < HEADER_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "short MPI packet",
            ));
        }
        let src = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let tag = i32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let seq = u64::from_be_bytes([
            frame[8], frame[9], frame[10], frame[11], frame[12], frame[13], frame[14], frame[15],
        ]);
        let payload = frame[HEADER_LEN..].to_vec();
        Ok(Packet {
            src,
            tag,
            seq,
            payload,
        })
    }

    /// Does this packet satisfy a receive with the given selectors?
    pub fn matches(&self, src: Option<u32>, tag: Option<i32>) -> bool {
        src.is_none_or(|s| s == self.src) && tag.is_none_or(|t| t == self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Packet::decode(Packet::encode(3, -7, 42, b"hello")).unwrap();
        assert_eq!(
            p,
            Packet {
                src: 3,
                tag: -7,
                seq: 42,
                payload: b"hello".to_vec()
            }
        );
    }

    #[test]
    fn empty_payload_ok_short_header_err() {
        assert_eq!(
            Packet::decode(Packet::encode(0, 0, 1, b""))
                .unwrap()
                .payload,
            b""
        );
        assert!(Packet::decode(vec![1, 2, 3]).is_err());
        // An old 8-byte header (pre-seq) is short now.
        assert!(Packet::decode(vec![0; 8]).is_err());
    }

    #[test]
    fn matching() {
        let p = Packet {
            src: 2,
            tag: 9,
            seq: 1,
            payload: vec![],
        };
        assert!(p.matches(None, None));
        assert!(p.matches(Some(2), None));
        assert!(p.matches(None, Some(9)));
        assert!(p.matches(Some(2), Some(9)));
        assert!(!p.matches(Some(3), Some(9)));
        assert!(!p.matches(Some(2), Some(8)));
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Encode/decode round trip across random (src, tag, payload).
    #[test]
    fn random_packets_roundtrip() {
        let mut r = test_rng(0x9ac4e7);
        for _ in 0..500 {
            let src = r() as u32;
            let tag = r() as i32;
            let seq = r();
            let len = (r() % 256) as usize;
            let payload: Vec<u8> = (0..len).map(|_| r() as u8).collect();
            let p = Packet::decode(Packet::encode(src, tag, seq, &payload)).unwrap();
            assert_eq!(p.src, src);
            assert_eq!(p.tag, tag);
            assert_eq!(p.seq, seq);
            assert_eq!(p.payload, payload);
        }
    }
}
