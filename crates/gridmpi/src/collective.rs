//! Collective operations over the communicator.
//!
//! Broadcast and reduction use binomial trees; barrier is a reduce to
//! rank 0 followed by a broadcast. Collectives run on reserved
//! negative tags so they never collide with point-to-point traffic.
//!
//! A flat (linear) broadcast is also provided for the MagPIe-style
//! ablation: over a WAN, tree shape matters, and the bench compares
//! the two.

use crate::comm::Comm;
use crate::datatype::{pack_f64s, pack_u64s, unpack_f64s, unpack_u64s};
use std::io;

/// Copy an (already length-checked) 4-byte slice into an array.
fn read4(c: &[u8]) -> [u8; 4] {
    [c[0], c[1], c[2], c[3]]
}

const TAG_BARRIER_UP: i32 = -1;
const TAG_BARRIER_DOWN: i32 = -2;
const TAG_BCAST: i32 = -3;
const TAG_REDUCE: i32 = -4;
const TAG_GATHER: i32 = -5;
const TAG_SCATTER: i32 = -6;
const TAG_ALLGATHER: i32 = -7;
const TAG_ALLTOALL: i32 = -8;

/// Element-wise reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    fn u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

impl Comm {
    /// Binomial-tree broadcast of raw bytes from `root`. Every rank
    /// returns the payload.
    pub fn bcast(&self, root: u32, data: Vec<u8>) -> io::Result<Vec<u8>> {
        let size = self.size();
        if size == 1 {
            return Ok(data);
        }
        // Work in root-relative rank space.
        let vrank = (self.rank() + size - root) % size;
        let data = if vrank == 0 {
            data
        } else {
            // Parent: clear the lowest set bit of the virtual rank.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % size;
            let (_, _, payload) = self.recv(Some(parent), Some(TAG_BCAST))?;
            payload
        };
        // Forward to children: set bits above my highest set bit.
        let mut mask = 1u32;
        while mask < size {
            if vrank & mask != 0 {
                break;
            }
            let child = vrank | mask;
            if child < size {
                let dest = (child + root) % size;
                self.send_internal(dest, TAG_BCAST, &data)?;
            }
            mask <<= 1;
        }
        Ok(data)
    }

    /// Flat (linear) broadcast: root sends to everyone directly. The
    /// wide-area-hostile baseline for the collective ablation.
    pub fn bcast_flat(&self, root: u32, data: Vec<u8>) -> io::Result<Vec<u8>> {
        if self.size() == 1 {
            return Ok(data);
        }
        if self.rank() == root {
            for r in 0..self.size() {
                if r != root {
                    self.send_internal(r, TAG_BCAST, &data)?;
                }
            }
            Ok(data)
        } else {
            let (_, _, payload) = self.recv(Some(root), Some(TAG_BCAST))?;
            Ok(payload)
        }
    }

    /// Binomial-tree reduction of an `f64` vector to `root`.
    /// Returns `Some(result)` on root, `None` elsewhere.
    pub fn reduce_f64(
        &self,
        root: u32,
        mut local: Vec<f64>,
        op: ReduceOp,
    ) -> io::Result<Option<Vec<f64>>> {
        let size = self.size();
        let vrank = (self.rank() + size - root) % size;
        let mut mask = 1u32;
        while mask < size {
            if vrank & mask == 0 {
                let child = vrank | mask;
                if child < size {
                    let (_, _, bytes) = self.recv(Some((child + root) % size), Some(TAG_REDUCE))?;
                    let other = unpack_f64s(&bytes)?;
                    combine_f64(&mut local, &other, op)?;
                }
            } else {
                let parent = vrank & !mask;
                self.send_internal((parent + root) % size, TAG_REDUCE, &pack_f64s(&local))?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(local))
    }

    /// Reduce + broadcast.
    pub fn allreduce_f64(&self, local: Vec<f64>, op: ReduceOp) -> io::Result<Vec<f64>> {
        let reduced = self.reduce_f64(0, local, op)?;
        let bytes = self.bcast(0, reduced.map(|v| pack_f64s(&v)).unwrap_or_default())?;
        unpack_f64s(&bytes)
    }

    /// Binomial-tree reduction of a `u64` vector to `root`.
    pub fn reduce_u64(
        &self,
        root: u32,
        mut local: Vec<u64>,
        op: ReduceOp,
    ) -> io::Result<Option<Vec<u64>>> {
        let size = self.size();
        let vrank = (self.rank() + size - root) % size;
        let mut mask = 1u32;
        while mask < size {
            if vrank & mask == 0 {
                let child = vrank | mask;
                if child < size {
                    let (_, _, bytes) = self.recv(Some((child + root) % size), Some(TAG_REDUCE))?;
                    let other = unpack_u64s(&bytes)?;
                    if other.len() != local.len() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "reduce length mismatch",
                        ));
                    }
                    for (a, b) in local.iter_mut().zip(other) {
                        *a = op.u64(*a, b);
                    }
                }
            } else {
                let parent = vrank & !mask;
                self.send_internal((parent + root) % size, TAG_REDUCE, &pack_u64s(&local))?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(local))
    }

    /// Gather raw byte blobs at `root` (index = rank). Returns
    /// `Some(vec)` on root, `None` elsewhere.
    pub fn gather(&self, root: u32, data: Vec<u8>) -> io::Result<Option<Vec<Vec<u8>>>> {
        if self.rank() == root {
            let mut out: Vec<Option<Vec<u8>>> = vec![None; self.size() as usize];
            out[root as usize] = Some(data);
            for _ in 0..self.size() - 1 {
                let (src, _, payload) = self.recv(None, Some(TAG_GATHER))?;
                out[src as usize] = Some(payload);
            }
            let full: io::Result<Vec<Vec<u8>>> = out
                .into_iter()
                .map(|o| {
                    o.ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "gather missed a rank")
                    })
                })
                .collect();
            Ok(Some(full?))
        } else {
            self.send_internal(root, TAG_GATHER, &data)?;
            Ok(None)
        }
    }

    /// Scatter: `root` holds one byte-blob per rank (index = rank) and
    /// delivers each rank its own. Every rank returns its slice.
    pub fn scatter(&self, root: u32, blobs: Option<Vec<Vec<u8>>>) -> io::Result<Vec<u8>> {
        if self.rank() == root {
            let blobs = blobs.ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "root must supply blobs")
            })?;
            if blobs.len() != self.size() as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "scatter needs one blob per rank",
                ));
            }
            let mut mine = Vec::new();
            for (r, blob) in blobs.into_iter().enumerate() {
                if r as u32 == root {
                    mine = blob;
                } else {
                    self.send_internal(r as u32, TAG_SCATTER, &blob)?;
                }
            }
            Ok(mine)
        } else {
            let (_, _, payload) = self.recv(Some(root), Some(TAG_SCATTER))?;
            Ok(payload)
        }
    }

    /// Allgather: every rank contributes a byte-blob; every rank
    /// returns the full vector (index = rank). Implemented as gather
    /// at rank 0 followed by a binomial broadcast of the concatenation.
    pub fn allgather(&self, data: Vec<u8>) -> io::Result<Vec<Vec<u8>>> {
        let gathered = self.gather(0, data)?;
        // Root frames the blobs (u32 count, then u32 length + bytes
        // each) and broadcasts.
        let framed = match gathered {
            Some(blobs) => {
                let mut buf = Vec::new();
                buf.extend_from_slice(&(blobs.len() as u32).to_be_bytes());
                for b in &blobs {
                    buf.extend_from_slice(&(b.len() as u32).to_be_bytes());
                    buf.extend_from_slice(b);
                }
                buf
            }
            None => Vec::new(),
        };
        let buf = self.bcast_tagged(0, framed, TAG_ALLGATHER)?;
        // Decode.
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
            if buf.len() < *pos + n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "short allgather frame",
                ));
            }
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let count = u32::from_be_bytes(read4(take(&mut pos, 4)?));
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let len = u32::from_be_bytes(read4(take(&mut pos, 4)?)) as usize;
            out.push(take(&mut pos, len)?.to_vec());
        }
        Ok(out)
    }

    /// All-to-all personalized exchange: rank `i` gives `blobs[j]` to
    /// rank `j`; every rank returns the vector it received (index =
    /// source rank). Linear exchange — adequate at metacomputing scale
    /// (tens of ranks).
    pub fn alltoall(&self, blobs: Vec<Vec<u8>>) -> io::Result<Vec<Vec<u8>>> {
        if blobs.len() != self.size() as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "alltoall needs one blob per rank",
            ));
        }
        let me = self.rank();
        let mut out: Vec<Option<Vec<u8>>> = vec![None; blobs.len()];
        // Send everything first (messages buffer at the receivers), so
        // no send/recv interleaving deadlock is possible.
        for (r, blob) in blobs.iter().enumerate() {
            if r as u32 != me {
                self.send_internal(r as u32, TAG_ALLTOALL, blob)?;
            }
        }
        out[me as usize] = Some(blobs[me as usize].clone());
        for _ in 0..self.size() - 1 {
            let (src, _, payload) = self.recv(None, Some(TAG_ALLTOALL))?;
            out[src as usize] = Some(payload);
        }
        out.into_iter()
            .map(|o| {
                o.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "alltoall missed a rank")
                })
            })
            .collect()
    }

    /// Binomial broadcast on an explicit reserved tag (lets composed
    /// collectives avoid colliding with user-level `bcast` calls that
    /// may be in flight on other branches).
    fn bcast_tagged(&self, root: u32, data: Vec<u8>, tag: i32) -> io::Result<Vec<u8>> {
        let size = self.size();
        if size == 1 {
            return Ok(data);
        }
        let vrank = (self.rank() + size - root) % size;
        let data = if vrank == 0 {
            data
        } else {
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % size;
            let (_, _, payload) = self.recv(Some(parent), Some(tag))?;
            payload
        };
        let mut mask = 1u32;
        while mask < size {
            if vrank & mask != 0 {
                break;
            }
            let child = vrank | mask;
            if child < size {
                let dest = (child + root) % size;
                self.send_internal(dest, tag, &data)?;
            }
            mask <<= 1;
        }
        Ok(data)
    }

    /// Barrier: binomial reduce of nothing to rank 0, then broadcast.
    pub fn barrier(&self) -> io::Result<()> {
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        let vrank = self.rank(); // root fixed at 0
        let mut mask = 1u32;
        while mask < size {
            if vrank & mask == 0 {
                let child = vrank | mask;
                if child < size {
                    self.recv(Some(child), Some(TAG_BARRIER_UP))?;
                }
            } else {
                let parent = vrank & !mask;
                self.send_internal(parent, TAG_BARRIER_UP, &[])?;
                // Await release.
                self.recv(Some(parent), Some(TAG_BARRIER_DOWN))?;
                // Release own children (bits below mask).
                let mut m2 = mask >> 1;
                while m2 > 0 {
                    let child = vrank | m2;
                    if child < size && child != vrank {
                        self.send_internal(child, TAG_BARRIER_DOWN, &[])?;
                    }
                    m2 >>= 1;
                }
                return Ok(());
            }
            mask <<= 1;
        }
        // Rank 0: release children.
        let mut m2 = mask >> 1;
        while m2 > 0 {
            let child = m2;
            if child < size {
                self.send_internal(child, TAG_BARRIER_DOWN, &[])?;
            }
            m2 >>= 1;
        }
        Ok(())
    }
}

fn combine_f64(local: &mut [f64], other: &[f64], op: ReduceOp) -> io::Result<()> {
    if other.len() != local.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "reduce length mismatch",
        ));
    }
    for (a, b) in local.iter_mut().zip(other) {
        *a = op.f64(*a, *b);
    }
    Ok(())
}
