//! Typed pack/unpack helpers with an explicit big-endian wire format.
//!
//! The paper's wide-area cluster mixes UltraSPARC (big-endian), MIPS
//! (big-endian) and x86 (little-endian) machines; MPICH-G converts at
//! the wire. We fix network byte order for all cross-rank payloads so
//! the same property holds regardless of the build host.

use std::io;

fn short(err: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

pub fn pack_u64s(values: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_u64s(bytes: &[u8]) -> io::Result<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(short("u64 array length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            u64::from_be_bytes(a)
        })
        .collect())
}

pub fn pack_i64s(values: &[i64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_i64s(bytes: &[u8]) -> io::Result<Vec<i64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(short("i64 array length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            i64::from_be_bytes(a)
        })
        .collect())
}

pub fn pack_f64s(values: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_f64s(bytes: &[u8]) -> io::Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(short("f64 array length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            f64::from_be_bytes(a)
        })
        .collect())
}

pub fn pack_u32s(values: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 4);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_u32s(bytes: &[u8]) -> io::Result<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(short("u32 array length not a multiple of 4"));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| {
            let mut a = [0u8; 4];
            a.copy_from_slice(c);
            u32::from_be_bytes(a)
        })
        .collect())
}

/// One u64 scalar.
pub fn pack_u64(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

pub fn unpack_u64(bytes: &[u8]) -> io::Result<u64> {
    let arr: [u8; 8] = bytes.try_into().map_err(|_| short("expected 8 bytes"))?;
    Ok(u64::from_be_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(
            unpack_u64(&pack_u64(0xDEAD_BEEF_CAFE_F00D)).unwrap(),
            0xDEAD_BEEF_CAFE_F00D
        );
        assert!(unpack_u64(&[1, 2, 3]).is_err());
    }

    #[test]
    fn misaligned_arrays_rejected() {
        assert!(unpack_u64s(&[0; 9]).is_err());
        assert!(unpack_f64s(&[0; 7]).is_err());
        assert!(unpack_u32s(&[0; 6]).is_err());
        assert!(unpack_i64s(&[0; 12]).is_err());
    }

    #[test]
    fn wire_format_is_big_endian() {
        assert_eq!(pack_u32s(&[1]), vec![0, 0, 0, 1]);
        assert_eq!(pack_u64s(&[256]), vec![0, 0, 0, 0, 0, 0, 1, 0]);
    }

    /// SplitMix64 — a local deterministic stream for randomized tests.
    fn test_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Pack/unpack round trips across random vectors of every type.
    #[test]
    fn random_vectors_roundtrip() {
        let mut r = test_rng(0xda7a);
        for _ in 0..200 {
            let n = (r() % 64) as usize;
            let u64s: Vec<u64> = (0..n).map(|_| r()).collect();
            assert_eq!(unpack_u64s(&pack_u64s(&u64s)).unwrap(), u64s);
            let i64s: Vec<i64> = (0..n).map(|_| r() as i64).collect();
            assert_eq!(unpack_i64s(&pack_i64s(&i64s)).unwrap(), i64s);
            let u32s: Vec<u32> = (0..n).map(|_| r() as u32).collect();
            assert_eq!(unpack_u32s(&pack_u32s(&u32s)).unwrap(), u32s);
            // Normal (non-NaN, non-subnormal) floats compare exactly.
            let f64s: Vec<f64> = (0..n)
                .map(|_| 1.0 + (r() % 1_000_000) as f64 / 997.0)
                .collect();
            assert_eq!(unpack_f64s(&pack_f64s(&f64s)).unwrap(), f64s);
        }
    }
}
