//! Typed pack/unpack helpers with an explicit big-endian wire format.
//!
//! The paper's wide-area cluster mixes UltraSPARC (big-endian), MIPS
//! (big-endian) and x86 (little-endian) machines; MPICH-G converts at
//! the wire. We fix network byte order for all cross-rank payloads so
//! the same property holds regardless of the build host.

use std::io;

fn short(err: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

pub fn pack_u64s(values: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_u64s(bytes: &[u8]) -> io::Result<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(short("u64 array length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
        .collect())
}

pub fn pack_i64s(values: &[i64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_i64s(bytes: &[u8]) -> io::Result<Vec<i64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(short("i64 array length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| i64::from_be_bytes(c.try_into().unwrap()))
        .collect())
}

pub fn pack_f64s(values: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_f64s(bytes: &[u8]) -> io::Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(short("f64 array length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_be_bytes(c.try_into().unwrap()))
        .collect())
}

pub fn pack_u32s(values: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 4);
    for v in values {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

pub fn unpack_u32s(bytes: &[u8]) -> io::Result<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(short("u32 array length not a multiple of 4"));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
        .collect())
}

/// One u64 scalar.
pub fn pack_u64(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

pub fn unpack_u64(bytes: &[u8]) -> io::Result<u64> {
    let arr: [u8; 8] = bytes.try_into().map_err(|_| short("expected 8 bytes"))?;
    Ok(u64::from_be_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(unpack_u64(&pack_u64(0xDEAD_BEEF_CAFE_F00D)).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert!(unpack_u64(&[1, 2, 3]).is_err());
    }

    #[test]
    fn misaligned_arrays_rejected() {
        assert!(unpack_u64s(&[0; 9]).is_err());
        assert!(unpack_f64s(&[0; 7]).is_err());
        assert!(unpack_u32s(&[0; 6]).is_err());
        assert!(unpack_i64s(&[0; 12]).is_err());
    }

    #[test]
    fn wire_format_is_big_endian() {
        assert_eq!(pack_u32s(&[1]), vec![0, 0, 0, 1]);
        assert_eq!(pack_u64s(&[256]), vec![0, 0, 0, 0, 0, 0, 1, 0]);
    }

    proptest::proptest! {
        #[test]
        fn prop_u64s(v in proptest::collection::vec(proptest::num::u64::ANY, 0..64)) {
            proptest::prop_assert_eq!(unpack_u64s(&pack_u64s(&v)).unwrap(), v);
        }

        #[test]
        fn prop_i64s(v in proptest::collection::vec(proptest::num::i64::ANY, 0..64)) {
            proptest::prop_assert_eq!(unpack_i64s(&pack_i64s(&v)).unwrap(), v);
        }

        #[test]
        fn prop_f64s(v in proptest::collection::vec(proptest::num::f64::NORMAL, 0..64)) {
            proptest::prop_assert_eq!(unpack_f64s(&pack_f64s(&v)).unwrap(), v);
        }

        #[test]
        fn prop_u32s(v in proptest::collection::vec(proptest::num::u32::ANY, 0..64)) {
            proptest::prop_assert_eq!(unpack_u32s(&pack_u32s(&v)).unwrap(), v);
        }
    }
}
