//! The communicator: point-to-point messaging with source/tag matching.

use crate::packet::Packet;
use nexus::{Endpoint, NexusContext, Startpoint};
use nexus_proxy::stripe::{Accept, Reassembler, StripeFrame, StripePlan, StripeStats};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wacs_sync::OrderedMutex;

/// Tags below this are reserved for collectives; user tags must be
/// non-negative.
pub const USER_TAG_MIN: i32 = 0;

/// Reserved tag of stripe transport frames ([`Comm::send_striped`]).
/// Collectives use the small negative tags; this one is far below
/// them so the spaces can both grow.
pub const STRIPE_TAG: i32 = -64;

/// Chunk size for striped sends: one relay segment per chunk.
pub const STRIPE_CHUNK_BYTES: u32 = 64 * 1024;

/// Whole-stripe retransmit attempts after a dead attachment.
const STRIPE_REDIALS: u32 = 2;

/// Receive from any rank.
pub const ANY_SOURCE: Option<u32> = None;

/// Receive any tag.
pub const ANY_TAG: Option<i32> = None;

/// Per-peer send-side state: the lazily attached startpoint plus the
/// sequence number of the next frame to that peer.
struct PeerLink {
    sp: Option<Startpoint>,
    next_seq: u64,
}

/// Registry handles for a communicator's message path. Shared across
/// ranks when they share a registry, so the histograms aggregate the
/// whole world's traffic. Wall-clock timings — diagnostics, not
/// replay-deterministic.
struct CommObs {
    /// One `send` call: encode + (re)attach + socket write.
    send_ns: wacs_obs::Histogram,
    /// One blocking `recv` call: wait + match, so queueing delay is
    /// included by design.
    recv_ns: wacs_obs::Histogram,
    dup_dropped: wacs_obs::Counter,
    resends: wacs_obs::Counter,
    /// The striped bulk path (`wacs.stripe.*`, shared schema with the
    /// proxy layers).
    stripe: StripeStats,
}

impl CommObs {
    fn in_registry(registry: &wacs_obs::Registry) -> CommObs {
        CommObs {
            send_ns: registry.histogram("gridmpi.send_ns"),
            recv_ns: registry.histogram("gridmpi.recv_ns"),
            dup_dropped: registry.counter("gridmpi.dup_dropped"),
            resends: registry.counter("gridmpi.resends"),
            stripe: StripeStats::in_registry(registry),
        }
    }
}

/// Per-rank communicator handle (the `MPI_COMM_WORLD` analogue).
///
/// One `Comm` lives on each rank's thread. Sends lazily attach a
/// startpoint to the destination's advertised endpoint — through the
/// Nexus Proxy whenever the rank's [`NexusContext`] says so — exactly
/// how the paper's MPICH-G ranks communicate across the firewall.
///
/// Sends survive one relay reconnect: if the cached startpoint fails
/// mid-send (outer proxy restarted, connection reset), the frame is
/// retransmitted once on a fresh attachment with the *same* sequence
/// number, and receivers drop any frame whose sequence they have
/// already accepted — so a frame that made it through both the dying
/// and the fresh connection is delivered exactly once, in order.
pub struct Comm {
    rank: u32,
    size: u32,
    ctx: NexusContext,
    ep: Endpoint,
    /// Advertised endpoint addresses of all ranks (index = rank).
    addrs: Arc<Vec<(String, u16)>>,
    /// Lazily attached startpoints + send sequence, per peer.
    peers: Vec<OrderedMutex<PeerLink>>,
    /// Messages received but not yet matched (MPI's unexpected-message
    /// queue).
    stash: OrderedMutex<VecDeque<Packet>>,
    /// Highest sequence accepted from each source (dedup after a
    /// sender-side retransmit). Valid because per-pair sends are
    /// sequential and each connection is FIFO.
    last_seq: OrderedMutex<Vec<u64>>,
    epoch: Instant,
    /// Diagnostics.
    sent: OrderedMutex<u64>,
    received: OrderedMutex<u64>,
    /// Frames dropped as duplicates of an already-accepted sequence.
    dup_dropped: OrderedMutex<u64>,
    /// Sends that needed the reconnect-and-retransmit path.
    resends: OrderedMutex<u64>,
    /// In-flight striped transfers, keyed by `(src, transfer)`. The
    /// stripe transport bypasses `last_seq` (parallel flows break the
    /// FIFO-per-pair assumption that dedup relies on); the reassembler
    /// dedups per chunk offset instead.
    stripe_rx: OrderedMutex<HashMap<(u32, u64), Reassembler>>,
    /// Completed transfer ids, so straggler duplicates of a finished
    /// transfer are dropped instead of re-opening a reassembler that
    /// can never complete. Grows by 16 bytes per striped transfer —
    /// negligible next to the transfers themselves.
    stripe_done: OrderedMutex<std::collections::HashSet<(u32, u64)>>,
    /// Next striped-transfer id issued by this rank.
    next_transfer: OrderedMutex<u64>,
    /// Striped transfers reassembled to completion (diagnostics).
    stripe_completed: OrderedMutex<u64>,
    obs: Option<CommObs>,
}

impl Comm {
    pub(crate) fn new(
        rank: u32,
        size: u32,
        ctx: NexusContext,
        ep: Endpoint,
        addrs: Arc<Vec<(String, u16)>>,
    ) -> Comm {
        let peers = (0..size)
            .map(|peer| {
                OrderedMutex::new(
                    &format!("gridmpi.comm.peer{peer}"),
                    PeerLink {
                        sp: None,
                        next_seq: 1,
                    },
                )
            })
            .collect();
        Comm {
            rank,
            size,
            ctx,
            ep,
            addrs,
            peers,
            stash: OrderedMutex::new("gridmpi.comm.stash", VecDeque::new()),
            last_seq: OrderedMutex::new("gridmpi.comm.dedup", vec![0; size as usize]),
            epoch: Instant::now(),
            sent: OrderedMutex::new("gridmpi.comm.sent", 0),
            received: OrderedMutex::new("gridmpi.comm.received", 0),
            dup_dropped: OrderedMutex::new("gridmpi.comm.dup_dropped", 0),
            resends: OrderedMutex::new("gridmpi.comm.resends", 0),
            stripe_rx: OrderedMutex::new("gridmpi.comm.stripe_rx", HashMap::new()),
            stripe_done: OrderedMutex::new(
                "gridmpi.comm.stripe_done",
                std::collections::HashSet::new(),
            ),
            next_transfer: OrderedMutex::new("gridmpi.comm.next_transfer", 1),
            stripe_completed: OrderedMutex::new("gridmpi.comm.stripe_completed", 0),
            obs: None,
        }
    }

    /// Record send/recv service-time histograms and fault counters
    /// under `gridmpi.*` in `registry`. Ranks sharing a registry
    /// aggregate into the same instruments.
    #[must_use]
    pub fn with_obs(mut self, registry: &wacs_obs::Registry) -> Comm {
        self.obs = Some(CommObs::in_registry(registry));
        self
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn size(&self) -> u32 {
        self.size
    }

    /// The logical host this rank runs on.
    pub fn host(&self) -> &str {
        self.ctx.host()
    }

    /// `MPI_Wtime` analogue: seconds since communicator creation.
    pub fn wtime(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    pub fn messages_sent(&self) -> u64 {
        *self.sent.lock()
    }

    pub fn messages_received(&self) -> u64 {
        *self.received.lock()
    }

    /// Frames dropped as retransmit duplicates (diagnostics).
    pub fn duplicates_dropped(&self) -> u64 {
        *self.dup_dropped.lock()
    }

    /// Sends that took the reconnect-and-retransmit path (diagnostics).
    pub fn resends(&self) -> u64 {
        *self.resends.lock()
    }

    /// Drop the cached startpoint to `dest`, as if its connection had
    /// been torn down by a relay failure: the next send to `dest` must
    /// re-attach. Test hook for the reconnect path.
    #[doc(hidden)]
    pub fn reset_peer_link(&self, dest: u32) {
        self.peers[dest as usize].lock().sp = None;
    }

    /// Send `payload` to `dest` with `tag` (tags < 0 are reserved).
    pub fn send(&self, dest: u32, tag: i32, payload: &[u8]) -> io::Result<()> {
        assert!(tag >= USER_TAG_MIN, "negative tags are reserved");
        self.send_internal(dest, tag, payload)
    }

    /// Striped transfers this rank has reassembled (diagnostics).
    pub fn striped_completed(&self) -> u64 {
        *self.stripe_completed.lock()
    }

    /// Send a large `payload` to `dest` as `stripes` parallel flows
    /// (GridFTP-style striping over the relay; DESIGN.md §6e). The
    /// receiver's ordinary `recv(Some(src), Some(tag))` delivers the
    /// reassembled payload once every chunk has arrived.
    ///
    /// Each stripe rides its own attachment — crossing the proxy,
    /// that is its own relay flow — and carries an arithmetically
    /// determined slice of the chunks, framed as [`StripeFrame`]s
    /// inside packets tagged [`STRIPE_TAG`]. A stripe whose
    /// attachment dies mid-send is retransmitted whole on a fresh
    /// attachment (bounded retries); the receiver dedups chunks by
    /// offset, so duplicates are absorbed, never re-delivered.
    ///
    /// Ordering caveat: a striped message is matched like any other,
    /// but it completes when its *last* chunk arrives — it is not
    /// ordered relative to plain sends issued around it.
    pub fn send_striped(
        &self,
        dest: u32,
        tag: i32,
        payload: &[u8],
        stripes: u16,
    ) -> io::Result<()> {
        assert!(tag >= USER_TAG_MIN, "negative tags are reserved");
        assert!(dest < self.size, "rank {dest} out of range");
        assert_ne!(dest, self.rank, "self-sends are not supported");
        let start = Instant::now();
        let plan = StripePlan::new(payload.len() as u64, stripes, STRIPE_CHUNK_BYTES)
            .map_err(io::Error::from)?;
        let transfer = {
            let mut t = self.next_transfer.lock();
            let id = *t;
            *t += 1;
            id
        };
        let result: io::Result<()> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(usize::from(stripes));
            for stripe in 0..stripes {
                let plan = &plan;
                handles.push(scope.spawn(move || -> io::Result<()> {
                    let mut attempt = 0u32;
                    loop {
                        match self.send_one_stripe(dest, tag, payload, plan, transfer, stripe) {
                            Ok(()) => return Ok(()),
                            Err(e) if attempt < STRIPE_REDIALS => {
                                let _ = e;
                                attempt += 1;
                                *self.resends.lock() += 1;
                                if let Some(o) = &self.obs {
                                    o.resends.inc();
                                    o.stripe.failovers.inc();
                                    o.stripe.resent_chunks.add(plan.chunks_on(stripe));
                                }
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(r) => r?,
                    Err(_) => return Err(io::Error::other("stripe sender thread panicked")),
                }
            }
            Ok(())
        });
        result?;
        *self.sent.lock() += 1;
        if let Some(o) = &self.obs {
            o.stripe.chunks_sent.add(plan.chunk_count());
            o.send_ns.record(start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// One attempt at one stripe: fresh attachment, `Open`, the
    /// stripe's chunks in sequence order, `Fin`. Every frame is a
    /// [`STRIPE_TAG`] packet (packet seq 0 — the stripe layer does
    /// its own dedup).
    fn send_one_stripe(
        &self,
        dest: u32,
        tag: i32,
        payload: &[u8],
        plan: &StripePlan,
        transfer: u64,
        stripe: u16,
    ) -> io::Result<()> {
        let sp = self.attach(dest)?;
        let send_frame = |f: &StripeFrame| -> io::Result<()> {
            let body = f.encode_body().map_err(io::Error::from)?;
            sp.send(&Packet::encode(self.rank, STRIPE_TAG, 0, &body))
        };
        send_frame(&StripeFrame::Open {
            transfer,
            stripe,
            stripes: plan.stripes(),
            chunk: plan.chunk_bytes(),
            total_len: plan.total_len(),
            tag,
        })?;
        for (seq, offset, len) in plan.iter_stripe(stripe) {
            let start = offset as usize;
            send_frame(&StripeFrame::Data {
                transfer,
                stripe,
                seq,
                offset,
                bytes: payload[start..start + len as usize].to_vec(),
            })?;
        }
        send_frame(&StripeFrame::Fin {
            transfer,
            stripe,
            chunks: plan.chunks_on(stripe),
        })
    }

    pub(crate) fn send_internal(&self, dest: u32, tag: i32, payload: &[u8]) -> io::Result<()> {
        assert!(dest < self.size, "rank {dest} out of range");
        assert_ne!(dest, self.rank, "self-sends are not supported");
        let start = Instant::now();
        let mut link = self.peers[dest as usize].lock();
        let frame = Packet::encode(self.rank, tag, link.next_seq, payload);
        let sp = match link.sp.take() {
            Some(sp) => sp,
            None => self.attach(dest)?,
        };
        match sp.send(&frame) {
            Ok(()) => link.sp = Some(sp),
            Err(_) => {
                // The cached attachment died (relay restart, reset).
                // We cannot know whether the frame survived, so
                // reconnect once and retransmit the *same* frame — the
                // receiver's per-source dedup discards the extra copy
                // if both made it through.
                let fresh = self.attach(dest)?;
                fresh.send(&frame)?;
                link.sp = Some(fresh);
                *self.resends.lock() += 1;
                if let Some(o) = &self.obs {
                    o.resends.inc();
                }
            }
        }
        link.next_seq += 1;
        *self.sent.lock() += 1;
        if let Some(o) = &self.obs {
            o.send_ns.record(start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn attach(&self, dest: u32) -> io::Result<Startpoint> {
        let (host, port) = &self.addrs[dest as usize];
        self.ctx
            .attach_retry((host, *port), 200, Duration::from_millis(5))
    }

    /// Decode an arrived frame and apply per-source dedup. Returns
    /// `None` for a retransmit duplicate (already accepted).
    fn ingest(&self, frame: Vec<u8>) -> io::Result<Option<Packet>> {
        let p = Packet::decode(frame)?;
        // Stripe transport frames are routed *before* the sequence
        // dedup: they arrive over parallel flows, so the FIFO-per-pair
        // assumption behind `last_seq` does not hold for them. The
        // reassembler dedups per chunk offset instead.
        if p.tag == STRIPE_TAG {
            return self.ingest_stripe(p);
        }
        let mut last = self.last_seq.lock();
        let slot = last.get_mut(p.src as usize).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("packet from out-of-range rank {}", p.src),
            )
        })?;
        if p.seq <= *slot {
            drop(last);
            *self.dup_dropped.lock() += 1;
            if let Some(o) = &self.obs {
                o.dup_dropped.inc();
            }
            return Ok(None);
        }
        *slot = p.seq;
        drop(last);
        *self.received.lock() += 1;
        Ok(Some(p))
    }

    /// Feed one stripe transport frame to the per-transfer
    /// reassembler. Returns the synthesized application packet when
    /// the frame completes its transfer, `None` while chunks are
    /// still outstanding (or for an absorbed duplicate).
    fn ingest_stripe(&self, p: Packet) -> io::Result<Option<Packet>> {
        if p.src >= self.size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("stripe frame from out-of-range rank {}", p.src),
            ));
        }
        let frame = StripeFrame::decode_body(&p.payload)?;
        let key = (p.src, frame.transfer_id());
        // Stragglers of a finished transfer (a stripe retransmitted
        // whole after the last needed chunk arrived) are duplicates,
        // not a new transfer: drop them.
        if self.stripe_done.lock().contains(&key) {
            *self.dup_dropped.lock() += 1;
            if let Some(o) = &self.obs {
                o.dup_dropped.inc();
                o.stripe.dup_chunks.inc();
            }
            return Ok(None);
        }
        let mut map = self.stripe_rx.lock();
        if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
            // First frame of a transfer must carry the geometry; a
            // non-Open frame ahead of any Open (reordered across
            // parallel flows) is dropped — its stripe's Open precedes
            // it on the *same* FIFO flow, so only cross-flow strays
            // land here, and their stripe will re-deliver.
            match Reassembler::open(&frame) {
                Ok(rx) => {
                    slot.insert(rx);
                }
                Err(_) => {
                    drop(map);
                    *self.dup_dropped.lock() += 1;
                    if let Some(o) = &self.obs {
                        o.dup_dropped.inc();
                    }
                    return Ok(None);
                }
            }
        }
        let Some(rx) = map.get_mut(&key) else {
            return Ok(None);
        };
        let outcome = rx.accept(&frame).map_err(io::Error::from)?;
        match outcome {
            Accept::Complete => {
                let Some(rx) = map.remove(&key) else {
                    return Ok(None);
                };
                drop(map);
                self.stripe_done.lock().insert(key);
                let tag = rx.tag();
                let payload = rx.into_payload().map_err(io::Error::from)?;
                *self.received.lock() += 1;
                *self.stripe_completed.lock() += 1;
                if let Some(o) = &self.obs {
                    o.stripe.chunks_received.inc();
                    o.stripe.transfers.inc();
                }
                Ok(Some(Packet {
                    src: p.src,
                    tag,
                    seq: 0,
                    payload,
                }))
            }
            Accept::Duplicate => {
                drop(map);
                *self.dup_dropped.lock() += 1;
                if let Some(o) = &self.obs {
                    o.dup_dropped.inc();
                    o.stripe.dup_chunks.inc();
                }
                Ok(None)
            }
            Accept::Fresh => {
                drop(map);
                if let Some(o) = &self.obs {
                    if matches!(frame, StripeFrame::Data { .. }) {
                        o.stripe.chunks_received.inc();
                    }
                }
                Ok(None)
            }
        }
    }

    /// Blocking receive with matching. Returns `(src, tag, payload)`.
    pub fn recv(&self, src: Option<u32>, tag: Option<i32>) -> io::Result<(u32, i32, Vec<u8>)> {
        let start = Instant::now();
        let res = self.recv_inner(src, tag);
        if let Some(o) = &self.obs {
            o.recv_ns.record(start.elapsed().as_nanos() as u64);
        }
        res
    }

    fn recv_inner(&self, src: Option<u32>, tag: Option<i32>) -> io::Result<(u32, i32, Vec<u8>)> {
        // 1. Unexpected-message queue first (MPI ordering semantics).
        if let Some(p) = self.take_from_stash(src, tag) {
            return Ok((p.src, p.tag, p.payload));
        }
        // 2. Drain the endpoint until a match arrives.
        loop {
            let frame = self.ep.recv()?;
            let Some(p) = self.ingest(frame)? else {
                continue;
            };
            if p.matches(src, tag) {
                return Ok((p.src, p.tag, p.payload));
            }
            self.stash.lock().push_back(p);
        }
    }

    /// Receive with a deadline; `Ok(None)` on timeout.
    pub fn recv_timeout(
        &self,
        src: Option<u32>,
        tag: Option<i32>,
        timeout: Duration,
    ) -> io::Result<Option<(u32, i32, Vec<u8>)>> {
        let deadline = Instant::now() + timeout;
        if let Some(p) = self.take_from_stash(src, tag) {
            return Ok(Some((p.src, p.tag, p.payload)));
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.ep.recv_timeout(deadline - now)? {
                Some(frame) => {
                    let Some(p) = self.ingest(frame)? else {
                        continue;
                    };
                    if p.matches(src, tag) {
                        return Ok(Some((p.src, p.tag, p.payload)));
                    }
                    self.stash.lock().push_back(p);
                }
                None => return Ok(None),
            }
        }
    }

    /// Non-blocking probe: is a matching message available? Drains any
    /// already-arrived traffic into the unexpected queue first — this
    /// is the primitive the knapsack master uses to poll for steal
    /// requests between branch operations.
    pub fn iprobe(&self, src: Option<u32>, tag: Option<i32>) -> io::Result<bool> {
        while let Some(frame) = self.ep.try_recv()? {
            if let Some(p) = self.ingest(frame)? {
                self.stash.lock().push_back(p);
            }
        }
        Ok(self.stash.lock().iter().any(|p| p.matches(src, tag)))
    }

    /// Non-blocking receive.
    pub fn try_recv(
        &self,
        src: Option<u32>,
        tag: Option<i32>,
    ) -> io::Result<Option<(u32, i32, Vec<u8>)>> {
        if self.iprobe(src, tag)? {
            Ok(self
                .take_from_stash(src, tag)
                .map(|p| (p.src, p.tag, p.payload)))
        } else {
            Ok(None)
        }
    }

    /// Combined send + receive (deadlock-safe: the outbound message is
    /// written to the socket before blocking on the inbound one, and
    /// endpoints buffer, so a symmetric exchange cannot wedge).
    pub fn sendrecv(
        &self,
        dest: u32,
        send_tag: i32,
        payload: &[u8],
        src: Option<u32>,
        recv_tag: Option<i32>,
    ) -> io::Result<(u32, i32, Vec<u8>)> {
        self.send(dest, send_tag, payload)?;
        self.recv(src, recv_tag)
    }

    fn take_from_stash(&self, src: Option<u32>, tag: Option<i32>) -> Option<Packet> {
        let mut stash = self.stash.lock();
        let idx = stash.iter().position(|p| p.matches(src, tag))?;
        stash.remove(idx)
    }

    /// The advertised address of this rank's endpoint (diagnostics).
    pub fn advertised(&self) -> (&str, u16) {
        self.ep.advertised()
    }
}
