//! `gridmpi` — an MPICH-G-style message passing library for the
//! firewall-compliant wide-area cluster.
//!
//! The paper implements its knapsack workload with MPICH-G (Globus's
//! grid-enabled MPI). This crate reproduces the pieces that matter for
//! that experiment and its measurements:
//!
//! * point-to-point send/recv with source/tag matching and an
//!   unexpected-message queue ([`comm`]);
//! * non-blocking probe (`iprobe`) — the primitive the self-scheduling
//!   master polls between branch operations;
//! * binomial-tree collectives plus a flat-broadcast baseline for the
//!   wide-area collective ablation ([`collective`]);
//! * big-endian wire conversion for heterogeneous hosts ([`datatype`]);
//! * a world launcher that plays DUROC's address-exchange role
//!   ([`world`]).
//!
//! Transport comes from [`nexus`]: each rank carries a `NexusContext`,
//! so ranks behind the firewall transparently route through the Nexus
//! Proxy while ranks on open hosts connect directly.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod collective;
pub mod comm;
pub mod datatype;
pub mod packet;
pub mod world;

pub use collective::ReduceOp;
pub use comm::{Comm, ANY_SOURCE, ANY_TAG, STRIPE_CHUNK_BYTES, STRIPE_TAG};
pub use world::{run_world, RankSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use firewall::vnet::VNet;
    use firewall::{Policy, NXPORT, OUTER_PORT};
    use nexus::NexusContext;
    use nexus_proxy::{InnerConfig, InnerServer, OuterConfig, OuterServer};

    struct World {
        net: VNet,
        _outer: OuterServer,
        _inner: InnerServer,
    }

    /// Two sites; RWCP firewalled with proxy, ETL open. COMPaS nodes
    /// compas0..compas3 inside, etl0..etl3 outside.
    fn world() -> World {
        let net = VNet::new();
        let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
        let dmz = net.add_site("dmz", None);
        let etl = net.add_site("etl", None);
        net.add_host("rwcp-sun", rwcp);
        for i in 0..4 {
            net.add_host(format!("compas{i}"), rwcp);
        }
        let inner_ref = net.add_host("rwcp-inner", rwcp);
        net.add_host("rwcp-outer", dmz);
        for i in 0..4 {
            net.add_host(format!("etl{i}"), etl);
        }
        net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
        let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
        let outer = OuterServer::start(
            net.clone(),
            OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
        )
        .unwrap();
        World {
            net,
            _outer: outer,
            _inner: inner,
        }
    }

    /// n inside ranks (proxied) + m outside ranks (direct): the
    /// wide-area cluster layout.
    fn specs(w: &World, inside: usize, outside: usize) -> Vec<RankSpec> {
        let mut v = Vec::new();
        for i in 0..inside {
            v.push(RankSpec::new(NexusContext::via_proxy(
                w.net.clone(),
                format!("compas{i}"),
                ("rwcp-outer", OUTER_PORT),
            )));
        }
        for i in 0..outside {
            v.push(RankSpec::new(NexusContext::direct(
                w.net.clone(),
                format!("etl{i}"),
            )));
        }
        v
    }

    #[test]
    fn ring_across_the_firewall() {
        let w = world();
        let results = run_world(specs(&w, 2, 2), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            if comm.rank() == 0 {
                comm.send(next, 1, b"token").unwrap();
                let (src, _, data) = comm.recv(Some(prev), Some(1)).unwrap();
                (src, data)
            } else {
                let (src, _, data) = comm.recv(Some(prev), Some(1)).unwrap();
                comm.send(next, 1, &data).unwrap();
                (src, data)
            }
        })
        .unwrap();
        for (i, (src, data)) in results.iter().enumerate() {
            assert_eq!(*src, ((i as u32) + 3) % 4);
            assert_eq!(data, b"token");
        }
    }

    #[test]
    fn send_recv_with_tag_matching() {
        let w = world();
        let results = run_world(specs(&w, 0, 2), |comm| {
            if comm.rank() == 0 {
                // Send out of order; receiver matches by tag.
                comm.send(1, 7, b"seven").unwrap();
                comm.send(1, 8, b"eight").unwrap();
                Vec::new()
            } else {
                let (_, _, eight) = comm.recv(Some(0), Some(8)).unwrap();
                let (_, _, seven) = comm.recv(Some(0), Some(7)).unwrap();
                vec![eight, seven]
            }
        })
        .unwrap();
        assert_eq!(results[1], vec![b"eight".to_vec(), b"seven".to_vec()]);
    }

    #[test]
    fn iprobe_and_try_recv() {
        let w = world();
        run_world(specs(&w, 0, 2), |comm| {
            if comm.rank() == 0 {
                // Nothing waiting yet.
                assert!(!comm.iprobe(None, Some(3)).unwrap());
                comm.send(1, 3, b"go").unwrap();
                // Wait for the reply.
                let got = comm.recv(Some(1), Some(4)).unwrap();
                assert_eq!(got.2, b"done");
            } else {
                // Poll until the message shows up (the master's loop).
                loop {
                    if comm.iprobe(Some(0), Some(3)).unwrap() {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let (_, _, data) = comm.try_recv(Some(0), Some(3)).unwrap().unwrap();
                assert_eq!(data, b"go");
                comm.send(0, 4, b"done").unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn collectives_on_mixed_cluster() {
        let w = world();
        let results = run_world(specs(&w, 2, 3), |comm| {
            // Barrier first (exercises the tree).
            comm.barrier().unwrap();
            // Broadcast from rank 2.
            let data = if comm.rank() == 2 {
                b"payload".to_vec()
            } else {
                Vec::new()
            };
            let got = comm.bcast(2, data).unwrap();
            assert_eq!(got, b"payload");
            // Allreduce a vector.
            let local = vec![comm.rank() as f64, 1.0];
            let sum = comm.allreduce_f64(local, ReduceOp::Sum).unwrap();
            // Gather rank bytes at 0.
            let g = comm.gather(0, vec![comm.rank() as u8]).unwrap();
            if comm.rank() == 0 {
                let g = g.unwrap();
                assert_eq!(g, vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
            }
            sum
        })
        .unwrap();
        for sum in results {
            assert_eq!(sum, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn flat_and_tree_bcast_agree() {
        let w = world();
        let results = run_world(specs(&w, 1, 3), |comm| {
            let data = if comm.rank() == 0 {
                vec![9u8; 100]
            } else {
                vec![]
            };
            let a = comm.bcast(0, data.clone()).unwrap();
            comm.barrier().unwrap();
            let b = comm.bcast_flat(0, data).unwrap();
            (a, b)
        })
        .unwrap();
        for (a, b) in results {
            assert_eq!(a, vec![9u8; 100]);
            assert_eq!(b, vec![9u8; 100]);
        }
    }

    #[test]
    fn scatter_delivers_per_rank_blobs() {
        let w = world();
        let results = run_world(specs(&w, 1, 3), |comm| {
            let blobs = if comm.rank() == 1 {
                Some((0..4).map(|r| vec![r as u8; (r + 1) as usize]).collect())
            } else {
                None
            };
            comm.scatter(1, blobs).unwrap()
        })
        .unwrap();
        for (r, blob) in results.iter().enumerate() {
            assert_eq!(blob, &vec![r as u8; r + 1], "rank {r}");
        }
    }

    #[test]
    fn allgather_collects_everywhere() {
        let w = world();
        let results = run_world(specs(&w, 2, 2), |comm| {
            let mine = format!("rank-{}@{}", comm.rank(), comm.host()).into_bytes();
            comm.allgather(mine).unwrap()
        })
        .unwrap();
        // Every rank sees everyone's contribution in rank order.
        for all in &results {
            assert_eq!(all.len(), 4);
            for (r, blob) in all.iter().enumerate() {
                assert!(
                    String::from_utf8_lossy(blob).starts_with(&format!("rank-{r}@")),
                    "{blob:?}"
                );
            }
        }
        // And all views agree.
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn scatter_root_argument_validation() {
        let w = world();
        run_world(specs(&w, 0, 2), |comm| {
            if comm.rank() == 0 {
                // Wrong blob count must error, not hang the peers: do a
                // correct scatter afterwards so rank 1 completes.
                assert!(comm.scatter(0, Some(vec![vec![]; 5])).is_err());
                assert!(comm.scatter(0, None).is_err());
                let mine = comm
                    .scatter(0, Some(vec![b"a".to_vec(), b"b".to_vec()]))
                    .unwrap();
                assert_eq!(mine, b"a");
            } else {
                let mine = comm.scatter(0, None).unwrap();
                assert_eq!(mine, b"b");
            }
        })
        .unwrap();
    }

    #[test]
    fn reduce_u64_and_min_max() {
        let w = world();
        let results = run_world(specs(&w, 0, 4), |comm| {
            let r = comm.rank() as u64;
            let mx = comm.reduce_u64(0, vec![r], ReduceOp::Max).unwrap();
            comm.barrier().unwrap();
            let mn = comm.reduce_u64(0, vec![r + 10], ReduceOp::Min).unwrap();
            (mx, mn)
        })
        .unwrap();
        assert_eq!(results[0].0.as_ref().unwrap(), &vec![3]);
        assert_eq!(results[0].1.as_ref().unwrap(), &vec![10]);
        for r in &results[1..] {
            assert!(r.0.is_none() && r.1.is_none());
        }
    }

    #[test]
    fn alltoall_personalized_exchange() {
        let w = world();
        let results = run_world(specs(&w, 2, 2), |comm| {
            let blobs: Vec<Vec<u8>> = (0..comm.size())
                .map(|dst| vec![comm.rank() as u8, dst as u8])
                .collect();
            comm.alltoall(blobs).unwrap()
        })
        .unwrap();
        for (me, got) in results.iter().enumerate() {
            for (src, blob) in got.iter().enumerate() {
                assert_eq!(blob, &vec![src as u8, me as u8], "rank {me} from {src}");
            }
        }
        // Wrong blob count errors.
        let w2 = world();
        run_world(specs(&w2, 0, 1), |comm| {
            assert!(comm.alltoall(vec![]).is_err());
        })
        .unwrap();
    }

    #[test]
    fn sendrecv_symmetric_exchange() {
        let w = world();
        let results = run_world(specs(&w, 1, 1), |comm| {
            let peer = 1 - comm.rank();
            let mine = format!("from-{}", comm.rank());
            let (src, _, got) = comm
                .sendrecv(peer, 5, mine.as_bytes(), Some(peer), Some(5))
                .unwrap();
            (src, got)
        })
        .unwrap();
        assert_eq!(results[0], (1, b"from-1".to_vec()));
        assert_eq!(results[1], (0, b"from-0".to_vec()));
    }

    #[test]
    fn wtime_advances() {
        let w = world();
        run_world(specs(&w, 0, 1), |comm| {
            let t0 = comm.wtime();
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert!(comm.wtime() > t0);
        })
        .unwrap();
    }

    #[test]
    fn recv_timeout_returns_none() {
        let w = world();
        run_world(specs(&w, 0, 2), |comm| {
            if comm.rank() == 0 {
                let got = comm
                    .recv_timeout(Some(1), Some(5), std::time::Duration::from_millis(30))
                    .unwrap();
                assert!(got.is_none());
            }
            comm.barrier().unwrap();
        })
        .unwrap();
    }

    /// A relay reconnect mid-stream (the cached startpoint torn down
    /// between sends) must not reorder, drop, or duplicate messages:
    /// the proxied sender re-attaches through the outer server and the
    /// receiver sees every payload exactly once, in order.
    #[test]
    fn reconnect_mid_stream_preserves_order() {
        let w = world();
        let results = run_world(specs(&w, 1, 1), |comm| {
            if comm.rank() == 0 {
                for i in 0u8..5 {
                    comm.send(1, 0, &[i]).unwrap();
                }
                // Tear down the cached relay attachment, as a proxy
                // restart would; the next send must re-attach.
                comm.reset_peer_link(1);
                for i in 5u8..10 {
                    comm.send(1, 0, &[i]).unwrap();
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..10 {
                    let (_, _, data) = comm.recv(Some(0), Some(0)).unwrap();
                    got.extend_from_slice(&data);
                }
                assert_eq!(comm.duplicates_dropped(), 0);
                got
            }
        })
        .unwrap();
        assert_eq!(results[1], (0u8..10).collect::<Vec<u8>>());
    }

    /// A retransmitted frame that survives on *both* the dying and the
    /// fresh connection is delivered once: the receiver's per-source
    /// sequence dedup drops the duplicate copy.
    #[test]
    fn duplicate_frames_are_dropped_by_sequence() {
        let w = world();
        let net = w.net.clone();
        let results = run_world(specs(&w, 0, 2), move |comm| {
            if comm.rank() == 0 {
                // Normal send: seq 1 on the (0 -> 1) pair.
                comm.send(1, 5, b"dup").unwrap();
                // Learn rank 1's endpoint address from rank 1 itself.
                let (_, _, addr) = comm.recv(Some(1), Some(9)).unwrap();
                let addr = String::from_utf8(addr).unwrap();
                let (host, port) = addr.rsplit_once(':').unwrap();
                // Replay the same frame on a fresh raw connection, as
                // a sender that could not tell whether the original
                // survived a dying relay would.
                let raw = NexusContext::direct(net.clone(), "etl2");
                let sp = raw.attach((host, port.parse().unwrap())).unwrap();
                sp.send(&packet::Packet::encode(0, 5, 1, b"dup")).unwrap();
                // Hold the connection open until rank 1 confirms.
                let (_, _, ok) = comm.recv(Some(1), Some(6)).unwrap();
                assert_eq!(ok, b"seen");
                0
            } else {
                let (h, p) = comm.advertised();
                let addr = format!("{h}:{p}");
                comm.send(0, 9, addr.as_bytes()).unwrap();
                let (_, _, data) = comm.recv(Some(0), Some(5)).unwrap();
                assert_eq!(data, b"dup");
                // Drain until the replayed copy arrives and is dropped.
                for _ in 0..2000 {
                    comm.iprobe(None, None).unwrap();
                    if comm.duplicates_dropped() >= 1 {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                assert_eq!(comm.duplicates_dropped(), 1);
                // No second copy of the payload was delivered.
                assert!(!comm.iprobe(Some(0), Some(5)).unwrap());
                comm.send(0, 6, b"seen").unwrap();
                comm.duplicates_dropped()
            }
        })
        .unwrap();
        assert_eq!(results[1], 1);
    }

    /// A striped bulk send (K parallel stripe flows, each with its own
    /// seq space) reassembles byte-identically at the receiver and is
    /// delivered as one ordinary tagged message.
    #[test]
    fn striped_send_reassembles_byte_identically() {
        let w = world();
        // Big enough for several chunks per stripe, with an uneven
        // tail chunk (not a multiple of STRIPE_CHUNK_BYTES).
        let payload: Vec<u8> = (0..(5 * STRIPE_CHUNK_BYTES as usize + 12345))
            .map(|i| (i % 251) as u8)
            .collect();
        let want = payload.clone();
        let results = run_world(specs(&w, 1, 1), move |comm| {
            if comm.rank() == 0 {
                comm.send_striped(1, 7, &payload, 4).unwrap();
                // A second, small striped transfer on the same pair
                // must get a fresh transfer id and arrive intact too.
                comm.send_striped(1, 8, b"tail", 2).unwrap();
                Vec::new()
            } else {
                let (src, tag, data) = comm.recv(Some(0), Some(7)).unwrap();
                assert_eq!((src, tag), (0, 7));
                let (_, _, tail) = comm.recv(Some(0), Some(8)).unwrap();
                assert_eq!(tail, b"tail");
                assert_eq!(comm.striped_completed(), 2);
                data
            }
        })
        .unwrap();
        assert_eq!(results[1], want);
    }

    /// A striped send across the firewall (proxied sender) still
    /// reassembles: stripe frames ride the relay like any packet.
    #[test]
    fn striped_send_through_the_proxy() {
        let w = world();
        let payload: Vec<u8> = (0..200_000).map(|i| (i % 17) as u8).collect();
        let want = payload.clone();
        let results = run_world(specs(&w, 1, 1), move |comm| {
            if comm.rank() == 0 {
                comm.send_striped(1, 3, &payload, 3).unwrap();
                Vec::new()
            } else {
                let (_, _, data) = comm.recv(Some(0), Some(3)).unwrap();
                data
            }
        })
        .unwrap();
        assert_eq!(results[1], want);
    }

    /// The send path itself retransmits when the cached attachment
    /// errors mid-send: kill the receiving endpoint between sends and
    /// rebind it at the same address — the sender's cached startpoint
    /// fails, and the frame goes out again on a fresh attachment.
    #[test]
    fn dead_attachment_triggers_reconnect_and_resend() {
        use nexus::{InProcExchange, PortPolicy};
        let w = world();
        const PORT: u16 = 47_000;
        let ex = InProcExchange::new();
        let ctx1 = NexusContext::direct(w.net.clone(), "etl1")
            .with_port_policy(PortPolicy::range(PORT, PORT))
            .with_shared_inproc(ex.clone());
        let ctx0 = NexusContext::direct(w.net.clone(), "etl0").with_shared_inproc(ex);
        let ep1a = ctx1.endpoint().unwrap();
        assert_eq!(ep1a.advertised().1, PORT);
        let ep0 = ctx0.endpoint().unwrap();
        let addrs = std::sync::Arc::new(vec![
            (ep0.advertised().0.to_string(), ep0.advertised().1),
            ("etl1".to_string(), PORT),
        ]);
        let comm = comm::Comm::new(0, 2, ctx0, ep0, addrs);

        comm.send(1, 0, b"before").unwrap();
        let first = packet::Packet::decode(ep1a.recv().unwrap()).unwrap();
        assert_eq!((first.seq, &first.payload[..]), (1, &b"before"[..]));

        // Kill the endpoint, then bring a new one up at the same
        // address (the old listener needs a moment to release it).
        drop(ep1a);
        let ep1b = loop {
            match ctx1.endpoint() {
                Ok(ep) => break ep,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        };

        comm.send(1, 0, b"after").unwrap();
        assert_eq!(comm.resends(), 1, "cached startpoint death must resend");
        let second = packet::Packet::decode(ep1b.recv().unwrap()).unwrap();
        assert_eq!((second.seq, &second.payload[..]), (2, &b"after"[..]));
    }
}
